"""Roofline + occupancy cost model for simulated kernel launches.

Given a launch's declared :class:`~repro.gpu.KernelStats`, the model
prices it as

    t = launch_overhead + max(t_compute, t_memory) / wave_efficiency

with

* ``t_compute = flops / (peak_dp * flop_efficiency * sm_utilization)``
* ``t_memory``: the *unique footprint* streams from DRAM once; re-reads
  beyond it run at L2 speed when the footprint fits the L2, else at DRAM
  speed.  Both channels are scaled by ``mem_efficiency``, the declared
  ``coalescing`` factor, and the bandwidth-saturation fraction (few
  resident blocks cannot keep the memory system busy).
* ``sm_utilization = min(1, grid_blocks / sm_count)`` — a 7-block grid on
  a 14-SM device leaves half the chip idle, the dominant inefficiency of
  the paper's ``num_blocks = R*S/BLOCK_SIZE`` decomposition.
* ``wave_efficiency``: blocks execute in waves of
  ``sm_count * blocks_per_sm``; a partially filled trailing wave wastes
  its idle slots (tail effect).

This is deliberately a first-order analytic model: every term is a
documented hardware-balance effect, and EXPERIMENTS.md records the
calibration constants used for the figure reproductions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.gpu.kernel import KernelStats
from repro.gpu.occupancy import OccupancyResult
from repro.gpu.spec import GpuSpec

__all__ = [
    "CostBreakdown",
    "kernel_cost",
    "transfer_cost",
    "gather_miss_fraction",
    "row_imbalance_efficiency",
    "ell_padding_fraction",
]

#: Column offsets within this many elements of the row index are assumed
#: to hit the cache line(s) the row's own output/diagonal already pulled
#: in — the regime of narrow-stencil lattice Hamiltonians.
GATHER_NEAR_WINDOW = 16.0


@dataclass(frozen=True)
class CostBreakdown:
    """Priced cost of one kernel launch.

    ``bound`` names the roofline side that dominated
    (``"compute"`` or ``"memory"``).
    """

    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    total_seconds: float
    bound: str
    sm_utilization: float
    wave_count: int


def kernel_cost(
    spec: GpuSpec,
    stats: KernelStats,
    *,
    grid_blocks: int,
    occupancy: OccupancyResult,
) -> CostBreakdown:
    """Price one launch on ``spec``; see the module docstring for the model."""
    if not isinstance(spec, GpuSpec):
        raise ValidationError(f"spec must be a GpuSpec, got {type(spec).__name__}")
    if grid_blocks < 1:
        raise ValidationError(f"grid_blocks must be >= 1, got {grid_blocks}")

    sm_utilization = min(1.0, grid_blocks / spec.sm_count)

    # Wave (tail) effect: blocks run in waves of sm_count * blocks_per_sm;
    # the last wave is padded to full width.
    wave_width = spec.sm_count * occupancy.blocks_per_sm
    waves = max(1, math.ceil(grid_blocks / wave_width))
    wave_efficiency = grid_blocks / (waves * min(wave_width, max(grid_blocks, 1)))
    wave_efficiency = min(1.0, max(wave_efficiency, 1.0 / waves))

    # Low occupancy limits latency hiding; model it as a soft floor on the
    # achievable fraction of peak (full effect below ~25% occupancy).
    latency_hiding = min(1.0, occupancy.occupancy / 0.25)

    peak_flops = (
        spec.peak_dp_flops if stats.precision == "double" else spec.peak_sp_flops
    )
    compute_rate = peak_flops * spec.flop_efficiency * sm_utilization
    compute_rate *= max(latency_hiding, 0.1) * stats.thread_efficiency
    compute_seconds = stats.flops / compute_rate if stats.flops else 0.0

    total_traffic = stats.gmem_read_bytes + stats.gmem_write_bytes
    footprint = stats.footprint_bytes or total_traffic
    footprint = min(footprint, total_traffic)

    # Bandwidth saturation: enough in-flight warps must cover the memory
    # latency.  Fermi warps sustain several outstanding cache lines each,
    # so ~4 resident warps per SM already keep DRAM busy; with fewer
    # total warps than that, bandwidth scales down.
    warps_per_block = max(1, occupancy.warps_per_sm // max(occupancy.blocks_per_sm, 1))
    total_warps = grid_blocks * warps_per_block
    saturation = min(1.0, total_warps / (spec.sm_count * 4.0))
    saturation = max(saturation, sm_utilization * 0.5)
    effective = (
        spec.mem_efficiency
        * stats.coalescing
        * stats.thread_efficiency
        * max(saturation, 0.05)
    )

    dram_bw = spec.mem_bandwidth_bytes_per_s * effective
    l2_bw = spec.l2_bandwidth_bytes_per_s * effective
    reread_bytes = total_traffic - footprint
    if footprint <= spec.l2_bytes:
        memory_seconds = footprint / dram_bw + reread_bytes / l2_bw
    else:
        memory_seconds = total_traffic / dram_bw

    body = max(compute_seconds, memory_seconds) / wave_efficiency
    total = spec.kernel_launch_overhead_s + body
    return CostBreakdown(
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        overhead_seconds=spec.kernel_launch_overhead_s,
        total_seconds=total,
        bound="compute" if compute_seconds >= memory_seconds else "memory",
        sm_utilization=sm_utilization,
        wave_count=waves,
    )


def transfer_cost(spec: GpuSpec, nbytes: int) -> float:
    """Seconds to move ``nbytes`` across the PCIe link (latency + bandwidth)."""
    if nbytes < 0:
        raise ValidationError(f"nbytes must be >= 0, got {nbytes}")
    return spec.pcie_latency_s + nbytes / spec.pcie_bandwidth_bytes_per_s


# ----------------------------------------------------------------------
# Irregular-access extensions (sparse SpMV block programs)
# ----------------------------------------------------------------------
def gather_miss_fraction(dimension: int, mean_abs_offset: float) -> float:
    """Fraction of ``x[indices]`` gather loads that miss nearby cache lines.

    The SpMV gather's locality is governed by how far the stored columns
    sit from their row: offsets within :data:`GATHER_NEAR_WINDOW`
    elements ride the cache lines the row already touched (banded
    lattice stencils — zero extra traffic), while offsets approaching
    ``dimension / 4`` scatter across the whole vector and each pull a
    fresh line.  The ramp between the two regimes is linear in the mean
    absolute offset — a first-order model matching the documented style
    of the roofline terms above.
    """
    dim = float(dimension)
    if dim <= 0:
        raise ValidationError(f"dimension must be positive, got {dimension}")
    if mean_abs_offset < 0:
        raise ValidationError(
            f"mean_abs_offset must be >= 0, got {mean_abs_offset}"
        )
    far = dim / 4.0
    if mean_abs_offset <= GATHER_NEAR_WINDOW or far <= GATHER_NEAR_WINDOW:
        return 0.0
    return min(1.0, (mean_abs_offset - GATHER_NEAR_WINDOW) / (far - GATHER_NEAR_WINDOW))


def row_imbalance_efficiency(
    row_nnz_max: float, row_nnz_mean: float, *, granularity: int = 1
) -> float:
    """Lockstep efficiency of a row-parallel SpMV under skewed row lengths.

    Threads (or warp teams of ``granularity`` lanes) assigned to short
    rows idle while the longest row finishes its sweep, so the useful
    fraction of lanes is ``ceil(mean/g) / ceil(max/g)``.  Uniform rows
    give 1.0; one long row among short ones drags every team down.
    """
    if granularity < 1:
        raise ValidationError(f"granularity must be >= 1, got {granularity}")
    if row_nnz_max < row_nnz_mean or row_nnz_mean < 0:
        raise ValidationError(
            f"need row_nnz_max >= row_nnz_mean >= 0, got "
            f"{row_nnz_max}, {row_nnz_mean}"
        )
    if row_nnz_max <= 0:
        return 1.0
    mean_passes = math.ceil(row_nnz_mean / granularity)
    max_passes = math.ceil(row_nnz_max / granularity)
    return max(mean_passes, 1) / max(max_passes, 1)


def ell_padding_fraction(row_nnz_max: float, row_nnz_mean: float) -> float:
    """Fraction of ELL slots wasted on padding: ``(max - mean) / max``.

    Every byte and FLOP of the ELL sweep is proportional to
    ``rows * max_row_nnz``, so this is exactly the traffic overhead the
    format pays for its perfectly coalesced streams.
    """
    if row_nnz_max < row_nnz_mean or row_nnz_mean < 0:
        raise ValidationError(
            f"need row_nnz_max >= row_nnz_mean >= 0, got "
            f"{row_nnz_max}, {row_nnz_mean}"
        )
    if row_nnz_max <= 0:
        return 0.0
    return (row_nnz_max - row_nnz_mean) / row_nnz_max
