"""CPU baseline: the paper's single-threaded Core i7 930 reference.

The paper compares its GPU implementation against a plain C version
compiled with ``gcc -O3`` running on one core of a Core i7 930.  This
package models that baseline: a cache-aware roofline
(:mod:`repro.cpu.costmodel`) over the published cache hierarchy, plus a
moment-engine backend (:mod:`repro.cpu.backend`) that executes the
numerics with NumPy and reports the modeled single-core C time.
"""

from repro.cpu.spec import CpuSpec, CacheLevel, CORE_I7_930, tiny_test_cpu
from repro.cpu.costmodel import phase_time, bandwidth_for_footprint
from repro.cpu.backend import (
    CpuModelEngine,
    cpu_kpm_breakdown,
    estimate_cpu_kpm_seconds,
)
from repro.cpu.parallel import (
    AGGREGATE_BANDWIDTH_FACTOR,
    estimate_parallel_cpu_kpm_seconds,
    parallel_speedup_factor,
)

__all__ = [
    "CpuSpec",
    "CacheLevel",
    "CORE_I7_930",
    "tiny_test_cpu",
    "phase_time",
    "bandwidth_for_footprint",
    "CpuModelEngine",
    "cpu_kpm_breakdown",
    "estimate_cpu_kpm_seconds",
    "AGGREGATE_BANDWIDTH_FACTOR",
    "estimate_parallel_cpu_kpm_seconds",
    "parallel_speedup_factor",
]
