"""CPU moment-engine backend with modeled Core i7 930 timing.

Functionally this backend runs the same NumPy numerics as the reference
engine (bit-identical random vectors, same recursion); additionally it
prices the computation on the configured :class:`~repro.cpu.CpuSpec` as
the paper's single-threaded C program would execute it:

* per Chebyshev step and random vector, one matrix-vector product over
  the **dense** ``H~`` (the paper's measured configuration) or the CSR
  arrays when the operator is sparse,
* the three-term update (axpy) and the moment dot product,
* random-vector generation.

:func:`estimate_cpu_kpm_seconds` exposes the analytic estimate without
executing — the harness uses it at the full paper parameters (see
DESIGN.md §5, functional-sampling note); tests verify the engine's
modeled time equals the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.costmodel import phase_time
from repro.cpu.spec import CORE_I7_930, CpuSpec
from repro.errors import ValidationError
from repro.kpm.config import KPMConfig
from repro.kpm.moments import MomentData, stochastic_moments
from repro.sparse import CSRMatrix, ELLMatrix, as_operator
from repro.timing import TimingReport, WallTimer
from repro.util.validation import check_positive_int

__all__ = ["CpuModelEngine", "estimate_cpu_kpm_seconds", "cpu_kpm_breakdown"]

_FLOAT_BYTES = 8
_INDEX_BYTES = 8
# Cost of one uniform random double in a compiled xorshift/LCG loop.
_RNG_FLOPS_PER_ELEMENT = 4.0


def cpu_kpm_breakdown(
    spec: CpuSpec,
    dimension: int,
    config: KPMConfig,
    *,
    nnz: int | None = None,
) -> dict[str, float]:
    """Modeled seconds per phase of a full CPU KPM run.

    Parameters
    ----------
    spec:
        CPU model.
    dimension:
        ``D`` (the paper's ``H_SIZE``).
    config:
        KPM parameters (``N``, ``R``, ``S``).
    nnz:
        Stored entries of a CSR Hamiltonian; ``None`` means the dense
        path (the paper's measured configuration).

    Returns
    -------
    dict with keys ``"random"``, ``"matvec"``, ``"axpy"``, ``"dot"``.
    """
    if not isinstance(spec, CpuSpec):
        raise ValidationError(f"spec must be a CpuSpec, got {type(spec).__name__}")
    dim = check_positive_int(dimension, "dimension")
    vectors = config.total_vectors
    steps = config.num_moments - 1  # matvecs per vector (r1 .. r_{N-1})
    item = _FLOAT_BYTES if config.precision == "double" else 4

    vector_bytes = dim * item
    if nnz is None:
        matrix_bytes = dim * dim * item
        matvec_flops = 2.0 * dim * dim
        matvec_bytes = matrix_bytes + 2 * vector_bytes  # stream H~, read x, write y
    else:
        nnz = check_positive_int(nnz, "nnz")
        matrix_bytes = nnz * (item + _INDEX_BYTES) + (dim + 1) * _INDEX_BYTES
        matvec_flops = 2.0 * nnz
        # values+indices stream, gathered x reads, result writes
        matvec_bytes = matrix_bytes + nnz * item + vector_bytes

    footprint = matrix_bytes + 4 * vector_bytes

    random_seconds = vectors * phase_time(
        spec,
        flops=_RNG_FLOPS_PER_ELEMENT * dim,
        bytes_moved=vector_bytes,
        footprint_bytes=vector_bytes,
    )
    matvec_seconds = vectors * steps * phase_time(
        spec,
        flops=matvec_flops,
        bytes_moved=matvec_bytes,
        footprint_bytes=footprint,
    )
    # y <- 2*y - r_prev fused over the vector: 2 flops, 2 reads 1 write.
    axpy_seconds = vectors * steps * phase_time(
        spec,
        flops=2.0 * dim,
        bytes_moved=3 * vector_bytes,
        footprint_bytes=footprint,
    )
    # <r0 | r_n> for each of the N moments.
    dot_seconds = vectors * config.num_moments * phase_time(
        spec,
        flops=2.0 * dim,
        bytes_moved=2 * vector_bytes,
        footprint_bytes=footprint,
    )
    return {
        "random": random_seconds,
        "matvec": matvec_seconds,
        "axpy": axpy_seconds,
        "dot": dot_seconds,
    }


def estimate_cpu_kpm_seconds(
    spec: CpuSpec,
    dimension: int,
    config: KPMConfig,
    *,
    nnz: int | None = None,
) -> float:
    """Total modeled CPU seconds for a KPM run (sum of the breakdown)."""
    return sum(cpu_kpm_breakdown(spec, dimension, config, nnz=nnz).values())


@dataclass
class CpuModelEngine:
    """Moment engine running NumPy numerics with Core i7 930 timing.

    The operator's storage decides the priced path: a
    :class:`~repro.sparse.CSRMatrix` is priced as CSR SpMV, anything else
    as the dense sweep (matching the paper's dense measured runs).
    """

    spec: CpuSpec = CORE_I7_930
    name: str = "cpu-model"

    def compute_moments(
        self, scaled_operator, config: KPMConfig
    ) -> tuple[MomentData, TimingReport]:
        """Compute stochastic moments; report modeled + wall time."""
        op = as_operator(scaled_operator)
        # Sparse storage (CSR or ELL) prices as sparse SpMV; dense
        # operators pay the full O(D^2) sweep.
        nnz = op.nnz_stored if isinstance(op, (CSRMatrix, ELLMatrix)) else None
        with WallTimer() as timer:
            data = stochastic_moments(op, config)
        breakdown = cpu_kpm_breakdown(self.spec, op.shape[0], config, nnz=nnz)
        report = TimingReport(
            backend=self.name,
            device=self.spec.name,
            modeled_seconds=sum(breakdown.values()),
            wall_seconds=timer.seconds,
            breakdown=breakdown,
        )
        return data, report
