"""CPU hardware specification for the cost model.

:data:`CORE_I7_930` describes the paper's baseline: a Nehalem Core i7 930
at 2.80 GHz, 32 KB L1D / 256 KB L2 per core, 8 MB shared L3, triple-
channel DDR3.  The bandwidth numbers are sustained *single-thread
streaming* figures (not multi-core aggregate peaks), because the paper's
C implementation is single-threaded; ``flops_per_cycle`` reflects
``gcc -O3`` scalar/SSE2 code on a dependent multiply-accumulate loop
(one add + one mul per cycle), not hand-tuned kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ValidationError

__all__ = ["CacheLevel", "CpuSpec", "CORE_I7_930", "tiny_test_cpu"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    ``bandwidth_bytes_per_s`` is the sustained single-thread read
    bandwidth when the working set resides at this level.
    """

    name: str
    size_bytes: int
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValidationError(f"{self.name}: size_bytes must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValidationError(f"{self.name}: bandwidth must be positive")


@dataclass(frozen=True)
class CpuSpec:
    """Roofline description of a (single-threaded) CPU baseline.

    Attributes
    ----------
    name:
        Marketing name.
    clock_ghz:
        Core clock.
    flops_per_cycle:
        Sustained double-precision FLOPs per cycle for compiler-generated
        loops (2 for scalar add+mul issue; 4 with packed SSE2).
    cache_levels:
        Inner-to-outer cache levels; the working-set footprint picks the
        smallest level that holds it.
    dram_bandwidth_bytes_per_s:
        Sustained single-thread streaming bandwidth from DRAM.
    flop_efficiency:
        Fraction of the flops-per-cycle peak achieved by real loop bodies
        (branching, pointer chasing, imperfect scheduling).
    """

    name: str
    clock_ghz: float
    flops_per_cycle: float
    cache_levels: tuple[CacheLevel, ...]
    dram_bandwidth_bytes_per_s: float
    flop_efficiency: float = 0.9

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0 or self.flops_per_cycle <= 0:
            raise ValidationError("clock_ghz and flops_per_cycle must be positive")
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise ValidationError("dram_bandwidth_bytes_per_s must be positive")
        if not 0.0 < self.flop_efficiency <= 1.0:
            raise ValidationError("flop_efficiency must be in (0, 1]")
        sizes = [level.size_bytes for level in self.cache_levels]
        if sizes != sorted(sizes):
            raise ValidationError("cache_levels must be ordered inner (smallest) out")

    @property
    def peak_flops(self) -> float:
        """Sustained double-precision FLOP/s for compiled loops."""
        return self.clock_ghz * 1e9 * self.flops_per_cycle * self.flop_efficiency

    def with_updates(self, **changes) -> "CpuSpec":
        """Copy with fields replaced — for calibration sweeps."""
        return replace(self, **changes)


#: The paper's baseline processor (single thread, gcc -O3).
CORE_I7_930 = CpuSpec(
    name="Intel Core i7 930 (1 thread, gcc -O3)",
    clock_ghz=2.80,
    flops_per_cycle=2.0,
    cache_levels=(
        CacheLevel("L1D", 32 * 1024, 45e9),
        CacheLevel("L2", 256 * 1024, 30e9),
        CacheLevel("L3", 8 * 1024 * 1024, 15e9),
    ),
    dram_bandwidth_bytes_per_s=12e9,
)


def tiny_test_cpu(**overrides) -> CpuSpec:
    """A small, round-number CPU spec for unit tests."""
    params = dict(
        name="test-cpu",
        clock_ghz=1.0,
        flops_per_cycle=1.0,
        cache_levels=(
            CacheLevel("L1", 1024, 4e9),
            CacheLevel("L2", 16 * 1024, 2e9),
        ),
        dram_bandwidth_bytes_per_s=1e9,
        flop_efficiency=1.0,
    )
    params.update(overrides)
    return CpuSpec(**params)
