"""Shared-memory (OpenMP-style) CPU parallelization — paper Sec. V.

"The parallelization of the KPM on a message passing and a shared
memory paradigm is also challenging because the recursive reference to
get r_n becomes a bottleneck."  For the *stochastic* KPM that bottleneck
dissolves the same way it does on the GPU: random vectors are
independent, so threads take vectors, not vector elements — no
fine-grain recursion dependency crosses a thread.

What limits multicore scaling instead is the memory system: every
thread streams the same dense ``H~``, and the chip's aggregate DRAM
bandwidth saturates well below ``threads x single_thread_bandwidth``.
This module models exactly that:

* compute throughput scales linearly with threads;
* memory-bound phases speed up only to the aggregate-over-single
  bandwidth ratio (:data:`AGGREGATE_BANDWIDTH_FACTOR`), after which the
  phase becomes compute-bound again and scales with threads from there.

The resulting ablation answers a question the paper leaves open: how
much of the reported 3.5-4x GPU advantage survives against a fully used
socket rather than one core.
"""

from __future__ import annotations

from repro.cpu.backend import cpu_kpm_breakdown
from repro.cpu.costmodel import bandwidth_for_footprint
from repro.cpu.spec import CORE_I7_930, CpuSpec
from repro.errors import ValidationError
from repro.kpm.config import KPMConfig
from repro.util.validation import check_positive_int

__all__ = [
    "AGGREGATE_BANDWIDTH_FACTOR",
    "parallel_speedup_factor",
    "estimate_parallel_cpu_kpm_seconds",
]

#: Aggregate socket bandwidth over sustained single-thread bandwidth.
#: Nehalem triple-channel DDR3: ~21 GB/s aggregate vs ~12 GB/s for one
#: streaming thread.
AGGREGATE_BANDWIDTH_FACTOR = 1.75


def parallel_speedup_factor(threads: int, *, memory_bound: bool) -> float:
    """Scaling factor of one phase on ``threads`` cores.

    Compute-bound phases scale linearly; memory-bound phases saturate at
    the aggregate-bandwidth ratio.
    """
    threads = check_positive_int(threads, "threads")
    if memory_bound:
        return float(min(threads, AGGREGATE_BANDWIDTH_FACTOR))
    return float(threads)


def estimate_parallel_cpu_kpm_seconds(
    spec: CpuSpec = CORE_I7_930,
    dimension: int = 1000,
    config: KPMConfig | None = None,
    *,
    threads: int = 4,
    nnz: int | None = None,
) -> float:
    """Modeled KPM wall time on ``threads`` cores of ``spec``.

    Vectors are partitioned across threads (the coarse-grain
    decomposition that sidesteps the paper's recursion-bottleneck worry),
    so each single-thread phase time divides by its
    :func:`parallel_speedup_factor`; the memory-bound matvec additionally
    floors at its threads-divided compute time (once bandwidth
    saturates, adding cores still shrinks the arithmetic share).
    """
    config = KPMConfig() if config is None else config
    if not isinstance(config, KPMConfig):
        raise ValidationError(f"config must be a KPMConfig, got {type(config).__name__}")
    threads = check_positive_int(threads, "threads")
    breakdown = cpu_kpm_breakdown(spec, dimension, config, nnz=nnz)

    item = 8 if config.precision == "double" else 4
    if nnz is None:
        matrix_bytes = dimension * dimension * item
        matvec_flops = 2.0 * dimension * dimension
    else:
        matrix_bytes = nnz * (item + 8) + (dimension + 1) * 8
        matvec_flops = 2.0 * nnz
    footprint = matrix_bytes + 4 * dimension * item

    compute_seconds = (
        config.total_vectors * (config.num_moments - 1) * matvec_flops / spec.peak_flops
    )
    matvec_single = breakdown["matvec"]
    memory_bound = matvec_single > compute_seconds * 1.001

    total = 0.0
    for phase, seconds in breakdown.items():
        if phase == "matvec" and memory_bound:
            bandwidth_factor = parallel_speedup_factor(threads, memory_bound=True)
            total += max(seconds / bandwidth_factor, compute_seconds / threads)
        else:
            total += seconds / threads
    return total
