"""Cache-aware roofline for the single-threaded CPU baseline.

A phase is priced as ``max(flops / peak_flops, bytes / bandwidth)``,
where the bandwidth is that of the innermost cache level holding the
phase's *footprint* (working set).  This single mechanism produces the
paper's Fig. 8 behavior: once the dense ``H~`` no longer fits the 8 MB
L3, every sweep over it streams from DRAM and the CPU time grows by the
L3/DRAM bandwidth ratio on top of the ``O(H_SIZE^2)`` work.
"""

from __future__ import annotations

from repro.cpu.spec import CpuSpec
from repro.errors import ValidationError

__all__ = ["bandwidth_for_footprint", "phase_time"]


def bandwidth_for_footprint(spec: CpuSpec, footprint_bytes: float) -> float:
    """Sustained bandwidth when the working set is ``footprint_bytes``.

    Picks the innermost cache level that holds the footprint; beyond the
    last level, DRAM.
    """
    if footprint_bytes < 0:
        raise ValidationError(f"footprint_bytes must be >= 0, got {footprint_bytes}")
    for level in spec.cache_levels:
        if footprint_bytes <= level.size_bytes:
            return level.bandwidth_bytes_per_s
    return spec.dram_bandwidth_bytes_per_s


def phase_time(
    spec: CpuSpec,
    *,
    flops: float,
    bytes_moved: float,
    footprint_bytes: float | None = None,
) -> float:
    """Roofline time of one phase.

    Parameters
    ----------
    flops:
        Double-precision operations executed.
    bytes_moved:
        Total bytes read + written by the phase.
    footprint_bytes:
        Unique working set; defaults to ``bytes_moved`` (no reuse).
    """
    if flops < 0 or bytes_moved < 0:
        raise ValidationError("flops and bytes_moved must be >= 0")
    footprint = bytes_moved if footprint_bytes is None else footprint_bytes
    bandwidth = bandwidth_for_footprint(spec, footprint)
    compute_seconds = flops / spec.peak_flops
    memory_seconds = bytes_moved / bandwidth
    return max(compute_seconds, memory_seconds)
