"""Exporters: Chrome trace-event JSON, JSON-lines, and a text span tree.

All three render a :class:`~repro.obs.record.RunRecord` from its
deterministic modeled-clock fields, so exports are byte-identical across
identical runs.  The Chrome exporter subsumes
:meth:`repro.gpu.profiler.Profiler.to_chrome_trace` (and reuses its
:func:`~repro.gpu.profiler.chrome_trace_event` schema helper): kernel
and transfer events captured by ``Tracer.device_span`` become trace
events *inside* their owning pipeline/cluster/serve spans, all on one
thread track so ``chrome://tracing`` / Perfetto nests them by
containment.
"""

from __future__ import annotations

import json

from repro.errors import ValidationError
from repro.gpu.profiler import chrome_trace_event
from repro.obs.record import RunRecord
from repro.trace.span import Span
from repro.util.format import format_seconds

__all__ = ["to_chrome_trace", "to_jsonl", "render_tree"]

#: Single thread track: Chrome/Perfetto nest same-tid "X" events by containment.
_TRACK = "modeled"


def _check_record(record) -> RunRecord:
    if not isinstance(record, RunRecord):
        raise ValidationError(
            f"expected a RunRecord, got {type(record).__name__}"
        )
    return record


def to_chrome_trace(record: RunRecord) -> str:
    """The record's span forest as Chrome trace-event JSON.

    Every span becomes an "X" event (ts/dur in microseconds of modeled
    time) on the single ``"modeled"`` track; profiler events captured by
    ``device_span`` become child "X" events on the same track, so the
    viewer nests kernels under pipeline spans, pipeline spans under
    cluster spans, and so on purely by time containment.
    """
    _check_record(record)
    trace: list[dict] = []
    for root in record.spans:
        for span in root.walk():
            trace.append(
                chrome_trace_event(
                    span.label,
                    ts_us=span.start * 1e6,
                    dur_us=span.duration * 1e6,
                    tid=_TRACK,
                    category=span.category,
                    args=dict(span.attributes),
                )
            )
            for event in span.events:
                args = {
                    key: value
                    for key, value in event.items()
                    if key not in ("name", "start", "seconds")
                }
                trace.append(
                    chrome_trace_event(
                        event["name"],
                        ts_us=event["start"] * 1e6,
                        dur_us=event["seconds"] * 1e6,
                        tid=_TRACK,
                        category=event.get("kind", "event"),
                        args=args,
                    )
                )
    payload = {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "metadata": {"label": record.label, "schema": record.schema},
    }
    return json.dumps(payload, sort_keys=True)


def to_jsonl(record: RunRecord) -> str:
    """The record as JSON lines: one header line, then one line per span.

    Spans are flattened depth-first; each line carries its own ``index``
    and its parent's index (``None`` for roots) so the tree can be
    rebuilt without nesting-aware parsing.
    """
    _check_record(record)
    lines = [
        json.dumps(
            {
                "schema": record.schema,
                "label": record.label,
                "workload": dict(record.workload),
                "metrics": record.metrics.to_dict(),
            },
            sort_keys=True,
        )
    ]

    def emit(span: Span, parent: int | None) -> None:
        flat = span.to_dict()
        flat.pop("children")
        flat["parent"] = parent
        lines.append(json.dumps(flat, sort_keys=True))
        for child in span.children:
            emit(child, span.index)

    for root in record.spans:
        emit(root, None)
    return "\n".join(lines) + "\n"


def render_tree(record: RunRecord) -> str:
    """Human-readable span tree with modeled durations and key attributes."""
    _check_record(record)
    lines = [f"run {record.label!r} [{record.schema}]"]

    def emit(span: Span, depth: int) -> None:
        indent = "  " * depth
        detail = ""
        if span.attributes:
            pairs = ", ".join(
                f"{key}={value!r}" for key, value in sorted(span.attributes.items())
            )
            detail = f"  ({pairs})"
        suffix = f" [{len(span.events)} events]" if span.events else ""
        lines.append(
            f"{indent}{span.label}: {format_seconds(span.duration)}{suffix}{detail}"
        )
        for child in span.children:
            emit(child, depth + 1)

    for root in record.spans:
        emit(root, 1)
    return "\n".join(lines) + "\n"
