"""``python -m repro obs`` — record runs and gate perf regressions.

Two subcommands:

* ``record`` — run the traced workload (the full bench baseline by
  default, or ``--smoke`` for just the smoke pass) and write the
  :class:`~repro.obs.record.RunRecord` JSON; optionally also export a
  Chrome trace, JSON lines, or print the span tree.
* ``compare`` — load a committed baseline (``BENCH_PR4.json``),
  re-record the same workload (or load ``--current``), and fail (exit 1)
  on any modeled-cost regression beyond tolerance.

Baseline refresh::

    PYTHONPATH=src python -m repro obs record --out BENCH_PR4.json
"""

from __future__ import annotations

import sys

from repro.errors import ReproError, ValidationError
from repro.obs.compare import compare_records
from repro.obs.export import render_tree, to_chrome_trace, to_jsonl
from repro.obs.record import load_run_record, write_run_record

__all__ = ["add_obs_parser", "main"]


def add_obs_parser(subparsers) -> None:
    """Register the ``obs`` subcommand tree on an argparse subparsers object."""
    if not hasattr(subparsers, "add_parser"):
        raise ValidationError(
            "add_obs_parser needs an argparse subparsers object with add_parser()"
        )
    obs = subparsers.add_parser(
        "obs", help="deterministic tracing: record runs, gate perf regressions"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    _add_subcommands(obs_sub)


def _add_subcommands(obs_sub) -> None:
    record = obs_sub.add_parser(
        "record", help="record the traced benchmark workload to a RunRecord JSON"
    )
    record.add_argument("--out", "-o", required=True, help="RunRecord JSON output path")
    record.add_argument(
        "--label", default=None, help="record label (default: bench-baseline / smoke)"
    )
    record.add_argument(
        "--smoke",
        action="store_true",
        help="record only the smoke workload (alias for --workload smoke)",
    )
    record.add_argument(
        "--workload",
        choices=("bench", "smoke", "serve-prefix", "gateway", "sparse-crossover"),
        default=None,
        help="which traced workload to record (default: bench; "
        "serve-prefix is the prefix-vs-exact cache A/B; gateway is the "
        "v2 gateway-vs-FIFO overload A/B; sparse-crossover is the tuned "
        "sparse-vs-dense SpMV A/B)",
    )
    record.add_argument(
        "--chrome", default=None, metavar="FILE", help="also write a Chrome trace JSON"
    )
    record.add_argument(
        "--jsonl", default=None, metavar="FILE", help="also write JSON-lines spans"
    )
    record.add_argument(
        "--tree", action="store_true", help="print the human-readable span tree"
    )
    record.set_defaults(func=_cmd_record)

    compare = obs_sub.add_parser(
        "compare", help="gate modeled costs against a committed baseline"
    )
    compare.add_argument(
        "--baseline", required=True, help="committed baseline RunRecord JSON"
    )
    compare.add_argument(
        "--current",
        default=None,
        help="current RunRecord JSON (default: re-record the baseline workload now)",
    )
    compare.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="default relative tolerance band (fraction, e.g. 0.10)",
    )
    compare.add_argument(
        "--band",
        action="append",
        default=[],
        metavar="PATTERN=TOL",
        help="per-label tolerance override (fnmatch pattern), repeatable",
    )
    compare.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PATTERN",
        help="labels to exclude from the comparison (fnmatch pattern), repeatable",
    )
    compare.add_argument(
        "--smoke",
        action="store_true",
        help="re-record only the smoke workload and ignore bench.* labels",
    )
    compare.add_argument(
        "--workload",
        choices=("bench", "smoke", "serve-prefix", "gateway", "sparse-crossover"),
        default=None,
        help="workload to re-record for the comparison (default: bench)",
    )
    compare.set_defaults(func=_cmd_compare)


def _resolve_workload(args) -> str:
    if args.workload is not None:
        if args.smoke and args.workload != "smoke":
            raise ValidationError(
                f"--smoke conflicts with --workload {args.workload}"
            )
        return args.workload
    return "smoke" if args.smoke else "bench"


def _record_workload(*, workload: str, label: str | None):
    from repro.bench.runner import baseline_record
    from repro.obs.workloads import (
        gateway_run,
        serve_prefix_run,
        smoke_run,
        sparse_crossover_run,
    )

    if workload == "smoke":
        return smoke_run(label=label or "smoke")
    if workload == "serve-prefix":
        return serve_prefix_run(label=label or "serve-prefix")
    if workload == "gateway":
        return gateway_run(label=label or "gateway")
    if workload == "sparse-crossover":
        return sparse_crossover_run(label=label or "sparse-crossover")
    return baseline_record(label=label or "bench-baseline")


def _cmd_record(args) -> int:
    record = _record_workload(workload=_resolve_workload(args), label=args.label)
    write_run_record(record, args.out)
    print(
        f"wrote {record.label!r} ({len(record.spans)} root span(s), "
        f"fingerprint {record.fingerprint()[:12]}) to {args.out}",
        file=sys.stderr,
    )
    if args.chrome:
        with open(args.chrome, "w", encoding="ascii", newline="\n") as handle:
            handle.write(to_chrome_trace(record) + "\n")
        print(f"wrote Chrome trace to {args.chrome}", file=sys.stderr)
    if args.jsonl:
        with open(args.jsonl, "w", encoding="ascii", newline="\n") as handle:
            handle.write(to_jsonl(record))
        print(f"wrote JSON lines to {args.jsonl}", file=sys.stderr)
    if args.tree:
        sys.stdout.write(render_tree(record))
    return 0


def _parse_bands(pairs) -> dict:
    bands = {}
    for pair in pairs:
        pattern, sep, value = pair.partition("=")
        if not sep or not pattern:
            raise ValidationError(
                f"--band needs PATTERN=TOL (e.g. 'serve.*=0.25'), got {pair!r}"
            )
        try:
            bands[pattern] = float(value)
        except ValueError:
            raise ValidationError(
                f"--band tolerance for {pattern!r} must be a number, got {value!r}"
            ) from None
    return bands


def _cmd_compare(args) -> int:
    baseline = load_run_record(args.baseline)
    ignore = list(args.ignore)
    if args.current is not None:
        current = load_run_record(args.current)
    else:
        current = _record_workload(
            workload=_resolve_workload(args), label=baseline.label
        )
    if args.smoke:
        # A smoke re-record cannot reproduce the Fig 5-8 gauges; keep the
        # gate honest on what actually re-ran.
        ignore.append("bench.*")
    result = compare_records(
        baseline,
        current,
        tolerance=args.tolerance,
        bands=_parse_bands(args.band),
        ignore=tuple(ignore),
    )
    print(result.summary())
    return 0 if result.ok else 1


def main(argv=None) -> int:
    """Standalone entry point of ``python -m repro.obs``."""
    import argparse

    if argv is not None and not all(isinstance(arg, str) for arg in argv):
        raise ValidationError("argv must be a sequence of strings")
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Deterministic observability: record traced runs, gate regressions.",
    )
    subparsers = parser.add_subparsers(dest="obs_command", required=True)
    _add_subcommands(subparsers)
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
