"""The recorded smoke workload: one traced pass over every hot path.

:func:`smoke_run` drives a small-N version of each subsystem — the
single-GPU pipeline (via :func:`repro.kpm.compute_dos`), the multi-GPU
cluster driver, and the batching/caching spectral service — under one
:class:`~repro.trace.tracer.Tracer`, absorbs every
:class:`~repro.timing.TimingReport` / ``ServiceMetrics`` into one
:class:`~repro.obs.metrics.MetricsRegistry`, and returns the combined
:class:`~repro.obs.record.RunRecord`.  Everything is seeded and modeled,
so two calls produce byte-identical records; ``BENCH_PR4.json`` embeds
this workload (plus the Fig 5-8 gauges) as the regression baseline.

This module lives outside ``repro.obs.__init__`` imports on purpose: it
pulls in the cluster and serve layers, keeping ``repro.obs`` itself
import-light and the package boundary acyclic.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.kpm.config import KPMConfig
from repro.kpm.dos import compute_dos
from repro.lattice import paper_cubic_hamiltonian
from repro.obs.metrics import MetricsRegistry
from repro.obs.record import RunRecord
from repro.trace.tracer import Tracer
from repro.serve.service import SpectralService
from repro.serve.trace import synthetic_trace

__all__ = [
    "smoke_run",
    "serve_prefix_run",
    "gateway_run",
    "sparse_crossover_run",
    "SMOKE_WORKLOAD",
    "SERVE_PREFIX_WORKLOAD",
    "GATEWAY_WORKLOAD",
    "SPARSE_CROSSOVER_WORKLOAD",
]

#: Deterministic parameters of the smoke workload (embedded in the record).
SMOKE_WORKLOAD = {
    "lattice_side": 4,
    "num_moments": 32,
    "num_random_vectors": 4,
    "num_realizations": 1,
    "block_size": 32,
    "seed": 0,
    "cluster_devices": 2,
    "serve_requests": 8,
    "serve_seed": 1,
    "serve_cache_capacity": 16,
}


#: Deterministic parameters of the prefix-vs-exact cache A/B workload.
SERVE_PREFIX_WORKLOAD = {
    "requests": 24,
    "seed": 2,
    "cache_capacity": 16,
}


#: Deterministic parameters of the gateway-vs-FIFO overload A/B workload.
#: Deliberately overloaded: two flash crowds at 8x the diurnal rate with
#: ~0.5s deadline slack, so both arms miss deadlines and the gateway's
#: EDF + degradation margin is visible in the goodput gauges.
GATEWAY_WORKLOAD = {
    "requests": 150,
    "seed": 6,
    "tenants": 3,
    "duration": 12.0,
    "deadline_slack": 0.5,
    "flash_crowds": 2,
    "flash_multiplier": 8.0,
    "repeat_bias": 0.85,
    "flush_interval": 1.0,
    "max_active": 3,
    "tenant_rate": 0.8,
    "tenant_burst": 2.0,
}


#: Deterministic parameters of the sparse-vs-dense SpMV crossover A/B.
#: Cube sides 6..12 span D = 216 to 1728, bracketing the paper's
#: D = 1000 regime; ``exec_side`` picks the size that also executes
#: functionally (bit-identity witness), the rest are priced analytically
#: at the full paper moment budget.
SPARSE_CROSSOVER_WORKLOAD = {
    "cube_sides": (6, 8, 10, 12),
    "num_moments": 256,
    "num_random_vectors": 16,
    "exec_side": 6,
    "exec_num_moments": 32,
    "exec_num_random_vectors": 4,
    "seed": 0,
}


def sparse_crossover_run(
    *,
    label: str = "sparse-crossover",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> RunRecord:
    """A/B tuned sparse SpMV against the dense sweep across sizes.

    For each cube side the autotuner prices the full candidate grid and
    the record keeps three gauges per size: the best *dense* candidate,
    the best *sparse* (csr / csr-vector / ell) candidate, and their
    ``speedup`` ratio (dense over sparse — higher is better, so the CI
    gate pins that sparse keeps beating dense at every recorded size,
    in particular at the paper's D >= 1000).  One small size also runs
    functionally twice — dense-pinned and tuner-driven — and the
    ``tune.exec.bit_identical`` gauge witnesses that tuning changed the
    modeled time only, never the moments.  ``BENCH_PR9.json`` embeds
    this record.
    """
    if not isinstance(label, str) or not label:
        raise ValidationError(f"label must be a non-empty string, got {label!r}")
    registry = MetricsRegistry() if registry is None else registry
    tracer = Tracer() if tracer is None else tracer

    import numpy as np

    from repro.gpukpm.pipeline import GpuKPM  # deferred: keep repro.obs import-light
    from repro.lattice import cubic, tight_binding_hamiltonian
    from repro.tune.autotuner import Autotuner

    config = KPMConfig(
        num_moments=SPARSE_CROSSOVER_WORKLOAD["num_moments"],
        num_random_vectors=SPARSE_CROSSOVER_WORKLOAD["num_random_vectors"],
        seed=SPARSE_CROSSOVER_WORKLOAD["seed"],
    )
    tuner = Autotuner()

    with tracer.activate():
        with tracer.span("workload.tune_sweep", category="workload"):
            for side in SPARSE_CROSSOVER_WORKLOAD["cube_sides"]:
                hamiltonian = tight_binding_hamiltonian(cubic(side))
                dim = hamiltonian.shape[0]
                points = tuner.sweep(hamiltonian, config)
                dense_best = min(
                    p.modeled_seconds for p in points if p.format == "dense"
                )
                sparse_best = min(
                    p.modeled_seconds for p in points if p.format != "dense"
                )
                registry.set_gauge(f"tune.d{dim}.dense_seconds", dense_best)
                registry.set_gauge(f"tune.d{dim}.sparse_seconds", sparse_best)
                registry.set_gauge(f"tune.d{dim}.speedup", dense_best / sparse_best)

        exec_config = KPMConfig(
            num_moments=SPARSE_CROSSOVER_WORKLOAD["exec_num_moments"],
            num_random_vectors=SPARSE_CROSSOVER_WORKLOAD["exec_num_random_vectors"],
            seed=SPARSE_CROSSOVER_WORKLOAD["seed"],
        )
        exec_op = tight_binding_hamiltonian(
            cubic(SPARSE_CROSSOVER_WORKLOAD["exec_side"])
        )
        with tracer.span("workload.exec_dense", category="workload"):
            dense_kpm = GpuKPM(spmv_format="dense")
            dense_moments, _ = dense_kpm.compute_moments(exec_op, exec_config)
        registry.set_gauge(
            "tune.exec.dense_seconds", dense_kpm.last_device.modeled_seconds
        )
        with tracer.span("workload.exec_tuned", category="workload"):
            tuned_kpm = GpuKPM(tuner=tuner)
            tuned_moments, _ = tuned_kpm.compute_moments(exec_op, exec_config)
        registry.set_gauge(
            "tune.exec.tuned_seconds", tuned_kpm.last_device.modeled_seconds
        )
        registry.set_gauge(
            "tune.exec.bit_identical",
            float(np.array_equal(dense_moments.mu, tuned_moments.mu)),
        )
        for name, value in tuner.counters().items():
            registry.set_gauge(name, float(value))

    return RunRecord(
        label=label,
        workload=dict(SPARSE_CROSSOVER_WORKLOAD),
        spans=tracer.finish(),
        metrics=registry,
    )


def gateway_run(
    *,
    label: str = "gateway",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> RunRecord:
    """A/B the v2 gateway against the FIFO baseline under overload.

    Replays one overloaded timed trace through two gateways sharing
    every knob except the serving-v2 levers: the full gateway (EDF +
    degradation) and the v1 baseline (``edf=False, degrade=False`` —
    FIFO order, always full precision, late if need be).  Admission and
    the elastic pool are identical on both sides, so the goodput gap is
    attributable to scheduling and degradation alone.  Records per-arm
    ``goodput_ratio`` / ``p50``/``p99`` modeled latency gauges plus the
    headline ``gateway_ab.goodput_advantage_ratio`` (gateway minus
    FIFO); ``BENCH_PR8.json`` embeds this record and the CI gate pins
    the ratios higher-is-better and the latencies lower-is-better, so
    the gateway can never silently stop out-serving FIFO under
    overload.
    """
    if not isinstance(label, str) or not label:
        raise ValidationError(f"label must be a non-empty string, got {label!r}")
    registry = MetricsRegistry() if registry is None else registry
    tracer = Tracer() if tracer is None else tracer

    from repro.serve.admission import TenantPolicy  # deferred: obs stays import-light
    from repro.serve.gateway import Gateway
    from repro.serve.traffic import timed_trace

    arrivals = timed_trace(
        GATEWAY_WORKLOAD["requests"],
        seed=GATEWAY_WORKLOAD["seed"],
        tenants=GATEWAY_WORKLOAD["tenants"],
        duration=GATEWAY_WORKLOAD["duration"],
        deadline_slack=GATEWAY_WORKLOAD["deadline_slack"],
        flash_crowds=GATEWAY_WORKLOAD["flash_crowds"],
        flash_multiplier=GATEWAY_WORKLOAD["flash_multiplier"],
        repeat_bias=GATEWAY_WORKLOAD["repeat_bias"],
    )
    policy = TenantPolicy(
        rate=GATEWAY_WORKLOAD["tenant_rate"],
        burst=GATEWAY_WORKLOAD["tenant_burst"],
    )

    goodput: dict[str, float] = {}
    with tracer.activate():
        for mode, edf, degrade in (
            ("gateway", True, True),
            ("fifo", False, False),
        ):
            with tracer.span(f"workload.serve_{mode}", category="workload"):
                gateway = Gateway(
                    template=("gpu-sim", "cpu-model"),
                    max_active=GATEWAY_WORKLOAD["max_active"],
                    default_policy=policy,
                    edf=edf,
                    degrade=degrade,
                )
                gateway.run_trace(
                    arrivals,
                    flush_interval=GATEWAY_WORKLOAD["flush_interval"],
                )
            metrics = gateway.gateway_metrics()
            goodput[mode] = metrics.goodput_ratio
            registry.set_gauge(f"{mode}.goodput_ratio", metrics.goodput_ratio)
            registry.set_gauge(
                f"{mode}.p50_latency_seconds", metrics.p50_latency_seconds
            )
            registry.set_gauge(
                f"{mode}.p99_latency_seconds", metrics.p99_latency_seconds
            )
            # Context gauges (no seconds/ratio fragment: recorded for
            # humans, not gated).
            registry.set_gauge(f"{mode}.degraded_requests", float(metrics.degraded))
            registry.set_gauge(f"{mode}.rejected_requests", float(metrics.rejected))
            registry.set_gauge(
                f"{mode}.deadline_miss_requests", float(metrics.deadline_misses)
            )
            registry.set_gauge(
                f"{mode}.peak_engines", float(metrics.peak_active_engines)
            )
    registry.set_gauge(
        "gateway_ab.goodput_advantage_ratio",
        goodput["gateway"] - goodput["fifo"],
    )

    return RunRecord(
        label=label,
        workload=dict(GATEWAY_WORKLOAD),
        spans=tracer.finish(),
        metrics=registry,
    )


def serve_prefix_run(
    *,
    label: str = "serve-prefix",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> RunRecord:
    """A/B the prefix moment cache against exact-order matching.

    Replays one synthetic trace through two otherwise identical services
    — the default prefix cache and the PR 3 exact-order matcher
    (``prefix_cache=False``) — and records both metric families plus the
    headline ``serve_ab.hit_rate_advantage`` gauge (prefix minus exact
    hit-rate).  The trace's workload pool contains same-identity configs
    differing only in ``num_moments``, so the advantage is structurally
    positive; ``BENCH_PR7.json`` embeds this record and the CI gate pins
    the rates (higher-is-better direction), so the prefix cache can
    never silently stop out-hitting exact matching on mixed orders.
    """
    if not isinstance(label, str) or not label:
        raise ValidationError(f"label must be a non-empty string, got {label!r}")
    registry = MetricsRegistry() if registry is None else registry
    tracer = Tracer() if tracer is None else tracer

    rates: dict[str, float] = {}
    with tracer.activate():
        for mode, prefix in (("prefix", True), ("exact", False)):
            with tracer.span(f"workload.serve_{mode}", category="workload"):
                service = SpectralService(
                    ("gpu-sim",),
                    cache_capacity=SERVE_PREFIX_WORKLOAD["cache_capacity"],
                    prefix_cache=prefix,
                )
                # Sequential arrival (one flush per request): repeats
                # must go through the cache, not batch coalescing — the
                # regime the prefix-vs-exact comparison is about.
                for request in synthetic_trace(
                    SERVE_PREFIX_WORKLOAD["requests"],
                    seed=SERVE_PREFIX_WORKLOAD["seed"],
                ):
                    service.submit(request)
                    service.flush()
            metrics = service.metrics()
            rates[mode] = metrics.cache_hit_rate()
            registry.absorb_service_metrics(metrics, prefix=f"serve_{mode}")
    registry.set_gauge(
        "serve_ab.hit_rate_advantage", rates["prefix"] - rates["exact"]
    )

    return RunRecord(
        label=label,
        workload=dict(SERVE_PREFIX_WORKLOAD),
        spans=tracer.finish(),
        metrics=registry,
    )


def smoke_run(
    *,
    label: str = "smoke",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> RunRecord:
    """Trace the gpu / cluster / serve smoke workload into one record.

    Parameters
    ----------
    label:
        Record label (``"smoke"`` by default; the bench baseline passes
        ``"bench-baseline"``).
    registry:
        Optional pre-populated registry to absorb the workload metrics
        into (the bench runner seeds it with the Fig 5-8 gauges).
    tracer:
        Optional tracer to record under; a fresh one by default.  Must
        have no open spans.
    """
    if not isinstance(label, str) or not label:
        raise ValidationError(f"label must be a non-empty string, got {label!r}")
    registry = MetricsRegistry() if registry is None else registry
    tracer = Tracer() if tracer is None else tracer

    from repro.cluster.multigpu import MultiGpuKPM  # deferred: keep repro.obs import-light
    from repro.kpm.rescale import rescale_operator

    hamiltonian = paper_cubic_hamiltonian(SMOKE_WORKLOAD["lattice_side"], format="csr")
    config = KPMConfig(
        num_moments=SMOKE_WORKLOAD["num_moments"],
        num_random_vectors=SMOKE_WORKLOAD["num_random_vectors"],
        num_realizations=SMOKE_WORKLOAD["num_realizations"],
        block_size=SMOKE_WORKLOAD["block_size"],
        seed=SMOKE_WORKLOAD["seed"],
    )

    with tracer.activate():
        with tracer.span("workload.gpu", category="workload"):
            result = compute_dos(hamiltonian, config, backend="gpu-sim")
        registry.absorb_timing_report(result.timing)

        with tracer.span("workload.cluster", category="workload"):
            scaled, _ = rescale_operator(hamiltonian)
            cluster = MultiGpuKPM(SMOKE_WORKLOAD["cluster_devices"])
            _, cluster_report = cluster.compute_moments(scaled, config)
        registry.absorb_timing_report(cluster_report, prefix="timing.cluster")

        with tracer.span("workload.serve", category="workload"):
            service = SpectralService(
                ("gpu-sim",), cache_capacity=SMOKE_WORKLOAD["serve_cache_capacity"]
            )
            service.serve(
                synthetic_trace(
                    SMOKE_WORKLOAD["serve_requests"], seed=SMOKE_WORKLOAD["serve_seed"]
                )
            )
        registry.absorb_service_metrics(service.metrics())

    return RunRecord(
        label=label,
        workload=dict(SMOKE_WORKLOAD),
        spans=tracer.finish(),
        metrics=registry,
    )
