"""The recorded smoke workload: one traced pass over every hot path.

:func:`smoke_run` drives a small-N version of each subsystem — the
single-GPU pipeline (via :func:`repro.kpm.compute_dos`), the multi-GPU
cluster driver, and the batching/caching spectral service — under one
:class:`~repro.trace.tracer.Tracer`, absorbs every
:class:`~repro.timing.TimingReport` / ``ServiceMetrics`` into one
:class:`~repro.obs.metrics.MetricsRegistry`, and returns the combined
:class:`~repro.obs.record.RunRecord`.  Everything is seeded and modeled,
so two calls produce byte-identical records; ``BENCH_PR4.json`` embeds
this workload (plus the Fig 5-8 gauges) as the regression baseline.

This module lives outside ``repro.obs.__init__`` imports on purpose: it
pulls in the cluster and serve layers, keeping ``repro.obs`` itself
import-light and the package boundary acyclic.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.kpm.config import KPMConfig
from repro.kpm.dos import compute_dos
from repro.lattice import paper_cubic_hamiltonian
from repro.obs.metrics import MetricsRegistry
from repro.obs.record import RunRecord
from repro.trace.tracer import Tracer
from repro.serve.service import SpectralService
from repro.serve.trace import synthetic_trace

__all__ = ["smoke_run", "serve_prefix_run", "SMOKE_WORKLOAD", "SERVE_PREFIX_WORKLOAD"]

#: Deterministic parameters of the smoke workload (embedded in the record).
SMOKE_WORKLOAD = {
    "lattice_side": 4,
    "num_moments": 32,
    "num_random_vectors": 4,
    "num_realizations": 1,
    "block_size": 32,
    "seed": 0,
    "cluster_devices": 2,
    "serve_requests": 8,
    "serve_seed": 1,
    "serve_cache_capacity": 16,
}


#: Deterministic parameters of the prefix-vs-exact cache A/B workload.
SERVE_PREFIX_WORKLOAD = {
    "requests": 24,
    "seed": 2,
    "cache_capacity": 16,
}


def serve_prefix_run(
    *,
    label: str = "serve-prefix",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> RunRecord:
    """A/B the prefix moment cache against exact-order matching.

    Replays one synthetic trace through two otherwise identical services
    — the default prefix cache and the PR 3 exact-order matcher
    (``prefix_cache=False``) — and records both metric families plus the
    headline ``serve_ab.hit_rate_advantage`` gauge (prefix minus exact
    hit-rate).  The trace's workload pool contains same-identity configs
    differing only in ``num_moments``, so the advantage is structurally
    positive; ``BENCH_PR7.json`` embeds this record and the CI gate pins
    the rates (higher-is-better direction), so the prefix cache can
    never silently stop out-hitting exact matching on mixed orders.
    """
    if not isinstance(label, str) or not label:
        raise ValidationError(f"label must be a non-empty string, got {label!r}")
    registry = MetricsRegistry() if registry is None else registry
    tracer = Tracer() if tracer is None else tracer

    rates: dict[str, float] = {}
    with tracer.activate():
        for mode, prefix in (("prefix", True), ("exact", False)):
            with tracer.span(f"workload.serve_{mode}", category="workload"):
                service = SpectralService(
                    ("gpu-sim",),
                    cache_capacity=SERVE_PREFIX_WORKLOAD["cache_capacity"],
                    prefix_cache=prefix,
                )
                # Sequential arrival (one flush per request): repeats
                # must go through the cache, not batch coalescing — the
                # regime the prefix-vs-exact comparison is about.
                for request in synthetic_trace(
                    SERVE_PREFIX_WORKLOAD["requests"],
                    seed=SERVE_PREFIX_WORKLOAD["seed"],
                ):
                    service.submit(request)
                    service.flush()
            metrics = service.metrics()
            rates[mode] = metrics.cache_hit_rate()
            registry.absorb_service_metrics(metrics, prefix=f"serve_{mode}")
    registry.set_gauge(
        "serve_ab.hit_rate_advantage", rates["prefix"] - rates["exact"]
    )

    return RunRecord(
        label=label,
        workload=dict(SERVE_PREFIX_WORKLOAD),
        spans=tracer.finish(),
        metrics=registry,
    )


def smoke_run(
    *,
    label: str = "smoke",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> RunRecord:
    """Trace the gpu / cluster / serve smoke workload into one record.

    Parameters
    ----------
    label:
        Record label (``"smoke"`` by default; the bench baseline passes
        ``"bench-baseline"``).
    registry:
        Optional pre-populated registry to absorb the workload metrics
        into (the bench runner seeds it with the Fig 5-8 gauges).
    tracer:
        Optional tracer to record under; a fresh one by default.  Must
        have no open spans.
    """
    if not isinstance(label, str) or not label:
        raise ValidationError(f"label must be a non-empty string, got {label!r}")
    registry = MetricsRegistry() if registry is None else registry
    tracer = Tracer() if tracer is None else tracer

    from repro.cluster.multigpu import MultiGpuKPM  # deferred: keep repro.obs import-light
    from repro.kpm.rescale import rescale_operator

    hamiltonian = paper_cubic_hamiltonian(SMOKE_WORKLOAD["lattice_side"], format="csr")
    config = KPMConfig(
        num_moments=SMOKE_WORKLOAD["num_moments"],
        num_random_vectors=SMOKE_WORKLOAD["num_random_vectors"],
        num_realizations=SMOKE_WORKLOAD["num_realizations"],
        block_size=SMOKE_WORKLOAD["block_size"],
        seed=SMOKE_WORKLOAD["seed"],
    )

    with tracer.activate():
        with tracer.span("workload.gpu", category="workload"):
            result = compute_dos(hamiltonian, config, backend="gpu-sim")
        registry.absorb_timing_report(result.timing)

        with tracer.span("workload.cluster", category="workload"):
            scaled, _ = rescale_operator(hamiltonian)
            cluster = MultiGpuKPM(SMOKE_WORKLOAD["cluster_devices"])
            _, cluster_report = cluster.compute_moments(scaled, config)
        registry.absorb_timing_report(cluster_report, prefix="timing.cluster")

        with tracer.span("workload.serve", category="workload"):
            service = SpectralService(
                ("gpu-sim",), cache_capacity=SMOKE_WORKLOAD["serve_cache_capacity"]
            )
            service.serve(
                synthetic_trace(
                    SMOKE_WORKLOAD["serve_requests"], seed=SMOKE_WORKLOAD["serve_seed"]
                )
            )
        registry.absorb_service_metrics(service.metrics())

    return RunRecord(
        label=label,
        workload=dict(SMOKE_WORKLOAD),
        spans=tracer.finish(),
        metrics=registry,
    )
