"""repro.obs — deterministic observability: tracing, metrics, perf gating.

The paper's entire evaluation is timing (Figs. 5-8), yet the repo's
telemetry was fragmented: :class:`repro.gpu.profiler.Profiler` sees only
kernel launches, :class:`repro.timing.TimingReport` only backend phases,
and :class:`repro.serve.ServiceMetrics` only the service.  This package
unifies all three behind one schema:

* :class:`Tracer` / :class:`NullTracer` — hierarchical :class:`Span`
  trees on the *modeled* clock (cost-model seconds, counter-ordered).
  Recorded fields are bit-reproducible across runs; optional host
  wall-clock observations live in ``Span.annotations`` and are excluded
  from equality, exports, and fingerprints.  ``NullTracer`` (the
  default) makes every hook a no-op, so instrumented hot paths cost
  nothing when tracing is off.
* :class:`MetricsRegistry` — named counters / gauges / histograms that
  absorb :class:`~repro.timing.TimingReport` and
  :class:`~repro.serve.ServiceMetrics` summaries.
* :class:`RunRecord` — one run's spans + metrics as deterministic JSON
  (two identical runs produce byte-identical records), with JSON-lines,
  Chrome trace-event, and human-readable tree exporters.
* :func:`compare_records` — the perf-regression gate: modeled span /
  metric costs against a committed baseline (``BENCH_PR4.json``),
  tolerance-banded per label.

The tracing primitives (:class:`Span`, :class:`Tracer`,
:func:`current_tracer`) are defined in :mod:`repro.trace`, at the bottom
of the layer stack, so the instrumented layers (``kpm``, ``gpukpm``,
``cluster``, ``serve``) never import this package; they are re-exported
here as the stable public surface.  Rule RA007 of :mod:`repro.analysis`
enforces that layering.

CLI: ``python -m repro obs record|compare`` (see docs/OBSERVABILITY.md).
"""

from repro.obs.compare import ComparisonResult, CostDelta, compare_records
from repro.obs.export import render_tree, to_chrome_trace, to_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.record import (
    RunRecord,
    SCHEMA_VERSION,
    load_run_record,
    write_run_record,
)
from repro.trace import NULL_TRACER, NullTracer, Span, Tracer, current_tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "MetricsRegistry",
    "RunRecord",
    "SCHEMA_VERSION",
    "load_run_record",
    "write_run_record",
    "to_chrome_trace",
    "to_jsonl",
    "render_tree",
    "compare_records",
    "ComparisonResult",
    "CostDelta",
]
