"""The pinned sanitizer workload: every hot path under instrumentation.

:func:`sanitized_run` drives small pinned versions of the library's
device workloads — the single-GPU DoS pipeline in both storages, the
batching/caching spectral service, the fault-injected multi-GPU cluster
driver, and the Kubo–Greenwood conductivity runner — under one
:class:`~repro.sanitize.DeviceSanitizer`, and returns the combined
:class:`~repro.sanitize.SanitizerReport`.  Everything is seeded and the
simulator executes blocks serially, so two calls produce byte-identical
reports; ``sanitize-baseline.json`` commits the clean report and CI
compares fingerprints against it.

Like :mod:`repro.obs.workloads`, this module stays outside
``repro.obs.__init__`` and defers its cluster/serve/gpukpm imports so
``repro.obs`` itself remains import-light.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.kpm.config import KPMConfig
from repro.kpm.dos import compute_dos
from repro.lattice import paper_cubic_hamiltonian
from repro.sanitize import DeviceSanitizer, SanitizerReport

__all__ = [
    "cross_check_certificate",
    "sanitized_run",
    "SANITIZE_WORKLOAD",
    "SANITIZE_WORKLOAD_NAMES",
]

#: Deterministic parameters of the sanitized workloads (embedded in the
#: report, so a fingerprint pins the exact configuration).
SANITIZE_WORKLOAD = {
    "lattice_side": 4,
    "num_moments": 32,
    "num_random_vectors": 4,
    "num_realizations": 1,
    "block_size": 32,
    "seed": 0,
    "serve_requests": 8,
    "serve_seed": 1,
    "serve_cache_capacity": 16,
    "cluster_devices": 2,
    "cluster_fault_seed": 3,
    "cluster_fault_rate": 0.25,
    "cluster_checkpoint_every": 2,
    "conductivity_side": 3,
    "conductivity_moments": 8,
    "conductivity_vectors": 2,
    "tune_formats": ("csr", "csr-vector", "ell"),
    "tune_vector_width": 4,
}

#: The runnable workload names, in execution order.
SANITIZE_WORKLOAD_NAMES = ("dos", "serve", "cluster", "conductivity", "tune")


def _dos_config() -> KPMConfig:
    return KPMConfig(
        num_moments=SANITIZE_WORKLOAD["num_moments"],
        num_random_vectors=SANITIZE_WORKLOAD["num_random_vectors"],
        num_realizations=SANITIZE_WORKLOAD["num_realizations"],
        block_size=SANITIZE_WORKLOAD["block_size"],
        seed=SANITIZE_WORKLOAD["seed"],
    )


def _run_dos() -> None:
    for storage in ("csr", "dense"):
        hamiltonian = paper_cubic_hamiltonian(
            SANITIZE_WORKLOAD["lattice_side"], format=storage
        )
        compute_dos(hamiltonian, _dos_config(), backend="gpu-sim")


def _run_serve() -> None:
    from repro.serve.service import SpectralService
    from repro.serve.trace import synthetic_trace

    service = SpectralService(
        ("gpu-sim",), cache_capacity=SANITIZE_WORKLOAD["serve_cache_capacity"]
    )
    service.serve(
        synthetic_trace(
            SANITIZE_WORKLOAD["serve_requests"], seed=SANITIZE_WORKLOAD["serve_seed"]
        )
    )


def _run_cluster() -> None:
    from repro.cluster.faults import FaultSchedule
    from repro.cluster.multigpu import MultiGpuKPM
    from repro.kpm.rescale import rescale_operator

    hamiltonian = paper_cubic_hamiltonian(
        SANITIZE_WORKLOAD["lattice_side"], format="csr"
    )
    scaled, _ = rescale_operator(hamiltonian)
    rate = SANITIZE_WORKLOAD["cluster_fault_rate"]
    schedule = FaultSchedule.sample(
        SANITIZE_WORKLOAD["cluster_fault_seed"],
        SANITIZE_WORKLOAD["cluster_devices"],
        crash_rate=rate,
        straggler_rate=rate,
        transfer_rate=rate,
    )
    driver = MultiGpuKPM(
        SANITIZE_WORKLOAD["cluster_devices"],
        fault_schedule=schedule,
        checkpoint_every=SANITIZE_WORKLOAD["cluster_checkpoint_every"],
    )
    driver.compute_moments(scaled, _dos_config())


def _run_conductivity() -> None:
    from repro.gpukpm.conductivity_gpu import GpuConductivity
    from repro.kpm.rescale import rescale_operator

    hamiltonian = paper_cubic_hamiltonian(
        SANITIZE_WORKLOAD["conductivity_side"], format="csr"
    )
    scaled, _ = rescale_operator(hamiltonian)
    config = KPMConfig(
        num_moments=SANITIZE_WORKLOAD["conductivity_moments"],
        num_random_vectors=SANITIZE_WORKLOAD["conductivity_vectors"],
        num_realizations=SANITIZE_WORKLOAD["num_realizations"],
        block_size=SANITIZE_WORKLOAD["block_size"],
        seed=SANITIZE_WORKLOAD["seed"],
    )
    GpuConductivity().run(scaled, scaled, config)


def _run_tune() -> None:
    """Each sparse SpMV block program under the sanitizer.

    The dense pipeline is covered by the ``dos`` workload; this drives
    the csr-scalar, csr-vector, and ELL programs explicitly (pinned
    format, not tuner-driven, so coverage cannot silently change when
    cost models shift the tuner's winner).
    """
    from repro.gpukpm.pipeline import GpuKPM

    hamiltonian = paper_cubic_hamiltonian(
        SANITIZE_WORKLOAD["lattice_side"], format="csr"
    )
    for storage in SANITIZE_WORKLOAD["tune_formats"]:
        width = (
            SANITIZE_WORKLOAD["tune_vector_width"]
            if storage == "csr-vector"
            else None
        )
        kpm = GpuKPM(spmv_format=storage, vector_width=width)
        kpm.compute_moments(hamiltonian, _dos_config())


_RUNNERS = {
    "dos": _run_dos,
    "serve": _run_serve,
    "cluster": _run_cluster,
    "conductivity": _run_conductivity,
    "tune": _run_tune,
}


def sanitized_run(
    *,
    workloads: tuple[str, ...] = SANITIZE_WORKLOAD_NAMES,
    suppress: tuple[str, ...] = (),
    label: str = "sanitize",
) -> SanitizerReport:
    """Run the pinned workloads under a device sanitizer; return the report.

    Parameters
    ----------
    workloads:
        Names from :data:`SANITIZE_WORKLOAD_NAMES`, executed in the
        canonical order regardless of the order given.
    suppress:
        Finding codes (``SANxxx``) routed to the report's suppressed
        list instead of its findings.
    label:
        Report label (embedded in the JSON and its fingerprint).
    """
    for name in workloads:
        if name not in _RUNNERS:
            raise ValidationError(
                f"unknown sanitize workload {name!r}; known: "
                f"{', '.join(SANITIZE_WORKLOAD_NAMES)}"
            )
    sanitizer = DeviceSanitizer(suppress=suppress)
    selected = [name for name in SANITIZE_WORKLOAD_NAMES if name in set(workloads)]
    with sanitizer.activate():
        for name in selected:
            _RUNNERS[name]()
    workload = dict(SANITIZE_WORKLOAD)
    workload["workloads"] = selected
    return sanitizer.report(label=label, workload=workload)


def cross_check_certificate(report: SanitizerReport, certificate: dict) -> list[str]:
    """RA020's dynamic half: did the sanitized run back the proof deferrals?

    The static kernel verifier's certificate
    (:mod:`repro.analysis.kernelver`) records, per kernel, whether its
    safety obligations were *proven* or deferred to dynamic checking
    (status ``"sanitize"`` plus a named workload).  This cross-check
    closes the loop on the deferred half: every deferring kernel's
    workload must have actually run (``workload["workloads"]``), the
    kernel must appear in the report's per-kernel launch counters, and
    the run must be clean.  Returns a list of problem strings — empty
    means the certificate's dynamic obligations are discharged.
    """
    if not isinstance(report, SanitizerReport):
        raise ValidationError(
            f"report must be a SanitizerReport, got {type(report).__name__}"
        )
    problems: list[str] = []
    schema = certificate.get("schema") if isinstance(certificate, dict) else None
    if schema != "repro.kernelver/1":
        return [
            f"unsupported proof-certificate schema {schema!r} "
            "(expected 'repro.kernelver/1')"
        ]
    ran = set(report.workload.get("workloads", ()))
    launched = report.stats.get("kernel_launches", {})
    for entry in certificate.get("kernels", ()):
        name = entry.get("kernel", "?")
        if entry.get("status") == "failed":
            problems.append(
                f"kernel {name!r} is recorded as 'failed' in the certificate; "
                "a failed proof cannot be discharged dynamically"
            )
            continue
        if entry.get("status") != "sanitize":
            continue
        workload = entry.get("sanitize_workload")
        if workload not in SANITIZE_WORKLOAD_NAMES:
            problems.append(
                f"kernel {name!r} defers to unknown sanitize workload "
                f"{workload!r}; known: {', '.join(SANITIZE_WORKLOAD_NAMES)}"
            )
            continue
        if workload not in ran:
            problems.append(
                f"kernel {name!r} defers to sanitize workload {workload!r}, "
                "which this run did not execute"
            )
            continue
        if not launched.get(name):
            problems.append(
                f"kernel {name!r} defers to sanitize workload {workload!r} "
                "but was never launched by the sanitized run"
            )
    if not report.clean and any(
        entry.get("status") == "sanitize" for entry in certificate.get("kernels", ())
    ):
        problems.append(
            f"sanitized run reported {len(report.findings)} finding(s); "
            "dynamic obligations require a clean run"
        )
    return problems
