"""Module entry point: ``python -m repro.obs record|compare ...``."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
