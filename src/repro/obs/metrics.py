"""MetricsRegistry: named counters, gauges, and histograms behind one schema.

The registry is the union point for the repo's pre-existing telemetry:
:meth:`MetricsRegistry.absorb_timing_report` maps a backend
:class:`~repro.timing.TimingReport` to gauges and
:meth:`MetricsRegistry.absorb_service_metrics` maps a
:class:`~repro.serve.ServiceMetrics` snapshot to counters/gauges — both
deliberately dropping ``wall_seconds`` so the registry stays on the
deterministic modeled clock.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError

__all__ = ["MetricsRegistry"]


def _check_name(name: str) -> None:
    if not isinstance(name, str) or not name:
        raise ValidationError(f"metric name must be a non-empty string, got {name!r}")


def _check_finite(name: str, value) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValidationError(
            f"metric {name!r} needs a numeric value, got {type(value).__name__}"
        )
    if not math.isfinite(value):
        raise ValidationError(f"metric {name!r} needs a finite value, got {value!r}")
    return float(value)


class MetricsRegistry:
    """Three metric families keyed by dotted names.

    * **counters** — monotonic totals (``inc``);
    * **gauges** — last-write-wins values (``set_gauge``);
    * **histograms** — running ``count/total/min/max`` summaries
      (``observe``), enough for deterministic export without storing
      every sample.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the named counter."""
        _check_name(name)
        value = _check_finite(name, amount)
        if value < 0.0:
            raise ValidationError(f"counter {name!r} cannot decrease (amount={amount})")
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        _check_name(name)
        self.gauges[name] = _check_finite(name, value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the named histogram summary."""
        _check_name(name)
        sample = _check_finite(name, value)
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = {
                "count": 1.0,
                "total": sample,
                "min": sample,
                "max": sample,
            }
        else:
            hist["count"] += 1.0
            hist["total"] += sample
            hist["min"] = min(hist["min"], sample)
            hist["max"] = max(hist["max"], sample)

    # ------------------------------------------------------------------
    def absorb_timing_report(self, report, *, prefix: str | None = None) -> None:
        """Record a :class:`~repro.timing.TimingReport` as gauges.

        Emits ``{prefix}.modeled_seconds`` and one
        ``{prefix}.phase.{name}_seconds`` gauge per breakdown phase;
        ``wall_seconds`` is intentionally not recorded (non-deterministic).
        The default prefix is ``timing.{report.backend}``.
        """
        if prefix is None:
            prefix = f"timing.{report.backend}"
        _check_name(prefix)
        if report.modeled_seconds is not None:
            self.set_gauge(f"{prefix}.modeled_seconds", report.modeled_seconds)
        for phase, seconds in report.breakdown.items():
            self.set_gauge(f"{prefix}.phase.{phase}_seconds", seconds)

    def absorb_service_metrics(self, metrics, *, prefix: str = "serve") -> None:
        """Record a :class:`~repro.serve.ServiceMetrics` snapshot.

        Monotonic service totals become counters, sizes and modeled
        seconds become gauges; ``wall_seconds`` is dropped for the same
        determinism reason as in :meth:`absorb_timing_report`.
        """
        _check_name(prefix)
        for field_name in (
            "requests_total",
            "responses_total",
            "batches_total",
            "coalesced_requests",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_prefix_hits",
            "cache_extensions",
            "cache_forwards",
            "refined_tiers",
            "early_stops",
            "engine_dispatches",
            "engine_failures",
            "engine_ejections",
            "engine_readmissions",
        ):
            self.inc(f"{prefix}.{field_name}", getattr(metrics, field_name))
        self.set_gauge(f"{prefix}.cache_size", metrics.cache_size)
        self.set_gauge(f"{prefix}.queue_peak_depth", metrics.queue_peak_depth)
        self.set_gauge(f"{prefix}.modeled_served_seconds", metrics.modeled_served_seconds)
        self.set_gauge(f"{prefix}.modeled_naive_seconds", metrics.modeled_naive_seconds)
        self.set_gauge(f"{prefix}.cache_hit_rate", metrics.cache_hit_rate())
        self.set_gauge(f"{prefix}.modeled_speedup", metrics.modeled_speedup())
        for engine, seconds in metrics.modeled_seconds_by_engine.items():
            self.set_gauge(f"{prefix}.engine.{engine}.modeled_seconds", seconds)

    def absorb_sanitizer_report(self, report, *, prefix: str = "sanitize") -> None:
        """Record a :class:`~repro.sanitize.SanitizerReport`.

        Finding totals become counters — one ``{prefix}.findings.SANxxx``
        per known code (zeros included, so a clean run still writes the
        full counter family) plus ``{prefix}.findings_total`` and
        ``{prefix}.suppressed_total`` — and the sanitizer's work stats
        (launches/blocks/arrays/bytes/accesses checked) become gauges.
        Everything absorbed derives from the deterministic report, so
        registry snapshots stay byte-reproducible.
        """
        _check_name(prefix)
        for code, count in sorted(report.counts_by_code().items()):
            self.inc(f"{prefix}.findings.{code}", count)
        self.inc(f"{prefix}.findings_total", len(report.findings))
        self.inc(f"{prefix}.suppressed_total", len(report.suppressed))
        for stat, value in sorted(report.stats.items()):
            if stat in ("findings", "suppressed"):
                continue  # already counted above
            if isinstance(value, dict):
                # Per-kernel breakdowns (``kernel_launches``) fan out
                # into one gauge per kernel name.
                for key, count in sorted(value.items()):
                    self.set_gauge(f"{prefix}.{stat}.{key}", count)
                continue
            self.set_gauge(f"{prefix}.{stat}", value)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Sorted plain-dict form for deterministic JSON export."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: dict(self.histograms[name]) for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValidationError("metrics dict must be a mapping")
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.inc(name, value)
        for name, value in data.get("gauges", {}).items():
            registry.set_gauge(name, value)
        for name, hist in data.get("histograms", {}).items():
            _check_name(name)
            registry.histograms[name] = {
                key: _check_finite(name, hist[key])
                for key in ("count", "total", "min", "max")
            }
        return registry
