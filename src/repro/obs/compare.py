"""The perf-regression gate: modeled costs vs a committed baseline.

:func:`compare_records` aggregates each record's modeled seconds per
span label (plus any ``*seconds*`` metric) and flags regressions where
the current cost exceeds the baseline by more than a tolerance band.
Quality metrics — names containing ``rate``, ``ratio``, or ``speedup``
— are gated in the *opposite* direction: they regress when the current
value falls below the baseline band (a cache whose hit-rate drops is as
broken as an engine that got slower).
Because both sides are on the deterministic modeled clock, the gate has
no measurement noise — the tolerance absorbs *intentional* drift (cost
model recalibration), not jitter.  CI runs it as::

    python -m repro obs compare --baseline BENCH_PR4.json
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.obs.record import RunRecord

__all__ = ["CostDelta", "ComparisonResult", "compare_records"]

#: Absolute slack in modeled seconds, so zero-cost baseline labels don't
#: fail on any nonzero current cost (relative tolerance alone would).
DEFAULT_FLOOR_SECONDS = 1e-9


#: Metric-name fragments gated in the higher-is-better direction.
_HIGHER_IS_BETTER = ("rate", "ratio", "speedup")


def _is_higher_better(label: str) -> bool:
    return any(fragment in label for fragment in _HIGHER_IS_BETTER)


@dataclass(frozen=True)
class CostDelta:
    """One compared label: baseline vs current modeled seconds."""

    label: str
    kind: str  # "span" | "metric"
    baseline: float | None
    current: float | None
    tolerance: float
    status: str  # "ok" | "regression" | "missing" | "new"
    direction: str = "lower"  # "lower" | "higher" — which way is better

    @property
    def ratio(self) -> float:
        """current/baseline (1.0 when either side is absent or zero)."""
        if not self.baseline or self.current is None:
            return 1.0
        return self.current / self.baseline

    def summary(self) -> str:
        """One-line description for gate output."""
        unit = "s" if self.direction == "lower" else ""
        fmt = lambda v: "-" if v is None else f"{v:.6g}{unit}"  # noqa: E731
        return (
            f"[{self.status}] {self.kind} {self.label}: "
            f"baseline={fmt(self.baseline)} current={fmt(self.current)} "
            f"(tolerance {self.tolerance:.0%}, {self.direction} is better)"
        )


@dataclass
class ComparisonResult:
    """Outcome of one baseline comparison."""

    ok: bool
    deltas: list[CostDelta] = field(default_factory=list)

    @property
    def failures(self) -> list[CostDelta]:
        """Deltas that fail the gate (regressions and missing labels)."""
        return [d for d in self.deltas if d.status in ("regression", "missing")]

    def summary(self) -> str:
        """Multi-line report: verdict, failures first, then the rest."""
        verdict = "PASS" if self.ok else "FAIL"
        ordered = self.failures + [d for d in self.deltas if d not in self.failures]
        lines = [f"{verdict}: {len(self.failures)} failure(s), {len(self.deltas)} label(s) compared"]
        lines.extend(delta.summary() for delta in ordered)
        return "\n".join(lines)


def _tolerance_for(label: str, default: float, bands: dict[str, float]) -> float:
    for pattern in sorted(bands):
        if fnmatch.fnmatchcase(label, pattern):
            return bands[pattern]
    return default


def _seconds_metrics(record: RunRecord) -> dict[str, float]:
    values: dict[str, float] = {}
    for family in (record.metrics.counters, record.metrics.gauges):
        for name, value in family.items():
            if "seconds" in name or _is_higher_better(name):
                values[name] = value
    return values


def compare_records(
    baseline: RunRecord,
    current: RunRecord,
    *,
    tolerance: float = 0.10,
    bands: dict[str, float] | None = None,
    ignore: tuple = (),
    floor_seconds: float = DEFAULT_FLOOR_SECONDS,
) -> ComparisonResult:
    """Gate ``current`` against ``baseline`` on modeled costs.

    Parameters
    ----------
    baseline, current:
        The committed baseline record and the freshly recorded run.
    tolerance:
        Default relative band: a label regresses when
        ``current > baseline * (1 + tolerance) + floor_seconds``.
    bands:
        Optional per-label overrides, keyed by :mod:`fnmatch` patterns
        matched against the span label / metric name (first match in
        sorted pattern order wins), e.g. ``{"serve.*": 0.25}``.
    ignore:
        :mod:`fnmatch` patterns of labels to leave out of the comparison
        entirely (e.g. ``("bench.*",)`` when only the smoke workload was
        re-recorded).
    floor_seconds:
        Absolute slack so zero-cost baseline labels tolerate rounding.

    Labels present in the baseline but absent from the current run fail
    as ``"missing"`` (a silently vanished phase is as suspect as a slow
    one); labels new in the current run pass as ``"new"``.
    """
    if not isinstance(baseline, RunRecord) or not isinstance(current, RunRecord):
        raise ValidationError("compare_records needs two RunRecord instances")
    if not isinstance(tolerance, (int, float)) or tolerance < 0.0:
        raise ValidationError(f"tolerance must be >= 0, got {tolerance!r}")
    if not isinstance(floor_seconds, (int, float)) or floor_seconds < 0.0:
        raise ValidationError(f"floor_seconds must be >= 0, got {floor_seconds!r}")
    bands = dict(bands or {})
    for pattern, band in bands.items():
        if not isinstance(band, (int, float)) or band < 0.0:
            raise ValidationError(
                f"tolerance band for {pattern!r} must be >= 0, got {band!r}"
            )
    ignore = tuple(ignore)
    for pattern in ignore:
        if not isinstance(pattern, str) or not pattern:
            raise ValidationError(
                f"ignore patterns must be non-empty strings, got {pattern!r}"
            )

    deltas: list[CostDelta] = []
    for kind, base_values, cur_values in (
        ("span", baseline.span_costs(), current.span_costs()),
        ("metric", _seconds_metrics(baseline), _seconds_metrics(current)),
    ):
        for label in sorted(set(base_values) | set(cur_values)):
            if any(fnmatch.fnmatchcase(label, pattern) for pattern in ignore):
                continue
            band = _tolerance_for(label, float(tolerance), bands)
            higher_better = kind == "metric" and _is_higher_better(label)
            base = base_values.get(label)
            cur = cur_values.get(label)
            if base is None:
                status = "new"
            elif cur is None:
                status = "missing"
            elif higher_better:
                status = (
                    "regression"
                    if cur < base * (1.0 - band) - floor_seconds
                    else "ok"
                )
            elif cur > base * (1.0 + band) + floor_seconds:
                status = "regression"
            else:
                status = "ok"
            deltas.append(
                CostDelta(
                    label=label,
                    kind=kind,
                    baseline=base,
                    current=cur,
                    tolerance=band,
                    status=status,
                    direction="higher" if higher_better else "lower",
                )
            )
    result = ComparisonResult(ok=True, deltas=deltas)
    result.ok = not result.failures
    return result
