"""RunRecord: one run's spans + metrics as deterministic JSON.

A record is a pure function of the workload: spans carry only modeled-
clock fields (annotations are excluded by default), metric maps are
emitted key-sorted, and :meth:`RunRecord.to_json` uses a fixed
``json.dumps`` configuration — so two identical runs produce
byte-identical files and :meth:`RunRecord.fingerprint` is a stable
content hash.  ``BENCH_PR4.json`` at the repo root is one committed
:class:`RunRecord` serving as the perf-regression baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.trace.span import Span

__all__ = ["RunRecord", "SCHEMA_VERSION", "load_run_record", "write_run_record"]

#: Schema tag embedded in every record; bump on breaking layout changes.
SCHEMA_VERSION = "repro.obs/1"


@dataclass
class RunRecord:
    """Everything observed in one run.

    Attributes
    ----------
    label:
        Human name of the run (e.g. ``"bench-baseline"``, ``"smoke"``).
    workload:
        Deterministic scalar description of what ran (sizes, seeds,
        engines) so a baseline is self-describing.
    spans:
        Root spans from a :class:`~repro.trace.tracer.Tracer`.
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    label: str
    workload: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    schema: str = SCHEMA_VERSION

    # ------------------------------------------------------------------
    def span_costs(self) -> dict[str, float]:
        """Total modeled seconds per span label, over the whole forest.

        This is the aggregation the regression gate compares: repeated
        labels (e.g. one ``serve.batch`` per batch) sum.
        """
        costs: dict[str, float] = {}
        for root in self.spans:
            for span in root.walk():
                costs[span.label] = costs.get(span.label, 0.0) + span.duration
        return costs

    # ------------------------------------------------------------------
    def to_dict(self, *, include_annotations: bool = False) -> dict:
        """Plain-dict form; annotations stay out unless requested."""
        return {
            "schema": self.schema,
            "label": self.label,
            "workload": dict(self.workload),
            "spans": [
                span.to_dict(include_annotations=include_annotations)
                for span in self.spans
            ],
            "metrics": self.metrics.to_dict(),
        }

    def to_json(self, *, indent: int | None = 2, include_annotations: bool = False) -> str:
        """Deterministic JSON text (sorted keys, fixed separators)."""
        return json.dumps(
            self.to_dict(include_annotations=include_annotations),
            indent=indent,
            sort_keys=True,
            ensure_ascii=True,
        )

    def fingerprint(self) -> str:
        """SHA-256 of the canonical (annotation-free, compact) JSON."""
        canonical = json.dumps(
            self.to_dict(include_annotations=False),
            sort_keys=True,
            ensure_ascii=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValidationError("run record must be a JSON object")
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported run-record schema {schema!r} (expected {SCHEMA_VERSION!r})"
            )
        label = data.get("label")
        if not isinstance(label, str) or not label:
            raise ValidationError("run record needs a non-empty 'label'")
        return cls(
            label=label,
            workload=dict(data.get("workload", {})),
            spans=[Span.from_dict(span) for span in data.get("spans", ())],
            metrics=MetricsRegistry.from_dict(data.get("metrics", {})),
            schema=schema,
        )


def load_run_record(path) -> RunRecord:
    """Read and validate a :class:`RunRecord` JSON file."""
    try:
        with open(path, "r", encoding="ascii") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ValidationError(f"cannot read run record {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValidationError(f"run record {path!r} is not valid JSON: {exc}") from exc
    return RunRecord.from_dict(data)


def write_run_record(record: RunRecord, path, *, include_annotations: bool = False) -> None:
    """Write a record as deterministic JSON (trailing newline included)."""
    if not isinstance(record, RunRecord):
        raise ValidationError(
            f"record must be a RunRecord, got {type(record).__name__}"
        )
    text = record.to_json(include_annotations=include_annotations) + "\n"
    with open(path, "w", encoding="ascii", newline="\n") as handle:
        handle.write(text)
