"""Exception hierarchy for :mod:`repro`.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` from NumPy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ShapeError",
    "SpectrumError",
    "DeviceError",
    "OutOfMemoryError",
    "LaunchError",
    "FaultError",
    "DeviceLostError",
    "ConvergenceError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong value, range, or option name)."""


class ShapeError(ValidationError):
    """An array argument has an incompatible shape or dtype."""


class SpectrumError(ReproError):
    """Spectral rescaling produced eigenvalues outside ``[-1, 1]``.

    Raised when a matrix–scale mismatch is detected, e.g. when user-provided
    bounds are tighter than the true spectrum and the Chebyshev recursion
    diverges.
    """


class DeviceError(ReproError):
    """Generic failure inside the simulated GPU device."""


class OutOfMemoryError(DeviceError):
    """A device allocation exceeded the configured global-memory capacity."""


class LaunchError(DeviceError):
    """A kernel launch was configured outside the device's limits."""


class FaultError(DeviceError):
    """A cluster fault could not be recovered.

    Raised by the resilient multi-GPU driver (:mod:`repro.cluster`) when
    the retry budget of the :class:`~repro.cluster.RetryPolicy` is
    exhausted or when no surviving node remains to rebalance onto.
    """


class DeviceLostError(FaultError):
    """A simulated cluster node crashed mid-run.

    Internal recovery signal of :mod:`repro.cluster`: the resilient
    driver catches it, restores the node's checkpointed moment rows, and
    rebalances the unfinished vector range over the survivors.  It
    escapes to the caller only when recovery is impossible.
    """


class ConvergenceError(ReproError):
    """An iterative routine (e.g. Lanczos bounds) failed to converge."""
