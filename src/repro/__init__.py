"""repro — GPU-accelerated Kernel Polynomial Method, reproduced.

Full reproduction of S. Zhang, S. Yamagiwa, M. Okumura, S. Yunoki,
"Performance Acceleration of Kernel Polynomial Method Applying Graphics
Processing Units" (IPDPSW 2011, arXiv:1105.5481), on a simulated CUDA
device.

Quick start::

    from repro import KPMConfig, compute_dos
    from repro.lattice import paper_cubic_hamiltonian

    H = paper_cubic_hamiltonian(10)          # the paper's 10x10x10 cube
    cfg = KPMConfig(num_moments=512, num_random_vectors=32)
    result = compute_dos(H, cfg, backend="gpu-sim")
    print(result.timing.summary())

Subpackages
-----------
``repro.kpm``     the algorithm (rescaling, moments, kernels, DoS, Green)
``repro.sparse``  COO/CSR/dense operator substrate
``repro.lattice`` tight-binding Hamiltonian builders
``repro.gpu``     the CUDA-like GPU simulator (Tesla C2050 model)
``repro.cpu``     the Core i7 930 cost-model backend
``repro.gpukpm``  the paper's GPU KPM design on the simulator
``repro.cluster`` multi-GPU extension (paper future work)
``repro.serve``   batching + caching spectral service layer
``repro.ed``      exact diagonalization reference
``repro.bench``   figure-reproduction harness (Figs. 5-8 + ablations)
``repro.analysis`` AST-based static contract checker
``repro.obs``     deterministic tracing, metrics, perf-regression gate
"""

from repro.errors import (
    ReproError,
    ValidationError,
    ShapeError,
    SpectrumError,
    DeviceError,
    OutOfMemoryError,
    LaunchError,
    ConvergenceError,
)
from repro.kpm import (
    KPMConfig,
    compute_dos,
    DoSResult,
    available_backends,
    available_kernels,
)
from repro.timing import TimingReport

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "KPMConfig",
    "compute_dos",
    "DoSResult",
    "available_backends",
    "available_kernels",
    "TimingReport",
    "ReproError",
    "ValidationError",
    "ShapeError",
    "SpectrumError",
    "DeviceError",
    "OutOfMemoryError",
    "LaunchError",
    "ConvergenceError",
]
