"""Tight-binding Hamiltonian construction.

Builds the single-orbital tight-binding matrix

    H = sum_i eps_i |i><i|  +  sum_<ij> t_ij (|i><j| + |j><i|)

over a :class:`~repro.lattice.Lattice` or an explicit bond list, in CSR,
COO, or dense form.  With the defaults (``hopping=-1``, ``onsite=0``,
``store_diagonal=True``) on a periodic cubic lattice this reproduces the
paper's matrix: symmetric, zero diagonal, off-diagonal entries ``-1``,
and exactly seven *stored* elements per CRS row (six neighbors plus the
explicitly stored zero diagonal).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError, ValidationError
from repro.lattice.builders import cubic
from repro.lattice.lattice import Lattice
from repro.sparse import COOMatrix
from repro.util.validation import check_choice, check_positive_int

__all__ = [
    "TightBindingModel",
    "tight_binding_hamiltonian",
    "paper_cubic_hamiltonian",
    "hamiltonian_from_edges",
]

_FORMATS = ("csr", "coo", "dense")


def _broadcast_param(value, count: int, name: str) -> np.ndarray:
    """Broadcast a scalar or per-item array parameter to length ``count``."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(count, float(arr))
    if arr.ndim != 1 or arr.shape[0] != count:
        raise ShapeError(f"{name} must be a scalar or length-{count} array, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must be finite")
    return arr


def hamiltonian_from_edges(
    num_sites: int,
    edge_i,
    edge_j,
    *,
    hopping=-1.0,
    onsite=0.0,
    store_diagonal: bool = True,
    format: str = "csr",
):
    """Tight-binding Hamiltonian from an explicit bond list.

    Parameters
    ----------
    num_sites:
        Matrix dimension ``D``.
    edge_i, edge_j:
        Endpoint indices of each undirected bond (each bond listed once;
        the Hermitian partner is added automatically).  Self-loops are
        rejected — use ``onsite`` for diagonal terms.
    hopping:
        Scalar or per-bond hopping amplitude ``t_ij``.
    onsite:
        Scalar or per-site energy ``eps_i``.
    store_diagonal:
        Store all diagonal entries explicitly even when zero.  The paper's
        seven-elements-per-row accounting relies on this.
    format:
        ``"csr"``, ``"coo"``, or ``"dense"``.
    """
    num_sites = check_positive_int(num_sites, "num_sites")
    format = check_choice(format, "format", _FORMATS)
    edge_i = np.asarray(edge_i, dtype=np.int64).ravel()
    edge_j = np.asarray(edge_j, dtype=np.int64).ravel()
    if edge_i.shape != edge_j.shape:
        raise ShapeError("edge_i and edge_j must have equal length")
    if edge_i.size:
        lo = min(edge_i.min(), edge_j.min())
        hi = max(edge_i.max(), edge_j.max())
        if lo < 0 or hi >= num_sites:
            raise ValidationError("edge endpoint out of range")
        if np.any(edge_i == edge_j):
            raise ValidationError("self-loop bonds are not allowed; use onsite terms")
    t = _broadcast_param(hopping, edge_i.size, "hopping")
    eps = _broadcast_param(onsite, num_sites, "onsite")

    diag_sites = (
        np.arange(num_sites, dtype=np.int64)
        if store_diagonal
        else np.flatnonzero(eps != 0.0).astype(np.int64)
    )
    rows = np.concatenate([edge_i, edge_j, diag_sites])
    cols = np.concatenate([edge_j, edge_i, diag_sites])
    vals = np.concatenate([t, t, eps[diag_sites]])
    coo = COOMatrix(rows, cols, vals, (num_sites, num_sites)).sum_duplicates()

    if format == "coo":
        return coo
    if format == "csr":
        return coo.to_csr()
    from repro.sparse import DenseOperator

    return DenseOperator(coo.to_dense())


@dataclass(frozen=True)
class TightBindingModel:
    """Declarative description of a tight-binding model on a lattice.

    Attributes
    ----------
    lattice:
        The geometry; nearest-neighbor bonds are generated from it.
    hopping:
        Scalar or per-bond hopping amplitude (bond order follows
        :meth:`Lattice.neighbor_pairs`).
    onsite:
        Scalar or per-site energy.
    store_diagonal:
        Keep explicit zero diagonal entries in sparse storage.
    """

    lattice: Lattice
    hopping: float | np.ndarray = -1.0
    onsite: float | np.ndarray = 0.0
    store_diagonal: bool = True

    def num_sites(self) -> int:
        """Matrix dimension ``D``."""
        return self.lattice.num_sites

    def build(self, format: str = "csr"):
        """Materialize the Hamiltonian in the requested ``format``."""
        i, j = self.lattice.neighbor_pairs()
        return hamiltonian_from_edges(
            self.lattice.num_sites,
            i,
            j,
            hopping=self.hopping,
            onsite=self.onsite,
            store_diagonal=self.store_diagonal,
            format=format,
        )


def tight_binding_hamiltonian(
    lattice: Lattice,
    *,
    hopping=-1.0,
    onsite=0.0,
    store_diagonal: bool = True,
    format: str = "csr",
):
    """One-call version of :class:`TightBindingModel`.

    ``tight_binding_hamiltonian(cubic(10))`` is the paper's matrix.
    """
    if not isinstance(lattice, Lattice):
        raise ValidationError(
            f"lattice must be a Lattice, got {type(lattice).__name__}"
        )
    return TightBindingModel(
        lattice, hopping=hopping, onsite=onsite, store_diagonal=store_diagonal
    ).build(format)


def paper_cubic_hamiltonian(side: int = 10, *, format: str = "dense"):
    """The exact workload matrix of the paper's Sec. IV-A.

    A ``side^3``-site periodic cubic lattice with zero diagonal and ``-1``
    hoppings; the default dense format matches the measured configuration
    ("the CRS format is not applied").
    """
    return tight_binding_hamiltonian(cubic(check_positive_int(side, "side")), format=format)
