"""Lattice and tight-binding Hamiltonian substrate.

The paper's physical workload is a 10x10x10 cubic lattice with one
orbital per site, zero on-site energy, and hopping ``-1`` between nearest
neighbors; in CRS storage each row then holds exactly seven elements (six
neighbor hoppings plus the explicitly stored zero diagonal).  This package
generalizes that construction to chains, square/cubic lattices, honeycomb
sheets, disordered models, and arbitrary graphs.
"""

from repro.lattice.lattice import Lattice
from repro.lattice.builders import chain, square, cubic, honeycomb_edges, kagome_edges
from repro.lattice.hamiltonian import (
    TightBindingModel,
    tight_binding_hamiltonian,
    paper_cubic_hamiltonian,
    hamiltonian_from_edges,
)
from repro.lattice.disorder import anderson_onsite_energies, bond_disorder_hoppings
from repro.lattice.graph import hamiltonian_from_graph

__all__ = [
    "Lattice",
    "chain",
    "square",
    "cubic",
    "honeycomb_edges",
    "kagome_edges",
    "TightBindingModel",
    "tight_binding_hamiltonian",
    "paper_cubic_hamiltonian",
    "hamiltonian_from_edges",
    "anderson_onsite_energies",
    "bond_disorder_hoppings",
    "hamiltonian_from_graph",
]
