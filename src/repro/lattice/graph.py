"""Hamiltonians from arbitrary graphs (networkx interoperability).

Any undirected graph defines a tight-binding model: vertices are sites,
edges are bonds.  This lets the KPM engines run on random regular graphs,
small-world networks, molecule graphs, etc., well beyond the hypercubic
lattices of :mod:`repro.lattice.builders`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.lattice.hamiltonian import hamiltonian_from_edges

__all__ = ["hamiltonian_from_graph"]


def hamiltonian_from_graph(
    graph,
    *,
    hopping: float = -1.0,
    onsite_attr: str | None = None,
    weight_attr: str | None = None,
    format: str = "csr",
):
    """Tight-binding Hamiltonian of an undirected ``networkx`` graph.

    Parameters
    ----------
    graph:
        A ``networkx.Graph`` (or anything with ``nodes`` and ``edges``
        iterables of the same shape).  Nodes are relabeled ``0..D-1`` in
        iteration order.
    hopping:
        Hopping amplitude used for every edge unless ``weight_attr`` names
        an edge attribute to read per-edge amplitudes from.
    onsite_attr:
        Optional node attribute holding the on-site energy (missing
        values default to 0).
    weight_attr:
        Optional edge attribute holding per-bond hoppings.
    format:
        ``"csr"``, ``"coo"``, or ``"dense"``.
    """
    nodes = list(graph.nodes())
    if not nodes:
        raise ValidationError("graph must have at least one node")
    index = {node: k for k, node in enumerate(nodes)}

    edge_i: list[int] = []
    edge_j: list[int] = []
    weights: list[float] = []
    for edge in graph.edges(data=True):
        u, v, attrs = edge
        if u == v:
            continue  # self-loops carry no hopping; use onsite_attr instead
        edge_i.append(index[u])
        edge_j.append(index[v])
        if weight_attr is not None:
            weights.append(float(attrs.get(weight_attr, hopping)))
        else:
            weights.append(float(hopping))

    if onsite_attr is not None:
        onsite = np.zeros(len(nodes), dtype=np.float64)
        node_data = dict(graph.nodes(data=True))
        for node, k in index.items():
            onsite[k] = float(node_data[node].get(onsite_attr, 0.0))
    else:
        onsite = 0.0

    return hamiltonian_from_edges(
        len(nodes),
        np.asarray(edge_i, dtype=np.int64),
        np.asarray(edge_j, dtype=np.int64),
        hopping=np.asarray(weights, dtype=np.float64),
        onsite=onsite,
        format=format,
    )
