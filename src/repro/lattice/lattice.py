"""Hypercubic lattice geometry: site indexing and neighbor enumeration.

A :class:`Lattice` is a ``d``-dimensional box of sites with optional
periodic wrap-around per axis.  Sites are numbered in row-major (C) order,
so for a 10x10x10 cube site ``(x, y, z)`` has index ``x*100 + y*10 + z``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.util.validation import check_positive_int

__all__ = ["Lattice"]


def _normalize_periodic(periodic, ndim: int) -> tuple[bool, ...]:
    if isinstance(periodic, bool):
        return (periodic,) * ndim
    periodic = tuple(bool(p) for p in periodic)
    if len(periodic) != ndim:
        raise ValidationError(
            f"periodic must be a bool or one flag per axis ({ndim}), got {len(periodic)}"
        )
    return periodic


class Lattice:
    """A finite hypercubic lattice.

    Parameters
    ----------
    dims:
        Number of sites along each axis, e.g. ``(10, 10, 10)``.
    periodic:
        One flag per axis (or a single bool for all axes).  A periodic
        axis of length 1 or 2 is rejected for neighbor enumeration
        purposes: wrap-around would duplicate (length 2) or self-link
        (length 1) bonds.
    """

    __slots__ = ("dims", "periodic", "num_sites", "_strides")

    def __init__(self, dims: Sequence[int], periodic: bool | Sequence[bool] = True):
        dims = tuple(check_positive_int(d, "lattice dimension") for d in dims)
        if not dims:
            raise ValidationError("dims must have at least one axis")
        self.dims = dims
        self.periodic = _normalize_periodic(periodic, len(dims))
        for length, per in zip(dims, self.periodic):
            if per and length < 3:
                raise ValidationError(
                    "periodic axes must have length >= 3 to give well-defined "
                    f"nearest-neighbor bonds, got length {length}"
                )
        self.num_sites = math.prod(dims)
        strides = np.ones(len(dims), dtype=np.int64)
        for axis in range(len(dims) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * dims[axis + 1]
        self._strides = strides

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of lattice axes."""
        return len(self.dims)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Lattice(dims={self.dims}, periodic={self.periodic})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Lattice)
            and self.dims == other.dims
            and self.periodic == other.periodic
        )

    def __hash__(self) -> int:
        return hash((self.dims, self.periodic))

    # ------------------------------------------------------------------
    def site_index(self, coords) -> np.ndarray | int:
        """Row-major index of the site(s) at ``coords``.

        ``coords`` is a length-``ndim`` sequence, or an ``(m, ndim)`` array
        for a batch; negative/overflowing coordinates are rejected (use
        :meth:`wrap` first for periodic arithmetic).
        """
        arr = np.asarray(coords, dtype=np.int64)
        single = arr.ndim == 1
        arr = np.atleast_2d(arr)
        if arr.shape[1] != self.ndim:
            raise ValidationError(
                f"coords must have {self.ndim} components, got {arr.shape[1]}"
            )
        dims = np.asarray(self.dims, dtype=np.int64)
        if np.any(arr < 0) or np.any(arr >= dims):
            raise ValidationError("coordinate out of range; call wrap() first")
        idx = arr @ self._strides
        return int(idx[0]) if single else idx

    def site_coords(self, index) -> np.ndarray:
        """Coordinates of the site(s) with the given row-major index."""
        idx = np.asarray(index, dtype=np.int64)
        single = idx.ndim == 0
        idx = np.atleast_1d(idx)
        if np.any(idx < 0) or np.any(idx >= self.num_sites):
            raise ValidationError("site index out of range")
        coords = np.empty((idx.size, self.ndim), dtype=np.int64)
        rem = idx.copy()
        for axis in range(self.ndim):
            coords[:, axis], rem = np.divmod(rem, self._strides[axis])
        return coords[0] if single else coords

    def wrap(self, coords) -> np.ndarray:
        """Wrap coordinates into range on periodic axes (error otherwise)."""
        arr = np.atleast_2d(np.asarray(coords, dtype=np.int64)).copy()
        for axis, (length, per) in enumerate(zip(self.dims, self.periodic)):
            if per:
                arr[:, axis] %= length
            elif np.any((arr[:, axis] < 0) | (arr[:, axis] >= length)):
                raise ValidationError(f"coordinate out of range on open axis {axis}")
        return arr

    # ------------------------------------------------------------------
    def neighbor_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All nearest-neighbor bonds, each counted once.

        Returns ``(i, j)`` index arrays: for every axis, bonds between each
        site and its ``+1`` neighbor along that axis (with wrap-around on
        periodic axes).  Fully vectorized.
        """
        all_i: list[np.ndarray] = []
        all_j: list[np.ndarray] = []
        indices = np.arange(self.num_sites, dtype=np.int64)
        coords = self.site_coords(indices)
        for axis, (length, per) in enumerate(zip(self.dims, self.periodic)):
            if length == 1:
                continue
            shifted = coords.copy()
            shifted[:, axis] += 1
            if per:
                shifted[:, axis] %= length
                keep = np.ones(self.num_sites, dtype=bool)
            else:
                keep = shifted[:, axis] < length
            all_i.append(indices[keep])
            all_j.append((shifted[keep] @ self._strides))
        if not all_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(all_i), np.concatenate(all_j)

    def coordination_numbers(self) -> np.ndarray:
        """Number of nearest neighbors of each site."""
        i, j = self.neighbor_pairs()
        counts = np.zeros(self.num_sites, dtype=np.int64)
        np.add.at(counts, i, 1)
        np.add.at(counts, j, 1)
        return counts
