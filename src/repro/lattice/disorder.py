"""Disorder generators for tight-binding models.

The paper's intro motivates KPM with strongly correlated / disordered
systems; the canonical stress test for a DoS solver is the Anderson model
— uniform random on-site energies ``eps_i ~ U[-W/2, W/2]`` on top of the
clean hopping lattice.  These helpers produce the per-site / per-bond
parameter arrays consumed by the Hamiltonian builders.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.lattice.lattice import Lattice
from repro.util.rng import philox_stream
from repro.util.validation import check_positive_float, check_positive_int

__all__ = ["anderson_onsite_energies", "bond_disorder_hoppings"]


def anderson_onsite_energies(
    num_sites: int | Lattice, strength: float, *, seed: int | None = None
) -> np.ndarray:
    """Uniform Anderson on-site disorder ``eps_i ~ U[-W/2, W/2]``.

    Parameters
    ----------
    num_sites:
        Site count, or a :class:`~repro.lattice.Lattice` to take it from.
    strength:
        Disorder width ``W`` (> 0).
    seed:
        Deterministic stream seed.
    """
    if isinstance(num_sites, Lattice):
        num_sites = num_sites.num_sites
    num_sites = check_positive_int(num_sites, "num_sites")
    strength = check_positive_float(strength, "strength")
    gen = philox_stream(seed, 0xD150, 0)
    return gen.uniform(-strength / 2.0, strength / 2.0, size=num_sites)


def bond_disorder_hoppings(
    lattice: Lattice,
    mean: float = -1.0,
    spread: float = 0.1,
    *,
    seed: int | None = None,
) -> np.ndarray:
    """Per-bond hoppings ``t_ij ~ U[mean - spread/2, mean + spread/2]``.

    The returned array is ordered like :meth:`Lattice.neighbor_pairs` and
    plugs directly into ``TightBindingModel(hopping=...)``.
    """
    if not isinstance(lattice, Lattice):
        raise ValidationError(f"lattice must be a Lattice, got {type(lattice).__name__}")
    spread = check_positive_float(spread, "spread")
    i, _ = lattice.neighbor_pairs()
    gen = philox_stream(seed, 0xD150, 1)
    return gen.uniform(mean - spread / 2.0, mean + spread / 2.0, size=i.size)
