"""Convenience constructors for common lattices.

:func:`cubic` with default arguments builds the paper's 10x10x10 workload
geometry.  :func:`honeycomb_edges` returns an explicit bond list for the
two-site-basis honeycomb sheet (graphene), which is not expressible as a
plain hypercube and therefore feeds :func:`repro.lattice.hamiltonian_from_edges`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.lattice.lattice import Lattice
from repro.util.validation import check_positive_int

__all__ = ["chain", "square", "cubic", "honeycomb_edges", "kagome_edges"]


def chain(length: int, *, periodic: bool = True) -> Lattice:
    """A 1-D chain of ``length`` sites."""
    return Lattice((check_positive_int(length, "length"),), periodic=periodic)


def square(width: int, height: int | None = None, *, periodic: bool = True) -> Lattice:
    """A 2-D square lattice, ``width x height`` (square if height omitted)."""
    width = check_positive_int(width, "width")
    height = width if height is None else check_positive_int(height, "height")
    return Lattice((width, height), periodic=periodic)


def cubic(
    nx: int = 10, ny: int | None = None, nz: int | None = None, *, periodic: bool = True
) -> Lattice:
    """A 3-D cubic lattice; defaults to the paper's 10x10x10 cube."""
    nx = check_positive_int(nx, "nx")
    ny = nx if ny is None else check_positive_int(ny, "ny")
    nz = nx if nz is None else check_positive_int(nz, "nz")
    return Lattice((nx, ny, nz), periodic=periodic)


def honeycomb_edges(
    ncols: int, nrows: int, *, periodic: bool = True
) -> tuple[int, np.ndarray, np.ndarray]:
    """Bond list of a honeycomb lattice with ``ncols x nrows`` unit cells.

    Each unit cell holds an A and a B sublattice site; site indexing is
    ``(col * nrows + row) * 2 + sublattice``.  The three bonds of each A
    site go to the B sites of the same cell, the cell below (row - 1), and
    the cell to the left (col - 1) — the standard brick-wall embedding.

    Returns
    -------
    (num_sites, i, j):
        Total site count and the two endpoint index arrays, each bond once.
    """
    ncols = check_positive_int(ncols, "ncols")
    nrows = check_positive_int(nrows, "nrows")
    if periodic and (ncols < 2 or nrows < 2):
        raise ValidationError("periodic honeycomb needs at least 2x2 unit cells")

    cols, rows = np.meshgrid(
        np.arange(ncols, dtype=np.int64), np.arange(nrows, dtype=np.int64), indexing="ij"
    )
    cols = cols.ravel()
    rows = rows.ravel()

    def cell_site(c, r, sub):
        return (c * nrows + r) * 2 + sub

    a_sites = cell_site(cols, rows, 0)
    edges_i: list[np.ndarray] = [a_sites]
    edges_j: list[np.ndarray] = [cell_site(cols, rows, 1)]

    # Bond to the cell below along rows.
    if periodic:
        edges_i.append(a_sites)
        edges_j.append(cell_site(cols, (rows - 1) % nrows, 1))
    else:
        keep = rows > 0
        edges_i.append(a_sites[keep])
        edges_j.append(cell_site(cols[keep], rows[keep] - 1, 1))

    # Bond to the cell to the left along columns.
    if periodic:
        edges_i.append(a_sites)
        edges_j.append(cell_site((cols - 1) % ncols, rows, 1))
    else:
        keep = cols > 0
        edges_i.append(a_sites[keep])
        edges_j.append(cell_site(cols[keep] - 1, rows[keep], 1))

    num_sites = ncols * nrows * 2
    return num_sites, np.concatenate(edges_i), np.concatenate(edges_j)


def kagome_edges(
    ncols: int, nrows: int, *, periodic: bool = True
) -> tuple[int, np.ndarray, np.ndarray]:
    """Bond list of a kagome lattice with ``ncols x nrows`` unit cells.

    Three sites (A, B, C) per triangular unit cell; site indexing is
    ``(col * nrows + row) * 3 + sublattice``.  Each cell carries the
    up-triangle A-B, B-C, C-A plus the three inter-cell bonds of the
    down-triangle: A(c,r)-B(c,r-1), B(c,r)-C(c+1,r-1)... using the
    standard embedding where A-B bonds repeat along rows and A-C along
    columns.  Every site ends up with coordination 4.

    The kagome tight-binding spectrum has an exactly flat band at
    ``E = +2|t|`` (for hopping ``t = -1``) — the validation anchor the
    tests pin.

    Returns
    -------
    (num_sites, i, j):
        Total site count and the two endpoint index arrays, each bond once.
    """
    ncols = check_positive_int(ncols, "ncols")
    nrows = check_positive_int(nrows, "nrows")
    if periodic and (ncols < 2 or nrows < 2):
        raise ValidationError("periodic kagome needs at least 2x2 unit cells")

    cols, rows = np.meshgrid(
        np.arange(ncols, dtype=np.int64), np.arange(nrows, dtype=np.int64), indexing="ij"
    )
    cols = cols.ravel()
    rows = rows.ravel()

    def cell_site(c, r, sub):
        return (c * nrows + r) * 3 + sub

    a = cell_site(cols, rows, 0)
    b = cell_site(cols, rows, 1)
    c = cell_site(cols, rows, 2)

    edges_i = [a, b, c]  # intra-cell up-triangle: A-B, B-C, C-A
    edges_j = [b, c, a]

    def add_intercell(src, dcol, drow, sub):
        if periodic:
            dst = cell_site((cols + dcol) % ncols, (rows + drow) % nrows, sub)
            edges_i.append(src)
            edges_j.append(dst)
        else:
            keep = (
                (cols + dcol >= 0)
                & (cols + dcol < ncols)
                & (rows + drow >= 0)
                & (rows + drow < nrows)
            )
            edges_i.append(src[keep])
            edges_j.append(cell_site(cols[keep] + dcol, rows[keep] + drow, sub))

    # Down-triangle bonds (A at r, B at r + a1/2, C at r + a2/2):
    add_intercell(b, 1, 0, 0)    # B(c,r) - A(c+1,r)
    add_intercell(c, 0, 1, 0)    # C(c,r) - A(c,r+1)
    add_intercell(b, 1, -1, 2)   # B(c,r) - C(c+1,r-1)

    num_sites = ncols * nrows * 3
    return num_sites, np.concatenate(edges_i), np.concatenate(edges_j)
