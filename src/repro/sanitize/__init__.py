"""repro.sanitize — memory/race sanitizer for the simulated GPU.

A deterministic analogue of ``compute-sanitizer`` for the simulator in
:mod:`repro.gpu`: shadow-state memory checking (uninitialized reads,
use-after-free, double-free, out-of-bounds slices, leaks at reset) plus
inter-block hazard detection (write-write and read-write overlaps
between blocks of one launch).  Enabled ambiently::

    from repro.sanitize import DeviceSanitizer

    san = DeviceSanitizer()
    with san.activate():
        result = compute_dos(hamiltonian, config, backend="gpu-sim")
    report = san.report(label="my-run")
    assert report.clean, report.to_json()

When no sanitizer is active (:data:`NULL_SANITIZER`), the hooks in
:mod:`repro.gpu` are no-ops and ``DeviceArray.data`` returns the raw
buffer — zero overhead, bit-identical results either way.

See ``docs/SANITIZER.md`` for the finding codes (SAN001–SAN007), the
suppression policy, and the ``python -m repro sanitize`` CLI.
"""

from repro.sanitize.findings import (
    FINDING_CODES,
    SanitizerFinding,
    SanitizerReport,
    check_finding_code,
    load_sanitizer_report,
    write_sanitizer_report,
)
from repro.sanitize.sanitizer import (
    DeviceSanitizer,
    NULL_SANITIZER,
    NullSanitizer,
    current_sanitizer,
)
from repro.sanitize.view import SanitizedView

__all__ = [
    "DeviceSanitizer",
    "FINDING_CODES",
    "NULL_SANITIZER",
    "NullSanitizer",
    "SanitizedView",
    "SanitizerFinding",
    "SanitizerReport",
    "check_finding_code",
    "current_sanitizer",
    "load_sanitizer_report",
    "write_sanitizer_report",
]
