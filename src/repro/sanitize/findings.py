"""Sanitizer finding codes and the deterministic findings report.

A :class:`SanitizerFinding` is one detected memory/race defect on the
simulated device; a :class:`SanitizerReport` is the full outcome of one
instrumented run.  The report follows the :mod:`repro.obs.record`
RunRecord idiom exactly — sorted keys, fixed separators, ASCII-only
JSON, SHA-256 fingerprint over the compact canonical form — so two
identical sanitized runs produce byte-identical files and the committed
``sanitize-baseline.json`` can be compared by fingerprint in CI.

Finding codes (the stable public vocabulary; ``# sanitize: ignore``
comments and the runtime ``suppress=`` list must name one of these):

======== ======================= =========================================
code     name                    detector
======== ======================= =========================================
SAN001   uninitialized-read      read of device elements never written
SAN002   out-of-bounds-slice     slice past the end of a device buffer
SAN003   use-after-free          access to a freed :class:`DeviceArray`
SAN004   double-free             second ``free()`` of the same array
SAN005   device-memory-leak      live allocation at device/pool reset
SAN006   write-write-hazard      two blocks of one launch write one element
SAN007   read-write-hazard       one block reads what another block writes
======== ======================= =========================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = [
    "FINDING_CODES",
    "SCHEMA_VERSION",
    "SanitizerFinding",
    "SanitizerReport",
    "check_finding_code",
    "load_sanitizer_report",
    "write_sanitizer_report",
]

#: Schema tag embedded in every report; bump on breaking layout changes.
SCHEMA_VERSION = "repro.sanitize/1"

#: Every finding code the sanitizer can emit, with its short name.
FINDING_CODES: dict[str, str] = {
    "SAN001": "uninitialized-read",
    "SAN002": "out-of-bounds-slice",
    "SAN003": "use-after-free",
    "SAN004": "double-free",
    "SAN005": "device-memory-leak",
    "SAN006": "write-write-hazard",
    "SAN007": "read-write-hazard",
}


def check_finding_code(code: str) -> str:
    """Validate a finding code; returns it unchanged."""
    if code not in FINDING_CODES:
        raise ValidationError(
            f"unknown sanitizer finding code {code!r}; known: "
            f"{', '.join(sorted(FINDING_CODES))}"
        )
    return code


@dataclass(frozen=True, order=True)
class SanitizerFinding:
    """One detected defect, anchored to its device-side context.

    ``kernel`` and ``launch_index``/``block`` locate the owning kernel
    launch and block; host-side accesses (transfers, direct ``.data``
    use outside a launch) carry ``kernel=""`` and ``-1`` indices.
    """

    code: str
    array: str
    kernel: str = ""
    launch_index: int = -1
    block: int = -1
    message: str = ""

    def __post_init__(self) -> None:
        check_finding_code(self.code)

    @property
    def name(self) -> str:
        """The code's short name (``uninitialized-read``, ...)."""
        return FINDING_CODES[self.code]

    def render(self) -> str:
        """One human-readable line."""
        where = f" in {self.kernel!r} block {self.block}" if self.kernel else ""
        return f"{self.code} {self.name}: array {self.array!r}{where}: {self.message}"

    def to_json(self) -> dict:
        """JSON-serializable form."""
        return {
            "code": self.code,
            "name": self.name,
            "array": self.array,
            "kernel": self.kernel,
            "launch_index": self.launch_index,
            "block": self.block,
            "message": self.message,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "SanitizerFinding":
        """Inverse of :meth:`to_json` (the redundant ``name`` is ignored)."""
        if not isinstance(obj, dict):
            raise ValidationError("sanitizer finding must be a JSON object")
        return cls(
            code=str(obj["code"]),
            array=str(obj["array"]),
            kernel=str(obj.get("kernel", "")),
            launch_index=int(obj.get("launch_index", -1)),
            block=int(obj.get("block", -1)),
            message=str(obj.get("message", "")),
        )


@dataclass
class SanitizerReport:
    """Everything one instrumented run detected, as deterministic JSON.

    Attributes
    ----------
    label:
        Human name of the sanitized run (e.g. ``"sanitize-baseline"``).
    workload:
        Deterministic scalar description of what ran, so a committed
        baseline is self-describing.
    findings:
        Reported defects, sorted.
    suppressed:
        Defects matched by the runtime ``suppress=`` code list — still
        recorded so a suppression that stops matching is visible.
    stats:
        Integer instrumentation counters (launches/blocks checked,
        bytes shadowed, ...).
    """

    label: str
    workload: dict = field(default_factory=dict)
    findings: list[SanitizerFinding] = field(default_factory=list)
    suppressed: list[SanitizerFinding] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    schema: str = SCHEMA_VERSION

    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        """True when no (unsuppressed) finding was reported."""
        return not self.findings

    def counts_by_code(self) -> dict[str, int]:
        """``{code: count}`` over the reported findings (zeros included)."""
        counts = {code: 0 for code in FINDING_CODES}
        for finding in self.findings:
            counts[finding.code] += 1
        return counts

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form with sorted finding lists."""
        return {
            "schema": self.schema,
            "label": self.label,
            "workload": dict(self.workload),
            "findings": [finding.to_json() for finding in sorted(self.findings)],
            "suppressed": [finding.to_json() for finding in sorted(self.suppressed)],
            "stats": {key: self.stats[key] for key in sorted(self.stats)},
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """Deterministic JSON text (sorted keys, ASCII, fixed separators)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, ensure_ascii=True)

    def fingerprint(self) -> str:
        """SHA-256 of the compact canonical JSON."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, ensure_ascii=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "SanitizerReport":
        """Rebuild a report from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValidationError("sanitizer report must be a JSON object")
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported sanitizer-report schema {schema!r} "
                f"(expected {SCHEMA_VERSION!r})"
            )
        label = data.get("label")
        if not isinstance(label, str) or not label:
            raise ValidationError("sanitizer report needs a non-empty 'label'")
        return cls(
            label=label,
            workload=dict(data.get("workload", {})),
            findings=[SanitizerFinding.from_json(f) for f in data.get("findings", ())],
            suppressed=[SanitizerFinding.from_json(f) for f in data.get("suppressed", ())],
            stats=dict(data.get("stats", {})),
            schema=schema,
        )


def load_sanitizer_report(path) -> SanitizerReport:
    """Read and validate a :class:`SanitizerReport` JSON file."""
    try:
        with open(path, "r", encoding="ascii") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ValidationError(f"cannot read sanitizer report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"sanitizer report {path!r} is not valid JSON: {exc}"
        ) from exc
    return SanitizerReport.from_dict(data)


def write_sanitizer_report(report: SanitizerReport, path) -> None:
    """Write a report as deterministic JSON (trailing newline included)."""
    if not isinstance(report, SanitizerReport):
        raise ValidationError(
            f"report must be a SanitizerReport, got {type(report).__name__}"
        )
    text = report.to_json() + "\n"
    with open(path, "w", encoding="ascii", newline="\n") as handle:
        handle.write(text)
