"""The ambient device sanitizer (contextvar-switched, like the tracer).

Two implementations share one hook interface:

* :class:`NullSanitizer` — the default.  Every hook is a no-op, so the
  instrumented paths in :mod:`repro.gpu` pay one attribute lookup and
  nothing else when sanitizing is off; ``DeviceArray.data`` returns the
  raw buffer.
* :class:`DeviceSanitizer` — shadow-state checking.  Every allocation
  gets a per-element init map plus an address array; accesses flow in
  through :class:`~repro.sanitize.view.SanitizedView` and the
  :class:`~repro.gpu.device.Device` launch hooks, and defects are
  recorded as :class:`~repro.sanitize.findings.SanitizerFinding` data
  (never exceptions — the run completes and reports).

The active sanitizer travels via :mod:`contextvars`: device code calls
:func:`current_sanitizer` and gets :data:`NULL_SANITIZER` unless one was
activated with ``with sanitizer.activate(): ...`` — the exact
``NULL_TRACER`` pattern from :mod:`repro.trace.tracer`.

Detection model (per launch, per block, per allocation):

* reads/writes are logged as **exact flat-element index sets** (not
  min/max spans, which would alias block-cyclic ``thread_range``
  tilings into false overlaps);
* at ``end_launch`` the per-block write sets are intersected pairwise
  for write-write hazards (SAN006) and each block's read set is checked
  against every *other* block's write set for read-write hazards
  (SAN007) — the simulator's serial block execution hides both, real
  hardware does not;
* reads also check the allocation's init map (SAN001): fresh VRAM is
  treated as uninitialized even though the simulator zero-fills, the
  same strictness as ``compute-sanitizer --tool initcheck``.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator

import numpy as np

from repro.errors import ValidationError
from repro.sanitize.findings import (
    SanitizerFinding,
    SanitizerReport,
    check_finding_code,
)
from repro.sanitize.view import SanitizedView

__all__ = [
    "DeviceSanitizer",
    "NULL_SANITIZER",
    "NullSanitizer",
    "current_sanitizer",
]


class NullSanitizer:
    """Disabled sanitizer: every hook no-ops at near-zero cost."""

    enabled: bool = False

    # Allocation lifecycle ------------------------------------------------
    def on_alloc(self, array) -> None:
        return None

    def on_free(self, array) -> None:
        return None

    def on_double_free(self, array) -> None:
        return None

    def on_use_after_free(self, array) -> None:
        return None

    def on_leak(self, array) -> None:
        return None

    # Launch lifecycle ----------------------------------------------------
    def begin_launch(self, kernel_name: str, grid_blocks: int) -> None:
        return None

    def begin_block(self, linear_block_id: int) -> None:
        return None

    def end_launch(self) -> None:
        return None

    # Views ---------------------------------------------------------------
    def view(self, array):
        """The raw buffer — no instrumentation when disabled."""
        return array.raw

    def activate(self):
        """Install this sanitizer as ambient within a ``with`` block."""
        return _activate(self)


class _Shadow:
    """Shadow state of one allocation: init map + flat addresses."""

    __slots__ = ("array", "name", "seq", "init", "addr", "freed")

    def __init__(self, array, seq: int, *, initialized: bool):
        base = array.raw
        self.array = array
        self.name = array.name
        self.seq = seq
        self.init = np.full(base.size, initialized, dtype=bool)
        self.addr = np.arange(base.size, dtype=np.int64).reshape(base.shape)
        self.freed = False


class _LaunchLog:
    """Per-launch access log: ``{shadow-seq: {block: [index arrays]}}``."""

    __slots__ = ("kernel", "index", "block", "reads", "writes", "shadows")

    def __init__(self, kernel: str, index: int):
        self.kernel = kernel
        self.index = index
        self.block = -1
        self.reads: dict[int, dict[int, list[np.ndarray]]] = {}
        self.writes: dict[int, dict[int, list[np.ndarray]]] = {}
        self.shadows: dict[int, _Shadow] = {}

    def log(self, table: dict, shadow: _Shadow, idx: np.ndarray) -> None:
        self.shadows[shadow.seq] = shadow
        table.setdefault(shadow.seq, {}).setdefault(self.block, []).append(idx)


class DeviceSanitizer(NullSanitizer):
    """Recording sanitizer: shadow memory + inter-block hazard detection."""

    enabled = True

    def __init__(self, *, suppress: tuple = ()) -> None:
        self.findings: list[SanitizerFinding] = []
        self.suppressed: list[SanitizerFinding] = []
        self._suppress = frozenset(check_finding_code(code) for code in suppress)
        self._shadows: dict[int, _Shadow] = {}
        self._seen: set[tuple] = set()
        self._launch: _LaunchLog | None = None
        self._launch_count = 0
        self.launches_checked = 0
        self.blocks_checked = 0
        self.bytes_shadowed = 0
        self.accesses_checked = 0
        self.kernel_launches: dict[str, int] = {}

    # -- shadow registry ------------------------------------------------
    def _shadow_for(self, array, *, initialized: bool) -> _Shadow:
        shadow = self._shadows.get(id(array))
        if shadow is None:
            shadow = _Shadow(array, len(self._shadows), initialized=initialized)
            self._shadows[id(array)] = shadow
            self.bytes_shadowed += int(shadow.init.nbytes + shadow.addr.nbytes)
        return shadow

    def on_alloc(self, array) -> None:
        """Register a fresh allocation; its contents start uninitialized."""
        self._shadow_for(array, initialized=False)

    def on_free(self, array) -> None:
        """Mark the allocation freed so later access reports SAN003."""
        self._shadow_for(array, initialized=True).freed = True

    def on_double_free(self, array) -> None:
        self._emit("SAN004", array.name, "free() called twice on this allocation")

    def on_use_after_free(self, array) -> None:
        self._emit("SAN003", array.name, "access to a freed device allocation")

    def on_leak(self, array) -> None:
        self._emit(
            "SAN005",
            array.name,
            f"allocation of {array.nbytes} bytes still live at device reset",
        )

    def view(self, array) -> SanitizedView:
        """The instrumented view; lazily adopts pre-sanitizer allocations.

        Arrays allocated before activation were filled by un-instrumented
        code, so they register as fully initialized (no false SAN001).
        A freed array still hands out a view — the access itself is the
        SAN003 finding, mirroring a dangling device pointer.
        """
        shadow = self._shadow_for(array, initialized=True)
        if shadow.freed:
            self.on_use_after_free(array)
        return SanitizedView(self, shadow, array.raw, shadow.addr)

    # -- launch lifecycle -----------------------------------------------
    def begin_launch(self, kernel_name: str, grid_blocks: int) -> None:
        self._launch = _LaunchLog(kernel_name, self._launch_count)
        self._launch_count += 1
        self.launches_checked += 1
        self.kernel_launches[kernel_name] = (
            self.kernel_launches.get(kernel_name, 0) + 1
        )

    def begin_block(self, linear_block_id: int) -> None:
        if self._launch is not None:
            self._launch.block = int(linear_block_id)
            self.blocks_checked += 1

    def end_launch(self) -> None:
        log, self._launch = self._launch, None
        if log is not None:
            self._analyze_hazards(log)

    # -- access hooks (called by SanitizedView) --------------------------
    def on_read(self, shadow: _Shadow, idx: np.ndarray) -> None:
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        self.accesses_checked += 1
        if shadow.freed:
            self.on_use_after_free(shadow.array)
            return
        if idx.size:
            known = shadow.init[idx]
            if not known.all():
                bad = idx[~known]
                self._emit(
                    "SAN001",
                    shadow.name,
                    f"read of {bad.size} uninitialized element(s), first at "
                    f"flat index {int(bad.min())}",
                )
        if self._launch is not None:
            self._launch.log(self._launch.reads, shadow, idx)

    def on_write(self, shadow: _Shadow, idx: np.ndarray) -> None:
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        self.accesses_checked += 1
        if shadow.freed:
            self.on_use_after_free(shadow.array)
            return
        if idx.size:
            shadow.init[idx] = True
        if self._launch is not None:
            self._launch.log(self._launch.writes, shadow, idx)

    def on_oob(self, shadow: _Shadow, detail: str) -> None:
        self._emit("SAN002", shadow.name, detail)

    # -- key/value unwrapping (SanitizedView helpers) ---------------------
    def unwrap_value(self, value):
        """Consume a :class:`SanitizedView` operand into its raw buffer."""
        if isinstance(value, SanitizedView):
            return value._consume()
        return value

    def unwrap_key(self, key):
        """Unwrap index expressions; a view used as an index is a read."""
        if isinstance(key, tuple):
            return tuple(self.unwrap_value(part) for part in key)
        return self.unwrap_value(key)

    # -- hazard analysis --------------------------------------------------
    def _analyze_hazards(self, log: _LaunchLog) -> None:
        def per_block_sets(table: dict[int, list[np.ndarray]]) -> dict[int, np.ndarray]:
            return {
                block: np.unique(np.concatenate(chunks))
                for block, chunks in sorted(table.items())
                if chunks
            }

        for seq in sorted(log.shadows):
            shadow = log.shadows[seq]
            writes = per_block_sets(log.writes.get(seq, {}))
            reads = per_block_sets(log.reads.get(seq, {}))
            blocks = sorted(writes)
            # Write-write: two distinct blocks touching one element.
            for i, left in enumerate(blocks):
                for right in blocks[i + 1 :]:
                    overlap = np.intersect1d(
                        writes[left], writes[right], assume_unique=True
                    )
                    if overlap.size:
                        self._emit(
                            "SAN006",
                            shadow.name,
                            f"blocks {left} and {right} both write "
                            f"{overlap.size} element(s), first at flat index "
                            f"{int(overlap[0])}",
                            block=left,
                        )
            # Read-write: one block reading what another block writes.
            for reader, read_set in sorted(reads.items()):
                for writer in blocks:
                    if writer == reader:
                        continue
                    overlap = np.intersect1d(
                        read_set, writes[writer], assume_unique=True
                    )
                    if overlap.size:
                        self._emit(
                            "SAN007",
                            shadow.name,
                            f"block {reader} reads {overlap.size} element(s) "
                            f"written by block {writer}, first at flat index "
                            f"{int(overlap[0])}",
                            block=reader,
                        )

    # -- finding emission -------------------------------------------------
    def _emit(self, code: str, array: str, message: str, *, block: int | None = None) -> None:
        kernel = self._launch.kernel if self._launch is not None else ""
        launch_index = self._launch.index if self._launch is not None else -1
        if block is None:
            block = self._launch.block if self._launch is not None else -1
        dedup = (code, array, kernel, launch_index, block)
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        finding = SanitizerFinding(
            code=code,
            array=array,
            kernel=kernel,
            launch_index=launch_index,
            block=block,
            message=message,
        )
        if code in self._suppress:
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)

    # -- reporting ---------------------------------------------------------
    def stats(self) -> dict:
        """Deterministic instrumentation counters.

        ``kernel_launches`` breaks ``launches_checked`` down per kernel
        name — the evidence the proof-certificate cross-check
        (``repro sanitize --certificate``) uses to confirm that every
        kernel deferring to dynamic checking was actually exercised.
        """
        return {
            "launches_checked": self.launches_checked,
            "blocks_checked": self.blocks_checked,
            "arrays_tracked": len(self._shadows),
            "bytes_shadowed": self.bytes_shadowed,
            "accesses_checked": self.accesses_checked,
            "kernel_launches": dict(sorted(self.kernel_launches.items())),
            "findings": len(self.findings),
            "suppressed": len(self.suppressed),
        }

    def report(self, *, label: str, workload: dict | None = None) -> SanitizerReport:
        """Wrap the recorded findings into a deterministic report."""
        if not isinstance(label, str) or not label:
            raise ValidationError(f"label must be a non-empty string, got {label!r}")
        return SanitizerReport(
            label=label,
            workload=dict(workload or {}),
            findings=sorted(self.findings),
            suppressed=sorted(self.suppressed),
            stats=self.stats(),
        )


#: Shared disabled sanitizer — the ambient default.
NULL_SANITIZER = NullSanitizer()

_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_sanitize_sanitizer", default=NULL_SANITIZER
)


def current_sanitizer() -> NullSanitizer:
    """The ambient sanitizer (:data:`NULL_SANITIZER` unless activated)."""
    return _CURRENT.get()


@contextlib.contextmanager
def _activate(sanitizer: NullSanitizer) -> Iterator[NullSanitizer]:
    token = _CURRENT.set(sanitizer)
    try:
        yield sanitizer
    finally:
        _CURRENT.reset(token)
