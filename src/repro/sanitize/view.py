"""The instrumented device-array view handed out under the sanitizer.

When a :class:`~repro.sanitize.sanitizer.DeviceSanitizer` is active,
``DeviceArray.data`` returns a :class:`SanitizedView` instead of the raw
NumPy buffer.  The view mirrors the slice of ndarray surface the block
programs actually use and reports every element-exact access back to the
sanitizer:

* **basic indexing** (ints/slices) returns a smaller ``SanitizedView``
  *without* recording a read — taking ``workspace.data[block]`` is
  pointer arithmetic, not a load — except that a fully-scalar index is
  an immediate read;
* **advanced indexing** (index arrays) records the exact elements read
  and returns a raw copy, like a gather;
* ``__setitem__`` records the exact elements written (scatter);
* arithmetic/reduction use (``@``, ``*``, ``+=``, ``.sum()``,
  ``np.asarray`` via ``__array__``, ...) records a read of the whole
  view and then delegates to the raw buffer.

Element addresses are exact, not collapsed to spans: every view carries
an ``addr`` companion — an ``int64`` array of flat offsets into the
owning allocation, sliced by the *same* index expressions as the data —
so block-cyclic ``thread_range`` access patterns do not produce false
inter-block overlaps.  Results of consuming operations are plain
ndarrays; instrumentation never changes a computed value, only observes
the accesses (numerical bit-identity is property-tested).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SanitizedView"]

_BASIC_TYPES = (int, np.integer, slice, type(Ellipsis), type(None))


def _is_basic(key) -> bool:
    """True for indexing that yields a view (ints/slices/Ellipsis/None)."""
    parts = key if isinstance(key, tuple) else (key,)
    return all(isinstance(part, _BASIC_TYPES) for part in parts)


def _is_scalar(key, ndim: int) -> bool:
    """True when the basic key selects exactly one element."""
    parts = key if isinstance(key, tuple) else (key,)
    ints = [part for part in parts if isinstance(part, (int, np.integer))]
    return len(ints) == len(parts) and len(ints) == ndim


class SanitizedView:
    """Instrumented window onto one :class:`DeviceArray` allocation."""

    __slots__ = ("_san", "_shadow", "_arr", "_addr")

    def __init__(self, san, shadow, arr: np.ndarray, addr: np.ndarray):
        self._san = san
        self._shadow = shadow
        self._arr = arr
        self._addr = addr

    # -- metadata delegation -------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._arr.shape

    @property
    def dtype(self) -> np.dtype:
        return self._arr.dtype

    @property
    def ndim(self) -> int:
        return self._arr.ndim

    @property
    def size(self) -> int:
        return int(self._arr.size)

    @property
    def T(self) -> "SanitizedView":
        return SanitizedView(self._san, self._shadow, self._arr.T, self._addr.T)

    def __len__(self) -> int:
        return len(self._arr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SanitizedView({self._shadow.name!r}, shape={self._arr.shape}, "
            f"dtype={self._arr.dtype})"
        )

    # -- access recording ----------------------------------------------
    def _consume(self) -> np.ndarray:
        """Record a read of the whole view; return the raw buffer."""
        self._san.on_read(self._shadow, self._addr.reshape(-1))
        return self._arr

    def __array__(self, dtype=None, copy=None):
        raw = self._consume()
        if dtype is not None:
            return raw.astype(dtype)
        return raw

    def _check_slices(self, key) -> None:
        """Report slices reaching past an axis (NumPy silently clamps)."""
        parts = key if isinstance(key, tuple) else (key,)
        shape = self._arr.shape
        consuming = sum(1 for p in parts if p is not None and p is not Ellipsis)
        axis = 0
        for part in parts:
            if part is None:
                continue
            if part is Ellipsis:
                axis += len(shape) - consuming
                continue
            if isinstance(part, slice) and axis < len(shape):
                dim = shape[axis]
                for bound in (part.start, part.stop):
                    if isinstance(bound, (int, np.integer)) and not (
                        -dim <= int(bound) <= dim
                    ):
                        self._san.on_oob(
                            self._shadow,
                            f"slice bound {int(bound)} out of range for axis "
                            f"{axis} with size {dim}",
                        )
            axis += 1

    def __getitem__(self, key):
        raw_key = self._san.unwrap_key(key)
        self._check_slices(raw_key)
        try:
            sub = self._arr[raw_key]
            addr = self._addr[raw_key]
        except IndexError:
            self._san.on_oob(self._shadow, f"index {raw_key!r} out of bounds")
            raise
        if _is_basic(raw_key) and isinstance(sub, np.ndarray):
            return SanitizedView(self._san, self._shadow, sub, addr)
        # Scalar or gather: the elements are materialized -> a read.
        self._san.on_read(self._shadow, np.reshape(addr, -1))
        return sub

    def __setitem__(self, key, value) -> None:
        if isinstance(value, SanitizedView):
            value = value._consume()
        raw_key = self._san.unwrap_key(key)
        self._check_slices(raw_key)
        try:
            addr = self._addr[raw_key]
        except IndexError:
            self._san.on_oob(self._shadow, f"index {raw_key!r} out of bounds")
            raise
        self._san.on_write(self._shadow, np.reshape(addr, -1))
        self._arr[raw_key] = value

    def __iter__(self):
        return iter(self._consume())

    # -- arithmetic (consume, then delegate to the raw buffer) ---------
    def __neg__(self):
        return -self._consume()

    def __abs__(self):
        return abs(self._consume())

    def __add__(self, other):
        return self._consume() + self._san.unwrap_value(other)

    def __radd__(self, other):
        return self._san.unwrap_value(other) + self._consume()

    def __sub__(self, other):
        return self._consume() - self._san.unwrap_value(other)

    def __rsub__(self, other):
        return self._san.unwrap_value(other) - self._consume()

    def __mul__(self, other):
        return self._consume() * self._san.unwrap_value(other)

    def __rmul__(self, other):
        return self._san.unwrap_value(other) * self._consume()

    def __truediv__(self, other):
        return self._consume() / self._san.unwrap_value(other)

    def __rtruediv__(self, other):
        return self._san.unwrap_value(other) / self._consume()

    def __pow__(self, other):
        return self._consume() ** self._san.unwrap_value(other)

    def __matmul__(self, other):
        return self._consume() @ self._san.unwrap_value(other)

    def __rmatmul__(self, other):
        return self._san.unwrap_value(other) @ self._consume()

    # -- in-place arithmetic (read + write of the whole view) ----------
    def _inplace(self, other, op) -> "SanitizedView":
        raw = self._consume()
        self._san.on_write(self._shadow, self._addr.reshape(-1))
        op(raw, self._san.unwrap_value(other))
        return self

    def __iadd__(self, other):
        return self._inplace(other, np.ndarray.__iadd__)

    def __isub__(self, other):
        return self._inplace(other, np.ndarray.__isub__)

    def __imul__(self, other):
        return self._inplace(other, np.ndarray.__imul__)

    def __itruediv__(self, other):
        return self._inplace(other, np.ndarray.__itruediv__)

    # -- reductions / conversions --------------------------------------
    def mean(self, *args, **kwargs):
        return self._consume().mean(*args, **kwargs)

    def sum(self, *args, **kwargs):
        return self._consume().sum(*args, **kwargs)

    def copy(self):
        return self._consume().copy()

    def astype(self, dtype):
        return self._consume().astype(dtype)

    def ravel(self):
        return self._consume().ravel()
