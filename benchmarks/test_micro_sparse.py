"""Microbenchmarks: measured wall-clock of the sparse substrate.

Real timings of what actually runs in this environment (NumPy host
code), complementing the modeled hardware times of the figure benches.
"""

import numpy as np
import pytest

from repro.lattice import cubic, tight_binding_hamiltonian
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def cube10_csr():
    return tight_binding_hamiltonian(cubic(10), format="csr")


@pytest.fixture(scope="module")
def cube10_dense(cube10_csr):
    return cube10_csr.to_dense()


class TestSpMV:
    def test_csr_matvec_d1000(self, benchmark, cube10_csr):
        x = np.random.default_rng(0).standard_normal(1000)
        result = benchmark(cube10_csr.matvec, x)
        assert result.shape == (1000,)

    def test_dense_matvec_d1000(self, benchmark, cube10_dense):
        x = np.random.default_rng(0).standard_normal(1000)
        benchmark(lambda: cube10_dense @ x)

    def test_csr_matmat_d1000_r16(self, benchmark, cube10_csr):
        block = np.random.default_rng(0).standard_normal((1000, 16))
        result = benchmark(cube10_csr.matmat, block)
        assert result.shape == (1000, 16)

    def test_csr_matmat_equals_dense(self, cube10_csr, cube10_dense):
        block = np.random.default_rng(1).standard_normal((1000, 8))
        np.testing.assert_allclose(
            cube10_csr.matmat(block), cube10_dense @ block, atol=1e-10
        )


class TestConstruction:
    def test_build_cubic_hamiltonian(self, benchmark):
        result = benchmark(tight_binding_hamiltonian, cubic(10), format="csr")
        assert result.nnz_stored == 7000

    def test_from_dense_d1000(self, benchmark, cube10_dense):
        result = benchmark(CSRMatrix.from_dense, cube10_dense)
        assert result.nnz_stored == 6000  # zero diagonal dropped by from_dense
