"""Ablation benches: the design-choice studies of DESIGN.md §5.

Each regenerates one ablation table and asserts its headline finding.
"""

from repro.bench import (
    block_size_ablation,
    cpu_threads_ablation,
    crs_vs_dense_ablation,
    kernel_comparison_ablation,
    multigpu_ablation,
    precision_ablation,
    resilience_ablation,
    transport_ablation,
)


class TestBlockSizeAblation:
    """Paper §V future work: 'quest a method to find the best block size'."""

    def test_regenerate(self, benchmark):
        result = benchmark(block_size_ablation)
        print()
        print(result.render())

        # D=1000, bandwidth-bound: BLOCK_SIZE is nearly free below H_SIZE.
        d1000 = dict(zip(result.column("BLOCK_SIZE"), result.column("seconds_D1000")))
        assert d1000[512] < 1.05 * d1000[32]
        # D=128: blocks wider than the vector idle lanes and pay for it.
        d128 = dict(zip(result.column("BLOCK_SIZE"), result.column("seconds_D128")))
        assert d128[512] > 2.0 * d128[128]


class TestCrsVsDenseAblation:
    """Paper Sec. II-A4: O(SRND) sparse vs O(SRND^2) dense."""

    def test_regenerate(self, benchmark):
        result = benchmark(crs_vs_dense_ablation)
        print()
        print(result.render())

        ratios = result.column("gpu_dense_over_csr")
        dims = result.column("D")
        # CRS always wins, and the advantage grows with D (linearly in
        # theory; monotone is what we assert).
        assert all(r > 10 for r in ratios)
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert dims == sorted(dims)


class TestMultiGpuAblation:
    """Paper §V future work: the GPU-cluster extension."""

    def test_regenerate(self, run_once, benchmark):
        result = run_once(benchmark, multigpu_ablation)
        print()
        print(result.render())

        fixed = result.column("scaling_bs256")
        tuned = result.column("scaling_tuned")
        # Tuned block sizes never scale worse than the paper's fixed 256 ...
        assert all(t >= f - 1e-9 for f, t in zip(fixed, tuned))
        # ... and at 8+ devices the difference is substantial.
        assert tuned[-1] > 2.0 * fixed[-2]


class TestPrecisionAblation:
    """Paper Sec. IV: 'all calculations performed with double precision'."""

    def test_regenerate(self, run_once, benchmark):
        result = run_once(benchmark, precision_ablation)
        print()
        print(result.render())

        ratios = result.column("dp_over_sp")
        # Fermi: SP doubles the compute peak and halves the traffic, so
        # the bandwidth-bound recursion gains ~2x.
        assert all(1.5 <= r <= 2.2 for r in ratios)
        # The accuracy price is recorded and small.
        assert "drift" in result.notes


class TestCpuThreadsAblation:
    """Paper Sec. V future work #2: shared-memory parallelization."""

    def test_regenerate(self, run_once, benchmark):
        result = run_once(benchmark, cpu_threads_ablation)
        print()
        print(result.render())

        adv_large = result.column("gpu_advantage_D1000")
        adv_small = result.column("gpu_advantage_D128")
        # The single-core baseline flatters the GPU ...
        assert adv_large[0] > 3.0
        # ... a full socket halves the DRAM-bound advantage ...
        assert adv_large[-1] < 0.65 * adv_large[0]
        # ... and overtakes the GPU on the cache-resident workload.
        assert adv_small[-1] < 1.0


class TestTransportAblation:
    """Extension: the conductivity double expansion on the paper's design."""

    def test_regenerate(self, run_once, benchmark):
        result = run_once(benchmark, transport_ablation)
        print()
        print(result.render())

        speedups = result.column("speedup")
        # Compute-bound contraction: the GPU advantage grows with N,
        # starting near the DoS figure's level.
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        assert speedups[0] >= 2.5
        assert speedups[-1] > 10.0
        # Memory budget stays within the C2050's 3 GB at these sizes.
        assert max(result.column("gpu_mib")) < 3 * 1024


class TestResilienceAblation:
    """Extension: paper §V plans the cluster but assumes fault-free nodes."""

    def test_regenerate(self, run_once, benchmark):
        result = run_once(benchmark, resilience_ablation)
        print()
        print(result.render())

        rates = result.column("fault_rate")
        recovery = result.column("recovery_s")
        overhead = result.column("overhead")
        # Fault-free baseline row: no recovery work, unit overhead.
        assert rates[0] == 0.0
        assert recovery[0] == 0.0
        assert overhead[0] == 1.0
        # The heaviest campaign pays real recovery time ...
        assert recovery[-1] > 0.0
        assert overhead[-1] > 1.0
        # ... while every campaign recovers the bit-identical moments.
        assert all(d == 0.0 for d in result.column("max_mu_diff"))


class TestKernelAblation:
    """Paper Sec. I: why the Jackson kernel (Gibbs suppression)."""

    def test_regenerate(self, run_once, benchmark):
        result = run_once(benchmark, kernel_comparison_ablation)
        print()
        print(result.render())

        rows = {row[0]: row for row in result.rows}
        # All kernels conserve spectral weight.
        for name, row in rows.items():
            assert abs(row[1] - 1.0) < 0.05, name
        # Only the undamped series rings below zero.
        assert rows["dirichlet"][2] > 0.05
        assert rows["jackson"][2] < 1e-6
