"""Microbenchmarks: measured wall-clock of the KPM numerics."""

import numpy as np
import pytest

from repro.kpm import (
    KPMConfig,
    apply_kernel_damping,
    evaluate_series_at,
    moments_block,
    moments_single_vector,
    reconstruct_on_chebyshev_grid,
    rescale_operator,
    stochastic_moments,
)
from repro.lattice import cubic, tight_binding_hamiltonian


@pytest.fixture(scope="module")
def scaled_cube10():
    h = tight_binding_hamiltonian(cubic(10), format="csr")
    scaled, _ = rescale_operator(h)
    return scaled


class TestMomentRecursion:
    def test_single_vector_n256(self, benchmark, scaled_cube10):
        r0 = np.random.default_rng(0).standard_normal(1000)
        mu = benchmark(moments_single_vector, scaled_cube10, r0, 256)
        assert mu.shape == (256,)

    def test_single_vector_n256_doubling(self, benchmark, scaled_cube10):
        r0 = np.random.default_rng(0).standard_normal(1000)
        mu = benchmark(
            moments_single_vector, scaled_cube10, r0, 256, use_doubling=True
        )
        assert mu.shape == (256,)

    def test_block_r16_n256(self, benchmark, scaled_cube10):
        block = np.random.default_rng(0).standard_normal((1000, 16))
        mu = benchmark(moments_block, scaled_cube10, block, 256)
        assert mu.shape == (256, 16)

    def test_stochastic_r8_s1_n128(self, run_once, benchmark, scaled_cube10):
        config = KPMConfig(num_moments=128, num_random_vectors=8, num_realizations=1)
        data = run_once(benchmark, stochastic_moments, scaled_cube10, config)
        assert data.num_moments == 128


class TestReconstruction:
    @pytest.fixture(scope="class")
    def damped(self):
        rng = np.random.default_rng(2)
        return apply_kernel_damping(rng.standard_normal(512) / 100, "jackson")

    def test_dct_reconstruction_k4096(self, benchmark, damped):
        x, f = benchmark(reconstruct_on_chebyshev_grid, damped, 4096)
        assert x.shape == (4096,)

    def test_direct_evaluation_m512(self, benchmark, damped):
        points = np.linspace(-0.99, 0.99, 512)
        f = benchmark(evaluate_series_at, damped, points)
        assert f.shape == (512,)

    def test_dct_beats_direct_at_scale(self, damped):
        # The DCT path must be decisively faster for a full grid.
        import time

        start = time.perf_counter()
        for _ in range(5):
            reconstruct_on_chebyshev_grid(damped, 4096)
        dct_time = time.perf_counter() - start

        x, _ = reconstruct_on_chebyshev_grid(damped, 4096)
        start = time.perf_counter()
        evaluate_series_at(damped, x)
        direct_time = time.perf_counter() - start
        assert dct_time / 5 < direct_time
