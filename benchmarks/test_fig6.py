"""Figure 6 regeneration bench: DoS at N=256 vs N=512, 10^3 lattice.

Functional KPM run (reduced stochastic sampling, see DESIGN.md §5); the
benchmark time is the real wall-clock of the moment recursion plus
reconstruction on this host.
"""

import numpy as np

from repro.bench import fig6


class TestFig6:
    def test_regenerate(self, run_once, benchmark):
        result = run_once(
            benchmark,
            fig6,
            num_random_vectors=12,
            num_realizations=2,
            num_energy_points=512,
        )
        print()
        print(f"== {result.title} ==")
        print(f"paper: {result.paper_expectation}")

        energies = np.array(result.column("energy"))
        low_n = np.array(result.column("dos_N256"))
        high_n = np.array(result.column("dos_N512"))

        # Both curves normalized over the band.
        for curve in (low_n, high_n):
            assert np.trapezoid(curve, energies) == np.float64(
                np.trapezoid(curve, energies)
            )
            assert abs(np.trapezoid(curve, energies) - 1.0) < 0.02

        # Higher N = sharper resolution (the figure's point).
        tv_low = np.abs(np.diff(low_n)).sum()
        tv_high = np.abs(np.diff(high_n)).sum()
        print(f"total variation: N=256 -> {tv_low:.2f}, N=512 -> {tv_high:.2f}")
        assert tv_high > 1.3 * tv_low
