"""Benchmark-suite configuration.

Heavy, figure-scale benches use ``benchmark.pedantic`` with one round;
microbenches let pytest-benchmark calibrate itself.
"""

import pytest


def one_shot(benchmark, func, *args, **kwargs):
    """Run ``func`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    """Fixture exposing :func:`one_shot`."""
    return one_shot
