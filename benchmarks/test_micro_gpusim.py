"""Microbenchmarks: simulator overhead and the GPU pipeline at test scale.

These time the *simulation machinery itself* (host wall-clock), which
bounds how large a functional GPU run the harness can afford.
"""

import pytest

from repro.gpu import Device, TESLA_C2050
from repro.gpukpm import GpuKPM, estimate_gpu_kpm_seconds
from repro.kpm import KPMConfig, rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian


@pytest.fixture(scope="module")
def scaled_cube():
    h = tight_binding_hamiltonian(cubic(5), format="csr")
    scaled, _ = rescale_operator(h)
    return scaled


class TestSimulatorOverhead:
    def test_pipeline_functional_d125(self, run_once, benchmark, scaled_cube):
        config = KPMConfig(
            num_moments=64, num_random_vectors=16, num_realizations=1, block_size=32
        )
        data, report = run_once(benchmark, GpuKPM().compute_moments, scaled_cube, config)
        assert report.modeled_seconds > 0

    def test_analytic_estimator_speed(self, benchmark):
        # The estimator must be cheap enough to sweep thousands of
        # configurations (block-size tuning, multi-GPU scaling curves).
        config = KPMConfig(
            num_moments=1024, num_random_vectors=128, num_realizations=14
        )
        seconds = benchmark(estimate_gpu_kpm_seconds, TESLA_C2050, 4096, config)
        assert seconds > 0

    def test_device_alloc_free_cycle(self, benchmark):
        def cycle():
            device = Device(TESLA_C2050)
            arr = device.alloc((256, 256))
            arr.free()
            return device

        benchmark(cycle)
