"""Figure 5 regeneration bench: time + speedup vs N on the 10^3 lattice.

Prints the same rows the paper's Fig. 5 reports (execution times of the
CPU and GPU versions and their ratio) and asserts the paper's band:
speedup ~3.5x, flat over N.  The benchmark time measures the full
harness (analytic estimators at paper parameters).
"""

from repro.bench import fig5


class TestFig5:
    def test_regenerate(self, benchmark):
        result = benchmark(fig5)
        print()
        print(result.render())

        speedups = result.column("speedup")
        assert result.column("N") == [128, 256, 512, 1024]
        # Paper: "The speedup keeps 3.5 times for all the cases."
        assert all(3.0 <= s <= 4.0 for s in speedups)
        assert max(speedups) - min(speedups) < 0.25
