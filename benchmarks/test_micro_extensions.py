"""Microbenchmarks: measured wall-clock of the extension modules.

Conductivity (double expansion), Chebyshev propagation, thermodynamic
quadrature, and incremental refinement — the costs a user pays beyond
the core DoS pipeline.
"""

import numpy as np
import pytest

from repro.kpm import (
    KPMConfig,
    SpectralDensity,
    chemical_potential,
    conductivity_moments_single_vector,
    evolve_state,
    exact_moments,
    lattice_current_operator,
    rescale_operator,
    spectral_integral,
)
from repro.lattice import chain, cubic, tight_binding_hamiltonian


@pytest.fixture(scope="module")
def chain_system():
    lattice = chain(512)
    hamiltonian = tight_binding_hamiltonian(lattice, format="csr")
    current = lattice_current_operator(lattice, 0)
    scaled, rescaling = rescale_operator(hamiltonian)
    return hamiltonian, current, scaled, rescaling


class TestConductivity:
    def test_double_expansion_n64(self, benchmark, chain_system):
        _, current, scaled, _ = chain_system
        r0 = np.random.default_rng(0).standard_normal(512)
        mu_nm = benchmark(
            conductivity_moments_single_vector, scaled, current, r0, 64
        )
        assert mu_nm.shape == (64, 64)


class TestEvolution:
    def test_propagate_t10_d512(self, benchmark, chain_system):
        hamiltonian, _, _, _ = chain_system
        psi0 = np.zeros(512)
        psi0[256] = 1.0
        evolved = benchmark(evolve_state, hamiltonian, psi0, 10.0)
        assert abs(np.linalg.norm(evolved) - 1.0) < 1e-9


class TestObservables:
    @pytest.fixture(scope="class")
    def moments_and_rescaling(self, chain_system):
        _, _, scaled, rescaling = chain_system
        return exact_moments(scaled, 256), rescaling

    def test_spectral_integral(self, benchmark, moments_and_rescaling):
        moments, rescaling = moments_and_rescaling
        value = benchmark(
            spectral_integral, moments, rescaling, lambda e: np.exp(-(e**2))
        )
        assert np.isfinite(value)

    def test_chemical_potential_bisection(self, benchmark, moments_and_rescaling):
        moments, rescaling = moments_and_rescaling
        mu = benchmark(
            chemical_potential, moments, rescaling, 0.3, num_points=1024
        )
        assert -2.0 < mu < 0.0


class TestIncremental:
    def test_add_vectors_batch(self, run_once, benchmark):
        hamiltonian = tight_binding_hamiltonian(cubic(6), format="csr")
        sd = SpectralDensity(hamiltonian, num_moments=128, seed=0)

        def refine():
            sd.add_vectors(8)
            return sd.density_error_estimate()

        run_once(benchmark, refine)
        assert sd.num_vectors == 8
