"""Figure 8 regeneration bench: time + speedup vs H_SIZE at N=128.

Paper band: ~4x GPU advantage; the CPU degrades once the dense matrix
leaves cache while the GPU curve stays ~O(H_SIZE^2).
"""

from repro.bench import fig8


class TestFig8:
    def test_regenerate(self, benchmark):
        result = benchmark(fig8)
        print()
        print(result.render())

        speedups = result.column("speedup")
        assert result.column("H_SIZE") == [512, 1024, 2048, 4096]
        assert all(3.0 <= s <= 4.7 for s in speedups)

        cpu = result.column("cpu_seconds")
        gpu = result.column("gpu_seconds")
        cpu_ratios = [b / a for a, b in zip(cpu, cpu[1:])]
        gpu_ratios = [b / a for a, b in zip(gpu, gpu[1:])]
        # CPU exceeds pure O(D^2) growth somewhere (cache cliff) ...
        assert max(cpu_ratios) > 4.3
        # ... while the GPU stays at O(D^2).
        assert all(r <= 4.3 for r in gpu_ratios)
