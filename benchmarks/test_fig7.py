"""Figure 7 regeneration bench: time + speedup vs N at H_SIZE=128.

Paper band: speedup rises with N toward ~4x as fixed GPU overheads
amortize.
"""

from repro.bench import fig7


class TestFig7:
    def test_regenerate(self, benchmark):
        result = benchmark(fig7)
        print()
        print(result.render())

        speedups = result.column("speedup")
        assert result.column("N") == [128, 256, 512, 1024, 2048]
        # Monotone rise ...
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))
        # ... toward "almost 4 times".
        assert 3.4 <= speedups[-1] <= 4.3
        assert speedups[0] < speedups[-1] - 0.5
