"""Serving-layer benches: batched + cached throughput vs naive per-request runs.

The service's claim is architectural, not numerical: on a repeat-heavy
trace, coalescing compatible requests into one engine run and caching
moments across flush windows must cut the modeled engine time by a
multiple, while every response stays bit-identical to a fresh
``compute_dos`` call (the identity half lives in the test-suite; here we
pin the throughput half).
"""

import numpy as np

from repro.kpm import compute_dos
from repro.serve import (
    DoSRequest,
    GreenRequest,
    LDoSRequest,
    SpectralService,
    synthetic_trace,
)

TRACE_LENGTH = 120
WINDOW = 20


def _naive_modeled_seconds(trace) -> float:
    """Modeled engine time of the pre-serve workflow: one run per request.

    LDoS requests have no modeled hardware cost on the host path, so the
    naive loop (like the service's own accounting) counts only the
    engine-served trace requests — the comparison is conservative.
    """
    total = 0.0
    for request in trace:
        if isinstance(request, LDoSRequest):
            continue
        result = compute_dos(request.hamiltonian, request.config, backend="gpu-sim")
        total += result.timing.modeled_seconds
    return total


def _serve_trace(trace):
    service = SpectralService(backends=("gpu-sim",))
    responses = []
    for start in range(0, len(trace), WINDOW):
        for request in trace[start : start + WINDOW]:
            service.submit(request)
        responses.extend(service.flush())
    return service, responses


class TestServeThroughput:
    """Batching + caching vs the naive per-request workflow."""

    def test_modeled_speedup(self, run_once, benchmark):
        trace = synthetic_trace(TRACE_LENGTH, seed=0)
        service, responses = run_once(benchmark, _serve_trace, trace)
        metrics = service.metrics()
        print()
        print(metrics.summary())

        assert len(responses) == TRACE_LENGTH
        naive = _naive_modeled_seconds(trace)
        # The service's own naive accounting must agree with an actual
        # per-request replay (same engine, same modeled costs).
        assert np.isclose(metrics.modeled_naive_seconds, naive, rtol=1e-12)
        # Acceptance floor: >= 2x modeled throughput on a repeat-heavy
        # trace.  (Measured: ~12x with default knobs.)
        assert naive / metrics.modeled_served_seconds >= 2.0
        assert metrics.modeled_speedup() >= 2.0
        # Both mechanisms must contribute, or the win is one-legged.
        assert metrics.coalesced_requests > 0
        assert metrics.cache_hits > 0

    def test_cache_disabled_still_batches(self, benchmark):
        trace = synthetic_trace(TRACE_LENGTH, seed=0)

        def run():
            service = SpectralService(backends=("gpu-sim",), cache_capacity=0)
            for start in range(0, len(trace), WINDOW):
                for request in trace[start : start + WINDOW]:
                    service.submit(request)
                service.flush()
            return service

        service = benchmark.pedantic(run, rounds=1, iterations=1)
        metrics = service.metrics()
        print()
        print(metrics.summary())
        # Coalescing alone still wins on a repeat-heavy trace, but less
        # than with the cache (every window recomputes its workloads).
        assert metrics.cache_hits == 0
        assert metrics.modeled_speedup() > 1.5


class TestServeOverhead:
    """Service bookkeeping must be negligible next to one engine run."""

    def test_wall_overhead_small(self, benchmark):
        trace = synthetic_trace(40, seed=1, ldos_fraction=0.0)

        def run():
            service = SpectralService(backends=("gpu-sim",))
            service.serve(trace)
            return service

        service = benchmark.pedantic(run, rounds=3, iterations=1)
        metrics = service.metrics()
        # Wall time of the whole replay (host moment math included) stays
        # well under the modeled engine seconds it dispatches.
        assert metrics.wall_seconds < metrics.modeled_served_seconds


class TestGatewayGoodput:
    """Serving v2: EDF + degradation beats plain FIFO under overload."""

    def test_gateway_beats_fifo(self, benchmark):
        from repro.obs.workloads import GATEWAY_WORKLOAD
        from repro.serve import Gateway, TenantPolicy, timed_trace

        arrivals = timed_trace(
            GATEWAY_WORKLOAD["requests"],
            seed=GATEWAY_WORKLOAD["seed"],
            tenants=GATEWAY_WORKLOAD["tenants"],
            duration=GATEWAY_WORKLOAD["duration"],
            deadline_slack=GATEWAY_WORKLOAD["deadline_slack"],
            flash_crowds=GATEWAY_WORKLOAD["flash_crowds"],
            flash_multiplier=GATEWAY_WORKLOAD["flash_multiplier"],
            repeat_bias=GATEWAY_WORKLOAD["repeat_bias"],
        )
        policy = TenantPolicy(
            rate=GATEWAY_WORKLOAD["tenant_rate"],
            burst=GATEWAY_WORKLOAD["tenant_burst"],
        )

        def run():
            out = {}
            for mode, edf, degrade in (("gateway", True, True), ("fifo", False, False)):
                gateway = Gateway(
                    template=("gpu-sim", "cpu-model"),
                    max_active=GATEWAY_WORKLOAD["max_active"],
                    default_policy=policy,
                    edf=edf,
                    degrade=degrade,
                )
                gateway.run_trace(
                    arrivals, flush_interval=GATEWAY_WORKLOAD["flush_interval"]
                )
                out[mode] = gateway.gateway_metrics()
            return out

        metrics = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        print(metrics["gateway"].summary())
        print(metrics["fifo"].summary())
        # Both arms see identical offered load and admission budgets; the
        # gateway's EDF ordering + prefix degradation must deliver at
        # least as much on-time work as always-full-precision FIFO.
        assert metrics["gateway"].offered == metrics["fifo"].offered
        assert metrics["gateway"].rejected == metrics["fifo"].rejected
        assert metrics["gateway"].goodput_ratio >= metrics["fifo"].goodput_ratio
        # The win has to come from the v2 levers actually engaging.
        assert metrics["gateway"].degraded > 0
        assert metrics["fifo"].degraded == 0
        # Tail latency must not regress: degraded answers come from the
        # cache at zero modeled cost, pulling the p99 down.
        assert (
            metrics["gateway"].p99_latency_seconds
            <= metrics["fifo"].p99_latency_seconds
        )


class TestGreenCoalescing:
    """DoS and Green requests of one workload share a single engine run."""

    def test_shared_moments(self, benchmark):
        trace = synthetic_trace(1, seed=0, green_fraction=0.0, ldos_fraction=0.0)
        request = trace[0]
        green = GreenRequest(
            request.hamiltonian, energies=(-0.4, 0.3), config=request.config
        )

        def run():
            service = SpectralService(backends=("gpu-sim",))
            return service, service.serve([request, green])

        service, responses = benchmark.pedantic(run, rounds=1, iterations=1)
        metrics = service.metrics()
        assert isinstance(request, DoSRequest)
        assert metrics.batches_total == 1
        assert metrics.engine_dispatches == 1
        assert responses[0].source == "computed"
        assert responses[1].source == "coalesced"
        assert responses[1].values.dtype == np.complex128
