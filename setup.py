"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that the
legacy editable-install path (``pip install -e . --no-use-pep517``) works
in offline environments whose setuptools lacks a bundled ``wheel``.
"""

from setuptools import setup

setup()
