"""Graphene: Dirac-point DoS and a vacancy's local density of states.

Exercises the parts of the library beyond the paper's cubic lattice:

* the honeycomb builder (two-site basis) and its linearly vanishing DoS
  at the Dirac point,
* :func:`repro.kpm.local_dos` — the deterministic single-site variant of
  the moment recursion,
* the Green's function relation ``Im G = -pi rho``.

A vacancy (deleted site) creates the famous zero-energy resonance on the
neighboring sublattice, visible as an LDoS peak at E=0 next to the
vacancy but not in pristine graphene.

Run:  python examples/graphene_ldos.py
"""

import numpy as np

from repro import KPMConfig
from repro.bench import ascii_plot
from repro.kpm import compute_dos, greens_function, local_dos
from repro.lattice import hamiltonian_from_edges, honeycomb_edges


def build_graphene(ncols: int, nrows: int, *, vacancy: int | None = None):
    """Honeycomb Hamiltonian; optionally delete one site's bonds."""
    num_sites, i, j = honeycomb_edges(ncols, nrows, periodic=True)
    if vacancy is not None:
        keep = (i != vacancy) & (j != vacancy)
        i, j = i[keep], j[keep]
    return num_sites, hamiltonian_from_edges(num_sites, i, j, format="csr")


def main() -> None:
    config = KPMConfig(num_moments=256, num_random_vectors=16, seed=13)

    # --- pristine sheet: total DoS and resolvent ----------------------
    num_sites, pristine = build_graphene(24, 24)
    result = compute_dos(pristine, config)
    print(f"graphene sheet: {num_sites} sites, DoS integral "
          f"{result.integrate():.4f}")

    probe = np.array([0.0, 1.0])
    green = greens_function(result.moments, result.rescaling, probe, kernel="jackson")
    rho = result.evaluate(probe)
    print("Green's function check  Im G(E) vs -pi rho(E):")
    for energy, g, r in zip(probe, green, rho):
        print(f"  E={energy:+.1f}:  Im G = {g.imag:+.4f},  -pi rho = {-np.pi * r:+.4f}")

    # --- vacancy: LDoS on a neighbor of the removed site --------------
    vacancy = 2 * (12 * 24 + 12)  # an A site near the middle
    neighbor = vacancy + 1        # the B site in the same cell
    _, damaged = build_graphene(24, 24, vacancy=vacancy)

    ldos_config = KPMConfig(num_moments=384, num_energy_points=768)
    energies_clean, ldos_clean = local_dos(pristine, neighbor, ldos_config)
    energies_vac, ldos_vac = local_dos(damaged, neighbor, ldos_config)

    grid = np.linspace(-3.0, 3.0, 65)
    clean_curve = np.interp(grid, energies_clean, ldos_clean)
    vac_curve = np.interp(grid, energies_vac, ldos_vac)
    print("\nLDoS next to a vacancy (note the E=0 resonance) vs pristine:")
    print(ascii_plot(grid, {"vacancy": vac_curve, "pristine": clean_curve},
                     width=64, height=14))

    center = abs(grid).argmin()
    print(f"\nLDoS at E=0: pristine {clean_curve[center]:.4f}, "
          f"with vacancy {vac_curve[center]:.4f}")


if __name__ == "__main__":
    main()
