"""Spatial LDoS imaging: watching Anderson disorder localize states.

``repro.kpm.local_dos_map`` computes the local density of states on
every site at chosen energies — the numerical analogue of an STM map.
On a disordered square lattice the band-edge states concentrate on a few
favorable sites (precursors of localization), while band-center states
stay comparatively extended.  The example renders both maps as ASCII
heatmaps and quantifies the contrast with the inverse participation
ratio (IPR) of the LDoS weights.

Run:  python examples/disorder_imaging.py
"""

import numpy as np

from repro.bench import ascii_table
from repro.kpm import KPMConfig, local_dos_map
from repro.lattice import anderson_onsite_energies, square, tight_binding_hamiltonian

_SHADES = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray) -> str:
    """Render a 2-D array as an ASCII heatmap (row-major)."""
    lo, hi = values.min(), values.max()
    span = hi - lo if hi > lo else 1.0
    levels = ((values - lo) / span * (len(_SHADES) - 1)).astype(int)
    return "\n".join("".join(_SHADES[v] for v in row) for row in levels)


def participation_ratio(weights: np.ndarray) -> float:
    """IPR-style concentration measure of a normalized weight map."""
    normalized = weights / weights.sum()
    return float(1.0 / np.sum(normalized**2) / weights.size)


def main() -> None:
    side = 24
    lattice = square(side)
    onsite = anderson_onsite_energies(lattice, 6.0, seed=17)
    hamiltonian = tight_binding_hamiltonian(lattice, onsite=onsite, format="csr")

    config = KPMConfig(num_moments=96)
    probes = {"band center (E=0)": 0.0, "band tail (E=-5)": -5.0}
    rows = []
    for label, energy in probes.items():
        ldos = local_dos_map(hamiltonian, np.array([energy]), config=config)
        grid = ldos[:, 0].reshape(side, side)
        print(f"{label} — LDoS map ({side}x{side} square, W=6):")
        print(ascii_heatmap(grid))
        print()
        rows.append((label, float(grid.max() / grid.mean()), participation_ratio(grid)))

    print(ascii_table(("energy", "peak/mean contrast", "participation ratio"), rows))
    print("\nTail states live on rare low-energy sites (low participation);")
    print("band-center states stay spread out.")


if __name__ == "__main__":
    main()
