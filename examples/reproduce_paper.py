"""One-command reproduction: every paper figure, with verdicts.

Runs the four figures of Zhang et al. (2011) through the harness,
checks each against the paper's stated claim, and prints a PASS/FAIL
scorecard plus the ablation headlines.  This is the executable version
of EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py
"""

import numpy as np

from repro.bench import fig5, fig6, fig7, fig8, run_experiment


def check_fig5(result):
    speedups = result.column("speedup")
    flat = max(speedups) - min(speedups) < 0.25
    in_band = all(3.0 <= s <= 4.0 for s in speedups)
    return flat and in_band, f"speedup {min(speedups):.2f}-{max(speedups):.2f}, flat={flat}"


def check_fig6(result):
    low = np.array(result.column("dos_N256"))
    high = np.array(result.column("dos_N512"))
    energies = np.array(result.column("energy"))
    sharper = np.abs(np.diff(high)).sum() > 1.3 * np.abs(np.diff(low)).sum()
    normalized = all(
        abs(np.trapezoid(curve, energies) - 1.0) < 0.02 for curve in (low, high)
    )
    return sharper and normalized, (
        f"N=512 total variation {np.abs(np.diff(high)).sum():.1f} vs "
        f"N=256 {np.abs(np.diff(low)).sum():.1f}; both normalized={normalized}"
    )


def check_fig7(result):
    speedups = result.column("speedup")
    rising = all(b >= a for a, b in zip(speedups, speedups[1:]))
    near_four = 3.4 <= speedups[-1] <= 4.3
    return rising and near_four, (
        f"speedup rises {speedups[0]:.2f} -> {speedups[-1]:.2f}"
    )


def check_fig8(result):
    speedups = result.column("speedup")
    cpu = result.column("cpu_seconds")
    gpu = result.column("gpu_seconds")
    band = all(3.0 <= s <= 4.7 for s in speedups)
    cpu_cliff = max(b / a for a, b in zip(cpu, cpu[1:])) > 4.3
    gpu_quadratic = all(b / a <= 4.3 for a, b in zip(gpu, gpu[1:]))
    return band and cpu_cliff and gpu_quadratic, (
        f"speedup {min(speedups):.2f}-{max(speedups):.2f}; CPU cache cliff={cpu_cliff}; "
        f"GPU stays O(D^2)={gpu_quadratic}"
    )


FIGURES = [
    ("fig5", fig5, check_fig5, "~3.5x speedup, flat over N"),
    ("fig6", lambda: fig6(num_random_vectors=12, num_realizations=2),
     check_fig6, "N=512 sharper than N=256"),
    ("fig7", fig7, check_fig7, "speedup rises to almost 4x"),
    ("fig8", fig8, check_fig8, "~4x; CPU degrades out of cache"),
]

ABLATIONS = [
    "ablation-blocksize",
    "ablation-crs",
    "ablation-multigpu",
    "ablation-cputhreads",
    "ablation-precision",
    "ablation-transport",
    "ablation-kernel",
]


def main() -> int:
    print("Reproducing Zhang et al., 'Performance Acceleration of Kernel")
    print("Polynomial Method Applying Graphics Processing Units' (2011)\n")

    failures = 0
    for figure_id, build, check, claim in FIGURES:
        result = build()
        ok, detail = check(result)
        verdict = "PASS" if ok else "FAIL"
        failures += not ok
        print(f"[{verdict}] {figure_id}: paper claims '{claim}'")
        print(f"       measured: {detail}")
    print()

    print("Ablations (full tables: python -m repro.bench <id>):")
    for ablation_id in ABLATIONS:
        result = run_experiment(ablation_id)
        headline = result.notes.split(";")[0] if result.notes else result.title
        print(f"  {ablation_id}: {headline}")

    print()
    if failures:
        print(f"{failures} figure(s) out of band — see EXPERIMENTS.md")
    else:
        print("All four paper figures reproduced within their bands.")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
