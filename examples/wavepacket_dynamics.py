"""Quantum dynamics with the Chebyshev propagator.

The same recursion that computes the paper's moments also powers the
best sparse-matrix propagator for ``exp(-i H t)``.  This example
launches a localized electron on a chain and on a disordered chain and
watches it spread:

* clean chain — ballistic spreading, width ~ 2t (the maximal group
  velocity) per unit time;
* strong Anderson disorder — the wavepacket localizes (Anderson
  localization): the width saturates.

Run:  python examples/wavepacket_dynamics.py
"""

import numpy as np

from repro.bench import ascii_plot, ascii_table
from repro.kpm import evolve_state
from repro.lattice import anderson_onsite_energies, chain, tight_binding_hamiltonian


def packet_width(probabilities: np.ndarray, center: int) -> float:
    """Root-mean-square displacement from the launch site."""
    sites = np.arange(probabilities.size)
    return float(np.sqrt(np.sum(probabilities * (sites - center) ** 2)))


def spread_curve(hamiltonian, psi0, times):
    """Packet width at each time (fresh propagation from t=0 each time)."""
    widths = []
    center = int(np.argmax(np.abs(psi0)))
    for t in times:
        psi_t = evolve_state(hamiltonian, psi0, float(t))
        widths.append(packet_width(np.abs(psi_t) ** 2, center))
    return widths


def main() -> None:
    length = 256
    lattice = chain(length)
    center = length // 2
    psi0 = np.zeros(length)
    psi0[center] = 1.0

    clean = tight_binding_hamiltonian(lattice, format="csr")
    disorder = anderson_onsite_energies(lattice, 4.0, seed=11)
    dirty = tight_binding_hamiltonian(lattice, onsite=disorder, format="csr")

    times = np.linspace(0.0, 24.0, 13)
    clean_widths = spread_curve(clean, psi0, times)
    dirty_widths = spread_curve(dirty, psi0, times)

    print("Wavepacket RMS width vs time (clean vs Anderson W=4):")
    print(ascii_plot(
        times,
        {"clean": clean_widths, "W=4": dirty_widths},
        width=64,
        height=14,
    ))

    # Ballistic velocity check on the clean chain: width ~ v t with
    # v = sqrt(2) |t_hop| ... measure the fitted slope instead of assuming.
    slope = np.polyfit(times[2:], clean_widths[2:], 1)[0]
    print(f"\nclean spreading velocity (fit): {slope:.3f} sites/time")
    print(f"disordered final width: {dirty_widths[-1]:.2f} sites "
          f"(localized; clean reaches {clean_widths[-1]:.2f})")

    # Norm conservation — the propagator is unitary to truncation error.
    psi_t = evolve_state(clean, psi0, times[-1])
    rows = [
        ("norm(psi(t))", float(np.linalg.norm(psi_t))),
        ("P(return)", float(np.abs(psi_t[center]) ** 2)),
    ]
    print()
    print(ascii_table(("quantity", "value"), rows))


if __name__ == "__main__":
    main()
