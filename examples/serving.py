"""The serving layer: coalescing, caching, and engine failover.

Walks through `repro.serve` in four acts:

1. coalescing — identical DoS requests and a Green's-function request
   of the same workload share ONE engine run, bit-identically;
2. caching — a later flush serves repeats from the LRU moment cache;
3. failover — a flaky engine is ejected after a fault and the batch
   retries on a healthy one, invisibly to the caller;
4. a synthetic repeat-heavy trace, showing the modeled throughput win
   over the naive one-run-per-request workflow.

Run:  python examples/serving.py
"""

import numpy as np

from repro import KPMConfig, compute_dos
from repro.errors import LaunchError
from repro.kpm.engines import NumpyEngine
from repro.lattice import cubic, tight_binding_hamiltonian
from repro.serve import (
    DoSRequest,
    GreenRequest,
    SpectralService,
    synthetic_trace,
)


class FlakyEngine:
    """A demo engine that fails its first dispatch, then recovers."""

    name = "flaky-gpu"

    def __init__(self):
        self.failed_once = False
        self.delegate = NumpyEngine()

    def compute_moments(self, scaled_operator, config):
        if not self.failed_once:
            self.failed_once = True
            raise LaunchError("demo: transient launch failure")
        return self.delegate.compute_moments(scaled_operator, config)


def main() -> None:
    hamiltonian = tight_binding_hamiltonian(cubic(6), format="csr")
    config = KPMConfig(num_moments=128, num_random_vectors=8, seed=42)

    # -- Act 1: coalescing ------------------------------------------------
    service = SpectralService(backends=("gpu-sim",))
    responses = service.serve([
        DoSRequest(hamiltonian, config, tag="client-a"),
        DoSRequest(hamiltonian, config, tag="client-b"),
        GreenRequest(hamiltonian, energies=(-1.0, 0.0, 1.0), config=config),
    ])
    print("Act 1 — one engine run serves three requests:")
    for response in responses:
        print(f"  {response.kind:>5} [{response.tag or '-'}]: "
              f"source={response.source}, engine={response.engine}, "
              f"batch={response.batch_id}")

    direct = compute_dos(hamiltonian, config, backend="gpu-sim")
    identical = np.array_equal(responses[0].values, direct.density)
    print(f"  bit-identical to direct compute_dos: {identical}")

    # -- Act 2: caching ---------------------------------------------------
    [replay] = service.serve([DoSRequest(hamiltonian, config, tag="repeat")])
    print(f"\nAct 2 — replay served from cache: source={replay.source}, "
          f"modeled cost {replay.modeled_seconds} s")

    # -- Act 3: failover --------------------------------------------------
    failover = SpectralService(backends=(FlakyEngine(), "numpy"), eject_after=1)
    [rescued] = failover.serve([DoSRequest(hamiltonian, config)])
    stats = failover.metrics()
    print(f"\nAct 3 — flaky engine ejected ({stats.engine_ejections} ejection, "
          f"{stats.engine_failures} fault), batch rescued by {rescued.engine!r}")

    # -- Act 4: a repeat-heavy trace --------------------------------------
    trace = synthetic_trace(150, seed=0, repeat_bias=0.8)
    replayer = SpectralService(backends=("gpu-sim",))
    window = 25
    for start in range(0, len(trace), window):
        for request in trace[start : start + window]:
            replayer.submit(request)
        replayer.flush()
    metrics = replayer.metrics()
    print(f"\nAct 4 — {len(trace)} requests in windows of {window}:")
    print(f"  {metrics.summary()}")
    print(f"  engines ran {metrics.engine_dispatches} times "
          f"({metrics.modeled_speedup():.1f}x modeled throughput vs naive)")


if __name__ == "__main__":
    main()
