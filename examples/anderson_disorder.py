"""Anderson disorder study: how random on-site energies reshape the DoS.

The paper's introduction motivates KPM with disordered / correlated
systems where full diagonalization is hopeless.  This example sweeps the
Anderson disorder strength ``W`` on a cubic lattice and shows the two
classic signatures:

* the band *broadens* beyond the clean edge ``|E| = 6`` (Lifshitz tails),
* the van Hove structure of the clean lattice *washes out*.

It also demonstrates the ``bounds_method="lanczos"`` option: Gerschgorin
over-estimates the disordered spectrum's width by up to ``W/2 + 6``,
wasting Chebyshev resolution, while a short Lanczos run finds tight
bounds.

Run:  python examples/anderson_disorder.py
"""

import numpy as np

from repro import KPMConfig, compute_dos
from repro.bench import ascii_plot, ascii_table
from repro.kpm import gerschgorin_bounds, lanczos_bounds
from repro.lattice import anderson_onsite_energies, cubic, tight_binding_hamiltonian


def main() -> None:
    lattice = cubic(8)  # 512 sites
    config = KPMConfig(
        num_moments=192,
        num_random_vectors=16,
        num_realizations=2,
        bounds_method="lanczos",
        seed=7,
    )

    rows = []
    curves = {}
    energies_ref = None
    for strength in (0.0, 2.0, 6.0, 12.0):
        if strength == 0.0:
            hamiltonian = tight_binding_hamiltonian(lattice, format="csr")
        else:
            onsite = anderson_onsite_energies(lattice, strength, seed=3)
            hamiltonian = tight_binding_hamiltonian(
                lattice, onsite=onsite, format="csr"
            )

        gg = gerschgorin_bounds(hamiltonian)
        lz = lanczos_bounds(hamiltonian, iterations=60, seed=0)
        result = compute_dos(hamiltonian, config)

        label = f"W={strength:g}"
        # Evaluate every curve on a common grid for the overlay plot.
        if energies_ref is None:
            energies_ref = np.linspace(-9.0, 9.0, 65)
        grid = np.clip(
            energies_ref,
            result.energies[0] + 1e-6,
            result.energies[-1] - 1e-6,
        )
        curves[label] = result.evaluate(grid)
        rows.append(
            (
                strength,
                gg.upper - gg.lower,
                lz.upper - lz.lower,
                result.evaluate(np.array([0.0]))[0],
                result.integrate(),
            )
        )

    print("Spectral width: Gerschgorin vs Lanczos bounds, and DoS(0)")
    print(
        ascii_table(
            ("W", "gerschgorin_width", "lanczos_width", "dos_at_0", "integral"),
            rows,
        )
    )
    print("\nDoS vs disorder strength (band tails grow with W):")
    print(ascii_plot(energies_ref, curves, width=64, height=16))


if __name__ == "__main__":
    main()
