"""Kubo-Greenwood conductivity: metal, band insulator, Anderson insulator.

The double Chebyshev expansion (Weisse et al. Sec. IV) turns the same
moment machinery the paper accelerates into a transport solver.  Three
1-D scenarios:

* uniform chain — a ballistic "metal": sigma(E) tracks v(E)^2 rho(E)^2
  and peaks inside the band;
* SSH dimerized chain — a band insulator: sigma vanishes inside the
  dimerization gap around E = 0;
* Anderson disorder — sigma collapses everywhere (1-D localization).

Run:  python examples/conductivity.py
"""

import numpy as np

from repro.bench import ascii_plot, ascii_table
from repro.kpm import (
    KPMConfig,
    current_operator_from_edges,
    kubo_greenwood_conductivity,
    lattice_current_operator,
)
from repro.lattice import (
    anderson_onsite_energies,
    chain,
    hamiltonian_from_edges,
    tight_binding_hamiltonian,
)


def build_systems(length: int):
    lattice = chain(length)
    i, j = lattice.neighbor_pairs()
    order = np.argsort(i)
    i, j = i[order], j[order]

    uniform = tight_binding_hamiltonian(lattice, format="csr")
    current_uniform = lattice_current_operator(lattice, 0)

    ssh_hoppings = np.where(np.arange(length) % 2 == 0, -1.0, -0.5)
    ssh = hamiltonian_from_edges(length, i, j, hopping=ssh_hoppings)
    current_ssh = current_operator_from_edges(
        length, i, j, np.ones(length), hopping=ssh_hoppings
    )

    eps = anderson_onsite_energies(lattice, 3.0, seed=21)
    dirty = tight_binding_hamiltonian(lattice, onsite=eps, format="csr")

    return {
        "metal": (uniform, current_uniform),
        "SSH": (ssh, current_ssh),
        "W=3": (dirty, current_uniform),
    }


def main() -> None:
    config = KPMConfig(num_moments=64, num_random_vectors=12, seed=5)
    # Stay inside every system's rescaled interval (the SSH chain's
    # Gerschgorin band is the narrowest at +-1.5).
    energies = np.linspace(-1.4, 1.4, 29)
    systems = build_systems(192)

    curves = {}
    for name, (hamiltonian, current) in systems.items():
        curves[name] = kubo_greenwood_conductivity(
            hamiltonian, current, energies, config
        )

    print("Kubo-Greenwood sigma(E), three 1-D scenarios:")
    print(ascii_plot(energies, curves, width=64, height=16))

    rows = [
        (name, float(sigma[len(energies) // 2]), float(sigma.max()))
        for name, sigma in curves.items()
    ]
    print()
    print(ascii_table(("system", "sigma(E=0)", "max sigma"), rows))
    print("\nSSH gap kills sigma(0); Anderson disorder suppresses the whole curve.")


if __name__ == "__main__":
    main()
