"""Multi-GPU strong scaling — the paper's future-work plan, simulated.

Partitions the stochastic-trace vectors of the Fig. 5 workload across a
cluster of modeled Tesla C2050s (paper Sec. V: "extend the GPU-based
implementation to a GPU cluster") and reports:

* strong scaling at the paper's BLOCK_SIZE=256 vs per-count re-tuned
  block sizes (the coarse decomposition stops scaling early),
* the interconnect sensitivity (InfiniBand vs Gigabit Ethernet),
* a functional check that the partitioned run reproduces the
  single-device moments bit-for-bit.

Run:  python examples/multigpu_scaling.py
"""

import numpy as np

from repro import KPMConfig
from repro.bench import ascii_table, multigpu_ablation
from repro.cluster import GIGABIT_ETHERNET, INFINIBAND_QDR, MultiGpuKPM, estimate_multigpu_seconds
from repro.gpu import TESLA_C2050
from repro.gpukpm import GpuKPM
from repro.kpm import rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian


def main() -> None:
    print(multigpu_ablation().render())

    # Interconnect sensitivity at 8 devices.
    config = KPMConfig(
        num_moments=512, num_random_vectors=128, num_realizations=14, block_size=32
    )
    rows = []
    for link in (INFINIBAND_QDR, GIGABIT_ETHERNET):
        seconds = estimate_multigpu_seconds(
            TESLA_C2050, 1000, config, 8, interconnect=link
        )
        rows.append((link.name, seconds))
    print("\nInterconnect sensitivity (8 devices, Fig.5 workload):")
    print(ascii_table(("interconnect", "modeled_seconds"), rows))

    # Functional equivalence at executable scale.
    h = tight_binding_hamiltonian(cubic(5), format="csr")
    scaled, _ = rescale_operator(h)
    small = KPMConfig(num_moments=64, num_random_vectors=12, num_realizations=2, seed=3,
                      block_size=32)
    single, _ = GpuKPM().compute_moments(scaled, small)
    multi, report = MultiGpuKPM(4).compute_moments(scaled, small)
    drift = float(np.max(np.abs(single.mu - multi.mu)))
    print(f"\n4-device vs 1-device moment drift: {drift:.2e} "
          f"(same Philox streams, different partitioning)")
    print(f"4-device modeled time: {report.summary()}")


if __name__ == "__main__":
    main()
