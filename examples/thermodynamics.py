"""Thermodynamics from KPM moments: fillings, chemical potentials, energies.

Once the moments of a Hamiltonian are known, every single-particle
thermodynamic quantity is a Chebyshev-Gauss quadrature away — no
further matrix work.  This example computes, for the paper's cubic
lattice:

* the zero-temperature band filling n(mu) curve,
* the chemical potential at fixed filling for several temperatures
  (Sommerfeld: mu stays pinned at the symmetric point for half filling),
* the band energy per site vs filling (minimized at half filling),

and cross-checks the half-filled chain against its analytic ground-state
energy, E/site = -2/pi.

Run:  python examples/thermodynamics.py
"""

import numpy as np

from repro.bench import ascii_plot, ascii_table
from repro.kpm import (
    chemical_potential,
    electron_count,
    exact_moments,
    internal_energy,
    rescale_operator,
)
from repro.lattice import chain, cubic, tight_binding_hamiltonian


def main() -> None:
    hamiltonian = tight_binding_hamiltonian(cubic(8), format="csr")
    scaled, rescaling = rescale_operator(hamiltonian)
    moments = exact_moments(scaled, 512)

    # --- n(mu) at T = 0 ------------------------------------------------
    mu_grid = np.linspace(-5.5, 5.5, 45)
    filling = [electron_count(moments, rescaling, m) for m in mu_grid]
    print("Band filling n(mu) at T=0, cubic 8^3 lattice:")
    print(ascii_plot(mu_grid, {"n(mu)": filling}, width=64, height=12))

    # --- mu(n, T) -------------------------------------------------------
    rows = []
    for temperature in (0.0, 0.5, 1.0, 2.0):
        mu_quarter = chemical_potential(
            moments, rescaling, 0.25, temperature=temperature
        )
        mu_half = chemical_potential(
            moments, rescaling, 0.5, temperature=temperature
        )
        rows.append((temperature, mu_quarter, mu_half))
    print("\nChemical potential vs temperature:")
    print(ascii_table(("T", "mu(n=0.25)", "mu(n=0.50)"), rows))
    print("(particle-hole symmetry pins mu(0.5) at 0 for every T)")

    # --- band energy vs filling -----------------------------------------
    fillings = np.linspace(0.05, 0.95, 19)
    energies = []
    for n in fillings:
        mu_n = chemical_potential(moments, rescaling, float(n))
        energies.append(internal_energy(moments, rescaling, mu_n))
    print("\nBand energy per site vs filling (minimum at half filling):")
    print(ascii_plot(fillings, {"E(n)": energies}, width=64, height=12))

    # --- analytic anchor --------------------------------------------------
    chain_h = tight_binding_hamiltonian(chain(512), format="csr")
    chain_scaled, chain_rescaling = rescale_operator(chain_h)
    chain_moments = exact_moments(chain_scaled, 512)
    e_half = internal_energy(chain_moments, chain_rescaling, 0.0)
    print(
        f"\nhalf-filled chain energy/site: KPM {e_half:+.5f} "
        f"vs analytic -2/pi = {-2 / np.pi:+.5f}"
    )


if __name__ == "__main__":
    main()
