"""Serving v2: the multi-tenant gateway, end to end.

Walks through the `repro.serve.Gateway` in five acts:

1. admission — a tenant on a tight budget sees its burst admitted and
   the overflow rejected with a structured reason, at zero device cost;
2. cancellation — a queued request is withdrawn and its admission cost
   refunded, so a cancelled request costs its tenant nothing;
3. degradation — a hopeless deadline is answered *now* from the cached
   low-N prefix (bit-identical leading moments, `final=False`) instead
   of late at full precision;
4. a replayable overloaded trace — diurnal load, flash crowds, Zipf
   tenant skew — through the full gateway and through the same code
   path with EDF + degradation switched off (the v1 FIFO baseline),
   comparing goodput;
5. the equivalence oracle — proof that scheduling changed *when*
   requests were answered, never *what* the answers were.

Run:  python examples/gateway.py
"""

import numpy as np

from repro import KPMConfig, compute_dos
from repro.lattice import cubic, tight_binding_hamiltonian
from repro.serve import (
    DoSRequest,
    Gateway,
    TenantPolicy,
    check_equivalence,
    timed_trace,
)


def main() -> None:
    hamiltonian = tight_binding_hamiltonian(cubic(6), format="csr")
    config = KPMConfig(num_moments=64, num_random_vectors=4, seed=42)

    # -- Act 1: admission -------------------------------------------------
    gateway = Gateway(
        template=("gpu-sim",),
        policies={"metered": TenantPolicy(rate=0.01, burst=0.25)},
        default_policy=TenantPolicy(rate=10.0, burst=50.0),
    )
    print("Act 1 — token-bucket admission for tenant 'metered':")
    for i in range(4):
        request = DoSRequest(hamiltonian, config, tag=f"req-{i}", tenant="metered")
        seq, rejected = gateway.offer(request)
        verdict = f"REJECTED ({rejected.reason})" if rejected else "admitted"
        print(f"  offer #{seq}: {verdict}")
    served = gateway.pump()
    print(f"  {len(served)} admitted request(s) then served "
          f"(coalesced into {len({r.batch_id for r in served.values()})} batch)")

    # -- Act 2: cancellation ----------------------------------------------
    request = DoSRequest(hamiltonian, config.with_updates(seed=7), tenant="acme")
    seq, _ = gateway.offer(request)
    charged = gateway.admission.consumed("acme")
    cancelled = gateway.cancel(seq)
    print(f"\nAct 2 — cancelled #{seq}: outcome={cancelled.outcome!r}, "
          f"charge {charged:.3f}s refunded "
          f"(now {gateway.admission.consumed('acme'):.3f}s)")

    # -- Act 3: degradation -----------------------------------------------
    # A fresh workload (new seed = new identity key, untouched by Act 1).
    low = config.with_updates(num_moments=32, seed=11)
    gateway.offer(DoSRequest(hamiltonian, low))      # warm the prefix cache
    gateway.pump()
    hopeless = DoSRequest(
        hamiltonian, low.with_updates(num_moments=256),
        deadline=gateway.clock,  # already due when offered
    )
    seq, _ = gateway.offer(hopeless)
    [degraded] = gateway.pump().values()
    direct = compute_dos(hamiltonian, low, backend="gpu-sim")
    honest = np.array_equal(degraded.moments.mu, direct.moments.mu)
    print(f"\nAct 3 — hopeless deadline answered from the cached prefix:")
    print(f"  outcome={degraded.outcome!r}, final={degraded.final}, "
          f"served N={degraded.num_moments_served} of "
          f"{hopeless.config.num_moments}")
    print(f"  bit-identical to a cold N=32 run: {honest}")

    # -- Act 4: overload, gateway vs FIFO ---------------------------------
    arrivals = timed_trace(
        150, seed=6, tenants=3, duration=12.0, deadline_slack=0.5,
        flash_crowds=2, flash_multiplier=8.0, repeat_bias=0.85,
    )
    policy = TenantPolicy(rate=0.8, burst=2.0)
    print(f"\nAct 4 — {len(arrivals)} arrivals over 12 modeled seconds, "
          f"two 8x flash crowds:")
    results = {}
    for mode, edf, degrade in (("gateway", True, True), ("fifo", False, False)):
        replayer = Gateway(
            template=("gpu-sim", "cpu-model"), max_active=3,
            default_policy=policy, edf=edf, degrade=degrade,
        )
        replayer.run_trace(arrivals)
        results[mode] = replayer.gateway_metrics()
        print(f"  {mode:>7}: {results[mode].summary()}")
    advantage = results["gateway"].goodput_ratio - results["fifo"].goodput_ratio
    print(f"  goodput advantage (gateway - fifo): {advantage:+.3f}")

    # -- Act 5: the equivalence oracle ------------------------------------
    report = check_equivalence(
        timed_trace(40, seed=9, duration=4.0, deadline_slack=0.4),
        backend="gpu-sim",
        default_policy=TenantPolicy(rate=0.5, burst=1.0),
    )
    print(f"\nAct 5 — gateway vs serial FIFO reference:")
    print(f"  {report.summary()}")


if __name__ == "__main__":
    main()
