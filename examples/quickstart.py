"""Quickstart: the paper's workload, end to end, in ~20 lines.

Builds the 10x10x10 cubic-lattice Hamiltonian of Sec. IV-A, runs the
KPM density-of-states pipeline on the simulated Tesla C2050, and prints
the DoS as an ASCII plot together with the modeled GPU-vs-CPU timing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import KPMConfig, compute_dos
from repro.bench import ascii_plot
from repro.lattice import cubic, tight_binding_hamiltonian


def main() -> None:
    # The paper's physical workload (sparse storage keeps this example fast;
    # the figure harness prices the dense configuration the paper measured).
    hamiltonian = tight_binding_hamiltonian(cubic(10), format="csr")
    print(f"Hamiltonian: D={hamiltonian.shape[0]}, "
          f"{hamiltonian.nnz_stored} stored entries "
          f"({hamiltonian.max_row_nnz} per row)")

    config = KPMConfig(
        num_moments=256,          # N  — truncation order
        num_random_vectors=16,    # R  — stochastic trace vectors
        num_realizations=2,       # S  — independent realizations
        kernel="jackson",
        seed=42,
    )

    for backend in ("cpu-model", "gpu-sim"):
        result = compute_dos(hamiltonian, config, backend=backend)
        print(f"{backend:>9}: {result.timing.summary()}")

    print(f"\nDoS integral: {result.integrate():.4f} (should be ~1)")
    print(f"energy resolution: {result.energy_resolution():.3f}")

    # Downsample for the terminal plot.
    step = len(result.energies) // 64
    print("\nDensity of states, cubic 10x10x10 lattice:")
    print(ascii_plot(
        result.energies[::step],
        {"rho(E)": result.density[::step]},
        width=64,
        height=14,
    ))


if __name__ == "__main__":
    main()
