"""GPU speedup study: regenerate the paper's performance figures.

Reproduces the timing content of the paper's evaluation (Figs. 5, 7, 8)
from the analytic hardware models, prints the speedup tables, and then
goes beyond the paper: the BLOCK_SIZE tuning the authors list as future
work, and what CRS storage would have bought them.

Run:  python examples/gpu_speedup_study.py
"""

from repro.bench import (
    block_size_ablation,
    crs_vs_dense_ablation,
    fig5,
    fig7,
    fig8,
)


def main() -> None:
    for build in (fig5, fig7, fig8):
        result = build()
        print(result.render())
        print(result.to_plot("speedup", height=10))
        print()

    print(block_size_ablation(num_moments=512).render())
    print()
    print(crs_vs_dense_ablation().render())


if __name__ == "__main__":
    main()
