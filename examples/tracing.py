"""Deterministic observability: span traces, exports, and the perf gate.

Walks through `repro.obs` in four acts:

1. tracing — run the paper's workload under a `Tracer` and print the
   span tree: kernels nested under the GPU pipeline, pipeline under
   the KPM driver, all timed on the *modeled* clock;
2. determinism — the trace is a pure function of the workload, so two
   runs produce byte-identical JSON and the same fingerprint (and the
   traced numerics are bit-identical to the untraced ones);
3. exports — Chrome trace-event JSON for chrome://tracing / Perfetto,
   plus JSON lines and the metrics registry;
4. the gate — compare a run against itself (pass), then against a
   doctored copy with one span's modeled cost inflated (fail).

Run:  python examples/tracing.py
"""

import json

from repro import KPMConfig, compute_dos
from repro.lattice import cubic, tight_binding_hamiltonian
from repro.obs import (
    MetricsRegistry,
    RunRecord,
    Tracer,
    compare_records,
    render_tree,
    to_chrome_trace,
)


def traced_run(hamiltonian, config) -> tuple:
    """One traced gpu-sim DoS run -> (DoSResult, RunRecord)."""
    tracer = Tracer()
    registry = MetricsRegistry()
    with tracer.activate():
        result = compute_dos(hamiltonian, config, backend="gpu-sim")
    registry.absorb_timing_report(result.timing)
    record = RunRecord(
        label="example",
        workload={"lattice": "cubic:6", "seed": config.seed},
        spans=tracer.finish(),
        metrics=registry,
    )
    return result, record


def main() -> None:
    hamiltonian = tight_binding_hamiltonian(cubic(6), format="csr")
    config = KPMConfig(num_moments=64, num_random_vectors=8, seed=42)

    # -- Act 1: the span tree ---------------------------------------------
    result, record = traced_run(hamiltonian, config)
    print("Act 1 — the traced run (modeled clock):")
    print(render_tree(record))

    # -- Act 2: determinism -----------------------------------------------
    result2, record2 = traced_run(hamiltonian, config)
    print("Act 2 — trace is a pure function of the workload:")
    print(f"  byte-identical JSON: {record.to_json() == record2.to_json()}")
    print(f"  fingerprint:         {record.fingerprint()[:16]}...")
    print("  numerics unperturbed:",
          result.density.tobytes() == result2.density.tobytes())
    print()

    # -- Act 3: exports ---------------------------------------------------
    trace = json.loads(to_chrome_trace(record))
    kernels = [e for e in trace["traceEvents"] if e["cat"] == "kernel"]
    print("Act 3 — Chrome trace export (load in chrome://tracing):")
    print(f"  {len(trace['traceEvents'])} events, {len(kernels)} kernel launches")
    print(f"  gauges: {list(record.metrics.gauges)}")
    print()

    # -- Act 4: the regression gate ---------------------------------------
    print("Act 4 — the gate: self-compare passes ...")
    print("  " + compare_records(record, record2).summary().splitlines()[0])
    doctored = RunRecord.from_dict(record.to_dict())
    for root in doctored.spans:
        for span in root.walk():
            if span.label == "gpu.moments":
                span.end += span.duration * 0.5  # +50% modeled cost
    print("... and a 50% inflation of gpu.moments fails:")
    verdict = compare_records(record, doctored)
    for line in verdict.summary().splitlines()[:3]:
        print("  " + line)


if __name__ == "__main__":
    main()
