"""Property-based tests for lattice geometry and the RNG contract."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kpm import random_block, random_vector
from repro.lattice import Lattice, hamiltonian_from_edges
from repro.util.rng import philox_stream, spawn_seeds


@st.composite
def lattices(draw):
    ndim = draw(st.integers(1, 3))
    dims = tuple(draw(st.integers(3, 6)) for _ in range(ndim))
    periodic = tuple(draw(st.booleans()) for _ in range(ndim))
    return Lattice(dims, periodic=periodic)


class TestLatticeProperties:
    @given(lattice=lattices())
    @settings(max_examples=40)
    def test_index_coords_bijection(self, lattice):
        indices = np.arange(lattice.num_sites)
        np.testing.assert_array_equal(
            lattice.site_index(lattice.site_coords(indices)), indices
        )

    @given(lattice=lattices())
    @settings(max_examples=40)
    def test_bond_count_formula(self, lattice):
        # Bonds along an axis: prod(dims) if periodic else prod * (L-1)/L.
        i, _ = lattice.neighbor_pairs()
        expected = 0
        for axis, (length, per) in enumerate(zip(lattice.dims, lattice.periodic)):
            if length == 1:
                continue
            per_axis = lattice.num_sites if per else lattice.num_sites // length * (length - 1)
            expected += per_axis
        assert len(i) == expected

    @given(lattice=lattices())
    @settings(max_examples=40)
    def test_hamiltonian_symmetric_with_correct_nnz(self, lattice):
        i, j = lattice.neighbor_pairs()
        if len(i) == 0:
            return
        h = hamiltonian_from_edges(lattice.num_sites, i, j, format="csr")
        assert h.is_symmetric()
        # Stored entries: one diagonal per site + two per bond.
        assert h.nnz_stored == lattice.num_sites + 2 * len(i)

    @given(lattice=lattices())
    @settings(max_examples=40)
    def test_coordination_bounds(self, lattice):
        counts = lattice.coordination_numbers()
        assert counts.max() <= 2 * lattice.ndim
        assert counts.min() >= 0


class TestRngProperties:
    @given(
        seed=st.integers(0, 2**31),
        realization=st.integers(0, 1000),
        vector_index=st.integers(0, 1000),
        dim=st.integers(1, 64),
    )
    @settings(max_examples=40)
    def test_vector_pure_function_of_key(self, seed, realization, vector_index, dim):
        a = random_vector(dim, seed=seed, realization=realization, vector_index=vector_index)
        b = random_vector(dim, seed=seed, realization=realization, vector_index=vector_index)
        np.testing.assert_array_equal(a, b)

    @given(
        seed=st.integers(0, 2**31),
        dim=st.integers(1, 32),
        count=st.integers(1, 8),
        offset=st.integers(0, 50),
    )
    @settings(max_examples=40)
    def test_block_equals_loop(self, seed, dim, count, offset):
        block = random_block(dim, count, seed=seed, first_vector=offset)
        for k in range(count):
            np.testing.assert_array_equal(
                block[:, k],
                random_vector(dim, seed=seed, vector_index=offset + k),
            )

    @given(seed=st.integers(0, 2**31), count=st.integers(0, 64))
    @settings(max_examples=40)
    def test_spawn_seeds_deterministic_and_distinct(self, seed, count):
        a = spawn_seeds(seed, count)
        assert a == spawn_seeds(seed, count)
        assert len(set(a)) == count

    @given(
        seed=st.integers(0, 2**31),
        key_a=st.integers(0, 10**6),
        key_b=st.integers(0, 10**6),
    )
    @settings(max_examples=40)
    def test_distinct_keys_distinct_streams(self, seed, key_a, key_b):
        if key_a == key_b:
            return
        a = philox_stream(seed, key_a).standard_normal(8)
        b = philox_stream(seed, key_b).standard_normal(8)
        assert not np.array_equal(a, b)
