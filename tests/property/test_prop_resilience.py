"""Property-based tests of the fault-tolerance contract.

The resilient driver's guarantee is universal, not anecdotal: *any*
recoverable fault campaign — whatever mix of crashes, stragglers, and
transfer corruptions, at any checkpoint granularity — must reproduce the
bit-identical moments of a fault-free run.  Hypothesis sweeps the
campaign space at small scale; `FaultSchedule.sample` guarantees at
least one survivor, which is the only condition recovery needs (given a
generous retry budget).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import FaultSchedule, MultiGpuKPM, RetryPolicy
from repro.kpm import KPMConfig, rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian


@pytest.fixture(scope="module")
def scaled():
    csr = tight_binding_hamiltonian(cubic(3), format="csr")
    s, _ = rescale_operator(csr)
    return s


configs = st.builds(
    KPMConfig,
    num_moments=st.integers(2, 12),
    num_random_vectors=st.integers(4, 8),
    num_realizations=st.integers(1, 2),
    seed=st.integers(0, 50),
    block_size=st.just(32),
)


class TestRecoveryIsExact:
    @given(
        config=configs,
        devices=st.integers(2, 4),
        fault_seed=st.integers(0, 200),
        crash_rate=st.floats(0.0, 1.0),
        straggler_rate=st.floats(0.0, 1.0),
        transfer_rate=st.floats(0.0, 1.0),
        checkpoint_every=st.one_of(st.none(), st.integers(1, 4)),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_recoverable_campaign_is_bit_identical(
        self,
        scaled,
        config,
        devices,
        fault_seed,
        crash_rate,
        straggler_rate,
        transfer_rate,
        checkpoint_every,
    ):
        baseline, _ = MultiGpuKPM(devices).compute_moments(scaled, config)
        schedule = FaultSchedule.sample(
            fault_seed,
            devices,
            crash_rate=crash_rate,
            straggler_rate=straggler_rate,
            transfer_rate=transfer_rate,
        )
        data, report = MultiGpuKPM(
            devices,
            fault_schedule=schedule,
            policy=RetryPolicy(max_retries=8 * devices),
            checkpoint_every=checkpoint_every,
        ).compute_moments(scaled, config)
        assert np.array_equal(data.mu, baseline.mu)
        assert np.array_equal(data.per_realization, baseline.per_realization)
        assert report.breakdown["recovery"] >= 0.0
        assert report.modeled_seconds == pytest.approx(
            sum(report.breakdown.values())
        )

    @given(config=configs, devices=st.integers(1, 4), every=st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_checkpoint_granularity_never_changes_moments(
        self, scaled, config, devices, every
    ):
        baseline, _ = MultiGpuKPM(devices).compute_moments(scaled, config)
        data, report = MultiGpuKPM(devices, checkpoint_every=every).compute_moments(
            scaled, config
        )
        assert np.array_equal(data.mu, baseline.mu)
        assert np.array_equal(data.per_realization, baseline.per_realization)
        # No faults: all fault phases stay at exactly zero.
        assert report.breakdown["recovery"] == 0.0
        assert report.breakdown["rebalance"] == 0.0
