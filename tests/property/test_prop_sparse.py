"""Property-based tests for the sparse substrate (hypothesis).

Invariants: CSR<->COO<->dense conversions are exact, SpMV/SpMM agree with
dense arithmetic for arbitrary sparsity patterns (including empty rows,
empty matrices, and duplicate COO entries), transposition is an
involution, and Gerschgorin helpers match their dense definitions.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.sparse import COOMatrix, CSRMatrix


def sparse_dense_arrays(max_dim=12):
    """Random dense float arrays with many exact zeros."""
    shapes = st.tuples(
        st.integers(1, max_dim), st.integers(1, max_dim)
    )
    return shapes.flatmap(
        lambda shape: npst.arrays(
            np.float64,
            shape,
            elements=st.one_of(
                st.just(0.0),
                st.just(0.0),
                st.floats(-10, 10, allow_nan=False, allow_infinity=False, width=64),
            ),
        )
    )


@st.composite
def coo_triplets(draw, max_dim=10, max_entries=30):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    count = draw(st.integers(0, max_entries))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=count, max_size=count)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=count, max_size=count)
    )
    values = draw(
        st.lists(
            st.floats(-5, 5, allow_nan=False, allow_infinity=False, width=64),
            min_size=count,
            max_size=count,
        )
    )
    return COOMatrix(rows, cols, values, (n_rows, n_cols))


class TestConversionRoundtrips:
    @given(dense=sparse_dense_arrays())
    @settings(max_examples=60)
    def test_from_dense_roundtrip(self, dense):
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)

    @given(coo=coo_triplets())
    @settings(max_examples=60)
    def test_coo_csr_dense_agree(self, coo):
        np.testing.assert_allclose(
            coo.to_csr().to_dense(), coo.to_dense(), atol=1e-12
        )

    @given(coo=coo_triplets())
    @settings(max_examples=60)
    def test_transpose_involution(self, coo):
        csr = coo.to_csr()
        np.testing.assert_array_equal(
            csr.transpose().transpose().to_dense(), csr.to_dense()
        )

    @given(coo=coo_triplets())
    @settings(max_examples=60)
    def test_sum_duplicates_preserves_dense(self, coo):
        np.testing.assert_allclose(
            coo.sum_duplicates().to_dense(), coo.to_dense(), atol=1e-12
        )


class TestLinearAlgebraAgainstDense:
    @given(dense=sparse_dense_arrays(), data=st.data())
    @settings(max_examples=60)
    def test_matvec(self, dense, data):
        x = data.draw(
            npst.arrays(
                np.float64,
                dense.shape[1],
                elements=st.floats(-3, 3, allow_nan=False, width=64),
            )
        )
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.matvec(x), dense @ x, atol=1e-9)

    @given(dense=sparse_dense_arrays(max_dim=8), data=st.data())
    @settings(max_examples=40)
    def test_matmat(self, dense, data):
        k = data.draw(st.integers(1, 4))
        block = data.draw(
            npst.arrays(
                np.float64,
                (dense.shape[1], k),
                elements=st.floats(-3, 3, allow_nan=False, width=64),
            )
        )
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.matmat(block), dense @ block, atol=1e-9)

    @given(dense=sparse_dense_arrays())
    @settings(max_examples=40)
    def test_scale_shift(self, dense):
        if dense.shape[0] != dense.shape[1]:
            dense = dense[: min(dense.shape), : min(dense.shape)]
        csr = CSRMatrix.from_dense(dense)
        out = csr.scale_shift(0.5, 2.0)
        np.testing.assert_allclose(
            out.to_dense(), 0.5 * dense + 2.0 * np.eye(dense.shape[0]), atol=1e-12
        )


class TestSpectralHelpers:
    @given(dense=sparse_dense_arrays())
    @settings(max_examples=40)
    def test_gerschgorin_ingredients(self, dense):
        if dense.shape[0] != dense.shape[1]:
            n = min(dense.shape)
            dense = dense[:n, :n]
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.diagonal(), np.diag(dense), atol=1e-12)
        expected = np.abs(dense).sum(axis=1) - np.abs(np.diag(dense))
        np.testing.assert_allclose(csr.offdiag_abs_row_sums(), expected, atol=1e-12)

    @given(dense=sparse_dense_arrays())
    @settings(max_examples=40)
    def test_symmetrized_is_symmetric(self, dense):
        if dense.shape[0] != dense.shape[1]:
            n = min(dense.shape)
            dense = dense[:n, :n]
        sym = dense + dense.T
        assert CSRMatrix.from_dense(sym).is_symmetric(tolerance=1e-12)
