"""Property-based tests for observables, evolution, and MatrixMarket I/O."""

import io

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.kpm import (
    electron_count,
    evolution_coefficients,
    evolve_state,
    exact_moments,
    fermi_dirac,
    rescale_operator,
    spectral_integral,
)
from repro.sparse import COOMatrix, read_matrix_market, write_matrix_market


@st.composite
def symmetric_matrices(draw, max_dim=8):
    n = draw(st.integers(2, max_dim))
    a = draw(
        npst.arrays(
            np.float64,
            (n, n),
            elements=st.floats(-3, 3, allow_nan=False, allow_infinity=False, width=64),
        )
    )
    sym = (a + a.T) / 2.0
    eigs = np.linalg.eigvalsh(sym)
    assume(eigs[-1] - eigs[0] > 1e-4)
    return sym


class TestFermiDiracProperties:
    @given(
        energy=st.floats(-100, 100, allow_nan=False),
        mu=st.floats(-100, 100, allow_nan=False),
        temperature=st.floats(0.001, 50, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_occupation_in_unit_interval(self, energy, mu, temperature):
        occupation = fermi_dirac(energy, mu, temperature)
        assert 0.0 <= occupation <= 1.0

    @given(
        mu=st.floats(-10, 10, allow_nan=False),
        temperature=st.floats(0.0, 10, allow_nan=False),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_monotone_decreasing_in_energy(self, mu, temperature, data):
        energies = np.sort(
            data.draw(
                npst.arrays(
                    np.float64,
                    8,
                    elements=st.floats(-20, 20, allow_nan=False, width=64),
                )
            )
        )
        occ = fermi_dirac(energies, mu, temperature)
        assert np.all(np.diff(occ) <= 1e-12)


class TestSpectralIntegralProperties:
    @given(matrix=symmetric_matrices())
    @settings(max_examples=20, deadline=None)
    def test_linearity_and_constant(self, matrix):
        scaled, rescaling = rescale_operator(matrix, method="exact", epsilon=0.05)
        mu = exact_moments(scaled, 32)
        one = spectral_integral(mu, rescaling, lambda e: np.ones_like(e), num_points=256)
        assert abs(one - 1.0) < 1e-9
        linear = spectral_integral(mu, rescaling, lambda e: 3.0 * e + 2.0, num_points=256)
        mean = spectral_integral(mu, rescaling, lambda e: e, num_points=256)
        assert abs(linear - (3.0 * mean + 2.0)) < 1e-9

    @given(matrix=symmetric_matrices(), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_electron_count_monotone(self, matrix, data):
        scaled, rescaling = rescale_operator(matrix, method="exact", epsilon=0.05)
        mu = exact_moments(scaled, 32)
        lo = data.draw(st.floats(-0.8, 0.0))
        hi = data.draw(st.floats(0.01, 0.8))
        n_lo = electron_count(mu, rescaling, rescaling.to_original(lo), num_points=256)
        n_hi = electron_count(mu, rescaling, rescaling.to_original(hi), num_points=256)
        assert n_hi >= n_lo - 1e-9


class TestEvolutionProperties:
    @given(
        matrix=symmetric_matrices(),
        time=st.floats(-8, 8, allow_nan=False),
        data=st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_unitarity(self, matrix, time, data):
        psi0 = data.draw(
            npst.arrays(
                np.float64,
                matrix.shape[0],
                elements=st.floats(-1, 1, allow_nan=False, width=64),
            )
        )
        assume(np.linalg.norm(psi0) > 1e-3)
        psi0 = psi0 / np.linalg.norm(psi0)
        evolved = evolve_state(matrix, psi0, time)
        assert np.linalg.norm(evolved) == np.float64(np.linalg.norm(evolved))
        assert abs(np.linalg.norm(evolved) - 1.0) < 1e-9

    @given(tau=st.floats(-30, 30, allow_nan=False))
    @settings(max_examples=40)
    def test_coefficient_l2_norm(self, tau):
        # sum |c_n|^2 relates to 1 via the Jacobi-Anger identity:
        # |exp(-i tau x)| = 1 pointwise; at x=0 the series telescopes.
        from repro.kpm import evolution_order

        coefficients = evolution_coefficients(tau, evolution_order(tau))
        # Evaluate the expansion at x = 0: T_n(0) = cos(n pi / 2).
        orders = np.arange(coefficients.size)
        value = np.sum(coefficients * np.cos(orders * np.pi / 2))
        assert abs(abs(value) - 1.0) < 1e-9


class TestMatrixMarketProperties:
    @st.composite
    @staticmethod
    def coo_matrices(draw):
        n_rows = draw(st.integers(1, 8))
        n_cols = draw(st.integers(1, 8))
        count = draw(st.integers(0, 20))
        rows = draw(st.lists(st.integers(0, n_rows - 1), min_size=count, max_size=count))
        cols = draw(st.lists(st.integers(0, n_cols - 1), min_size=count, max_size=count))
        values = draw(
            st.lists(
                st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=64),
                min_size=count,
                max_size=count,
            )
        )
        return COOMatrix(rows, cols, values, (n_rows, n_cols))

    @given(coo=coo_matrices())
    @settings(max_examples=40)
    def test_roundtrip_exact(self, coo):
        buffer = io.StringIO()
        write_matrix_market(coo, buffer)
        buffer.seek(0)
        out = read_matrix_market(buffer, format="coo")
        # Compare against the canonical deduplicated form: the writer
        # sums duplicates, and repr() round-trips each float exactly.
        np.testing.assert_array_equal(
            out.to_dense(), coo.sum_duplicates().to_dense()
        )
