"""Property-based tests: tracing is observation, never perturbation.

The observability layer's core contract is that attaching a
:class:`~repro.obs.Tracer` changes *nothing* about the computation: the
moments and DoS it observes must be bit-identical to an untraced run, on
every backend, for every configuration.  Hypothesis drives that across
the configuration space; a second property pins the trace itself as a
deterministic function of the workload.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kpm import KPMConfig, compute_dos, rescale_operator, stochastic_moments
from repro.lattice import cubic, tight_binding_hamiltonian
from repro.obs import RunRecord, Tracer


@pytest.fixture(scope="module")
def system():
    csr = tight_binding_hamiltonian(cubic(3), format="csr")
    scaled, _ = rescale_operator(csr)
    return csr, scaled


configs = st.builds(
    KPMConfig,
    num_moments=st.integers(1, 24),
    num_random_vectors=st.integers(1, 8),
    num_realizations=st.integers(1, 3),
    seed=st.integers(0, 1000),
    block_size=st.sampled_from((32, 64, 128)),
    precision=st.sampled_from(("double", "single")),
)


class TestTracingIsPure:
    @given(config=configs, backend=st.sampled_from(("numpy", "gpu-sim")))
    @settings(max_examples=20, deadline=None)
    def test_dos_bit_identical_under_tracing(self, system, config, backend):
        csr, _ = system
        untraced = compute_dos(csr, config, backend=backend)
        tracer = Tracer()
        with tracer.activate():
            traced = compute_dos(csr, config, backend=backend)
        assert traced.moments.mu.tobytes() == untraced.moments.mu.tobytes()
        assert traced.density.tobytes() == untraced.density.tobytes()
        assert traced.timing.modeled_seconds == untraced.timing.modeled_seconds

    @given(config=configs)
    @settings(max_examples=15, deadline=None)
    def test_moments_bit_identical_under_tracing(self, system, config):
        _, scaled = system
        untraced = stochastic_moments(scaled, config)
        tracer = Tracer()
        with tracer.activate():
            traced = stochastic_moments(scaled, config)
        assert traced.mu.tobytes() == untraced.mu.tobytes()


class TestTraceDeterminism:
    @given(config=configs)
    @settings(max_examples=10, deadline=None)
    def test_trace_is_a_function_of_the_workload(self, system, config):
        csr, _ = system

        def run():
            tracer = Tracer()
            with tracer.activate():
                compute_dos(csr, config, backend="gpu-sim")
            return RunRecord(label="prop", spans=tracer.finish())

        first, second = run(), run()
        assert first.to_json() == second.to_json()
        assert first.fingerprint() == second.fingerprint()

    @given(config=configs)
    @settings(max_examples=10, deadline=None)
    def test_trace_clock_matches_timing_report(self, system, config):
        csr, _ = system
        tracer = Tracer()
        with tracer.activate():
            result = compute_dos(csr, config, backend="gpu-sim")
        assert tracer.clock == pytest.approx(result.timing.modeled_seconds, rel=1e-12)
