"""Property-based tests for the GPU simulator's accounting invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpu import (
    Device,
    KernelStats,
    TESLA_C2050,
    compute_occupancy,
    kernel,
    kernel_cost,
    tiny_test_device,
    transfer_cost,
)
from repro.gpukpm import plan_grid


@kernel("prop_touch")
def touch_kernel(ctx, arr):
    idx = ctx.thread_range(arr.shape[0])
    arr.data[idx] += 1.0
    ctx.charge(flops=float(idx.size), gmem_read=8.0 * idx.size, gmem_write=8.0 * idx.size)


class TestThreadRangeCoverage:
    @given(
        total=st.integers(0, 500),
        grid=st.integers(1, 8),
        block=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_blocks_partition_items(self, total, grid, block):
        device = Device(tiny_test_device(max_threads_per_block=64))
        arr = device.alloc(max(total, 1))
        if total == 0:
            arr.data[:] = 1.0  # untouched marker handled below
        device.launch(touch_kernel, grid=grid, block=block, args=(arr,))
        if total > 0:
            # every element incremented exactly once by exactly one block
            np.testing.assert_array_equal(arr.data[:total], np.ones(total))


class TestCostModelMonotonicity:
    @given(
        flops=st.floats(1e3, 1e12),
        factor=st.floats(1.1, 10.0),
        blocks=st.integers(1, 200),
    )
    @settings(max_examples=60)
    def test_more_flops_never_cheaper(self, flops, factor, blocks):
        occupancy = compute_occupancy(TESLA_C2050, 128)
        small = kernel_cost(
            TESLA_C2050, KernelStats(flops=flops), grid_blocks=blocks, occupancy=occupancy
        )
        large = kernel_cost(
            TESLA_C2050,
            KernelStats(flops=flops * factor),
            grid_blocks=blocks,
            occupancy=occupancy,
        )
        assert large.total_seconds >= small.total_seconds

    @given(
        nbytes=st.integers(0, 10**10),
        extra=st.integers(1, 10**9),
    )
    @settings(max_examples=60)
    def test_transfer_monotone(self, nbytes, extra):
        assert transfer_cost(TESLA_C2050, nbytes + extra) > transfer_cost(
            TESLA_C2050, nbytes
        )

    @given(
        block_size=st.sampled_from((32, 64, 128, 256, 512, 1024)),
        shared=st.integers(0, 48 * 1024),
    )
    @settings(max_examples=60)
    def test_occupancy_in_unit_interval(self, block_size, shared):
        result = compute_occupancy(
            TESLA_C2050, block_size, shared_bytes_per_block=shared
        )
        assert 0.0 < result.occupancy <= 1.0
        assert result.blocks_per_sm >= 1


class TestGridPlanProperties:
    @given(
        vectors=st.integers(1, 10_000),
        block_size=st.sampled_from((32, 64, 128, 256, 512, 1024)),
    )
    @settings(max_examples=60)
    def test_plan_partitions_vectors(self, vectors, block_size):
        plan = plan_grid(vectors, block_size, TESLA_C2050)
        assert plan.num_blocks == math.ceil(vectors / block_size)
        total = sum(len(plan.vectors_of(b)) for b in range(plan.num_blocks))
        assert total == vectors
        # all but the last block are full
        for b in range(plan.num_blocks - 1):
            assert len(plan.vectors_of(b)) == block_size
