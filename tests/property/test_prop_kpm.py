"""Property-based tests for the KPM core (hypothesis).

Invariants: moments of any rescaled symmetric matrix are bounded by
``mu_0``; the recursion agrees with the spectral definition
``mu_n = sum_i w_i T_n(lambda_i)``; kernels damp monotonically in ``n``
and keep ``g_0 = 1``; rescaling is an exact affine bijection; the
reconstruction integrates to ``mu_0``.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.kpm import (
    apply_kernel_damping,
    available_kernels,
    get_kernel,
    moments_single_vector,
    reconstruct_on_chebyshev_grid,
    rescale_operator,
)
from repro.kpm.rescale import Rescaling


@st.composite
def symmetric_matrices(draw, max_dim=10):
    n = draw(st.integers(2, max_dim))
    a = draw(
        npst.arrays(
            np.float64,
            (n, n),
            elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False, width=64),
        )
    )
    sym = (a + a.T) / 2.0
    # Reject (numerically) constant-spectrum matrices: rescaling is undefined.
    eigs = np.linalg.eigvalsh(sym)
    assume(eigs[-1] - eigs[0] > 1e-6)
    return sym


class TestMomentInvariants:
    @given(matrix=symmetric_matrices(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_moments_bounded_by_mu0(self, matrix, data):
        scaled, _ = rescale_operator(matrix, method="exact", epsilon=0.05)
        r0 = data.draw(
            npst.arrays(
                np.float64,
                matrix.shape[0],
                elements=st.floats(-2, 2, allow_nan=False, width=64),
            )
        )
        assume(np.linalg.norm(r0) > 1e-6)
        mu = moments_single_vector(scaled, r0, 16)
        assert np.all(np.abs(mu) <= mu[0] * (1 + 1e-9))

    @given(matrix=symmetric_matrices(max_dim=8), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_recursion_matches_spectral_definition(self, matrix, data):
        scaled, _ = rescale_operator(matrix, method="exact", epsilon=0.05)
        r0 = data.draw(
            npst.arrays(
                np.float64,
                matrix.shape[0],
                elements=st.floats(-1, 1, allow_nan=False, width=64),
            )
        )
        assume(np.linalg.norm(r0) > 1e-6)
        mu = moments_single_vector(scaled, r0, 10)
        eigenvalues, vectors = np.linalg.eigh(scaled.to_dense())
        weights = (vectors.T @ r0) ** 2
        theta = np.arccos(np.clip(eigenvalues, -1, 1))
        reference = np.array([np.sum(weights * np.cos(n * theta)) for n in range(10)])
        np.testing.assert_allclose(mu, reference, atol=1e-7)

    @given(matrix=symmetric_matrices(max_dim=8), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_doubling_equals_plain(self, matrix, data):
        scaled, _ = rescale_operator(matrix, method="exact", epsilon=0.05)
        r0 = data.draw(
            npst.arrays(
                np.float64,
                matrix.shape[0],
                elements=st.floats(-1, 1, allow_nan=False, width=64),
            )
        )
        assume(np.linalg.norm(r0) > 1e-6)
        n = data.draw(st.integers(2, 20))
        plain = moments_single_vector(scaled, r0, n)
        doubled = moments_single_vector(scaled, r0, n, use_doubling=True)
        np.testing.assert_allclose(doubled, plain, atol=1e-8)


class TestKernelInvariants:
    @given(
        name=st.sampled_from(available_kernels()),
        n=st.integers(2, 512),
    )
    @settings(max_examples=60)
    def test_g0_one_and_bounded(self, name, n):
        g = get_kernel(name, n)
        assert g.shape == (n,)
        assert g[0] == np.float64(1.0) or abs(g[0] - 1.0) < 1e-12
        assert np.all(g <= 1.0 + 1e-12)
        assert np.all(g >= -1e-12)

    @given(
        name=st.sampled_from(("jackson", "lorentz", "fejer", "lanczos")),
        n=st.integers(3, 256),
    )
    @settings(max_examples=60)
    def test_damping_non_increasing(self, name, n):
        g = get_kernel(name, n)
        assert np.all(np.diff(g) <= 1e-12)


class TestRescalingInvariants:
    @given(
        scale=st.floats(0.01, 100, allow_nan=False),
        shift=st.floats(-100, 100, allow_nan=False),
        data=st.data(),
    )
    @settings(max_examples=60)
    def test_affine_bijection(self, scale, shift, data):
        rescaling = Rescaling(scale=scale, shift=shift)
        omega = data.draw(
            npst.arrays(
                np.float64,
                5,
                elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
            )
        )
        np.testing.assert_allclose(
            rescaling.to_original(rescaling.to_scaled(omega)), omega,
            rtol=1e-9, atol=1e-6,
        )

    @given(matrix=symmetric_matrices())
    @settings(max_examples=30, deadline=None)
    def test_spectrum_lands_inside(self, matrix):
        scaled, _ = rescale_operator(matrix, method="exact", epsilon=0.02)
        eigs = np.linalg.eigvalsh(scaled.to_dense())
        assert eigs[0] >= -1.0
        assert eigs[-1] <= 1.0


class TestReconstructionInvariants:
    @given(
        mu=npst.arrays(
            np.float64,
            st.integers(1, 32),
            elements=st.floats(-1, 1, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=40)
    def test_integral_equals_mu0(self, mu):
        damped = apply_kernel_damping(mu, "jackson")
        x, f = reconstruct_on_chebyshev_grid(damped, 1024)
        integral = np.trapezoid(f, x)
        assert abs(integral - mu[0]) < 0.02 * max(1.0, np.abs(mu).sum())

    @given(
        mu=npst.arrays(
            np.float64,
            st.integers(2, 32),
            elements=st.floats(-1, 1, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=40)
    def test_jackson_reconstruction_nonnegative_for_valid_moments(self, mu):
        # Moments of a positive measure: use mu of a point mass at x0.
        x0 = float(np.clip(mu[0], -0.9, 0.9))
        point_mu = np.cos(np.arange(len(mu)) * np.arccos(x0))
        damped = apply_kernel_damping(point_mu, "jackson")
        _, f = reconstruct_on_chebyshev_grid(damped, 256)
        assert f.min() >= -1e-9
