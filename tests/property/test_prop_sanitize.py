"""Property-based tests: the sanitizer is numerically invisible.

Instrumentation must never perturb a computation — the sanitized and
unsanitized runs of any workload must be bit-identical, across seeds,
storages (dense/CSR), and fault campaigns — and the pinned production
paths must be finding-free.  Hypothesis sweeps the parameter space at
small scale.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import FaultSchedule, MultiGpuKPM
from repro.kpm import KPMConfig, compute_dos, rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian
from repro.sanitize import DeviceSanitizer

configs = st.builds(
    KPMConfig,
    num_moments=st.integers(2, 16),
    num_random_vectors=st.integers(1, 6),
    num_realizations=st.integers(1, 2),
    seed=st.integers(0, 50),
    block_size=st.just(32),
)


@pytest.fixture(scope="module")
def hamiltonians():
    return {
        "csr": tight_binding_hamiltonian(cubic(3), format="csr"),
        "dense": tight_binding_hamiltonian(cubic(3), format="dense"),
    }


class TestDosInvisibility:
    @given(config=configs, storage=st.sampled_from(["csr", "dense"]))
    @settings(max_examples=12, deadline=None)
    def test_sanitized_dos_is_bit_identical_and_clean(
        self, hamiltonians, config, storage
    ):
        hamiltonian = hamiltonians[storage]
        plain = compute_dos(hamiltonian, config, backend="gpu-sim")
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            checked = compute_dos(hamiltonian, config, backend="gpu-sim")
        assert sanitizer.findings == []
        assert np.array_equal(plain.density, checked.density)
        assert np.array_equal(plain.moments.mu, checked.moments.mu)
        assert plain.timing.modeled_seconds == checked.timing.modeled_seconds


cluster_configs = st.builds(
    KPMConfig,
    num_moments=st.integers(2, 12),
    num_random_vectors=st.integers(4, 8),  # >= the largest device count
    num_realizations=st.integers(1, 2),
    seed=st.integers(0, 50),
    block_size=st.just(32),
)


class TestClusterInvisibility:
    @given(
        config=cluster_configs,
        devices=st.integers(2, 3),
        fault_seed=st.integers(0, 100),
        rate=st.floats(0.0, 0.8),
        checkpoint_every=st.one_of(st.none(), st.integers(1, 4)),
    )
    @settings(max_examples=8, deadline=None)
    def test_sanitized_faulty_run_is_bit_identical_and_clean(
        self, hamiltonians, config, devices, fault_seed, rate, checkpoint_every
    ):
        scaled, _ = rescale_operator(hamiltonians["csr"])
        schedule = FaultSchedule.sample(
            fault_seed,
            devices,
            crash_rate=rate,
            straggler_rate=rate,
            transfer_rate=rate,
        )

        def run():
            driver = MultiGpuKPM(
                devices,
                fault_schedule=schedule,
                checkpoint_every=checkpoint_every,
            )
            data, _ = driver.compute_moments(scaled, config)
            return data

        plain = run()
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            checked = run()
        assert sanitizer.findings == []
        assert np.array_equal(plain.mu, checked.mu)
        assert np.array_equal(plain.per_realization, checked.per_realization)


class TestServeInvisibility:
    @given(requests=st.integers(1, 12), seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_sanitized_service_replay_is_identical_and_clean(self, requests, seed):
        from repro.serve import SpectralService, synthetic_trace

        def run():
            service = SpectralService(("gpu-sim",), cache_capacity=16)
            service.serve(synthetic_trace(requests, seed=seed))
            return service.metrics()

        plain = run()
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            checked = run()
        assert sanitizer.findings == []
        assert plain.modeled_served_seconds == checked.modeled_served_seconds
        assert plain.requests_total == checked.requests_total
        assert plain.cache_hits == checked.cache_hits
        assert plain.batches_total == checked.batches_total
