"""Property-based tests backing the static kernel verifier's axioms.

The verifier's proofs rest on two kinds of ground truth:

* the *partition axioms* — ``ctx.thread_range`` and ``plan.vectors_of``
  really do tile ``[0, total)`` with pairwise block-disjoint cells, so
  treating a partition cell as disjoint-by-construction (RA017) and
  exactly-once covering (RA019) is sound; and

* *hull soundness* — the affine hull the abstract interpreter computes
  for every device access really contains only in-extent indices, for
  any concrete in-domain valuation of the launch symbols.

Both are checked here against the runtime implementations and the
shipped block programs, under randomized geometries and valuations.
"""

import ast
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.kernelver import find_kernel_defs, interpret_mode
from repro.analysis.kernelver.interp import ref_extent
from repro.analysis.kernelver.values import Ref, dim_hull
from repro.errors import ValidationError
from repro.gpu import TESLA_C2050, Dim3, KernelStats
from repro.gpu.kernel import BlockContext
from repro.gpukpm import plan_grid

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"
KERNEL_MODULES = (
    SRC_REPRO / "gpukpm" / "kernels.py",
    SRC_REPRO / "gpukpm" / "conductivity_gpu.py",
)


def _block_context(grid: int, block: int, block_id: int) -> BlockContext:
    return BlockContext(
        grid_dim=Dim3(grid),
        block_dim=Dim3(block),
        block_idx=Dim3(block_id, 0, 0),
        shared_limit_bytes=48 * 1024,
        stats=KernelStats(),
    )


class TestThreadRangePartition:
    """The runtime partition behind ``cell(thread_range: total)``."""

    @given(
        total=st.integers(0, 4000),
        grid=st.integers(1, 9),
        block=st.integers(1, 70),
    )
    @settings(max_examples=80, deadline=None)
    def test_cells_disjoint_and_exact(self, total, grid, block):
        cells = [
            _block_context(grid, block, b).thread_range(total)
            for b in range(grid)
        ]
        counts = np.zeros(total, dtype=np.int64)
        for cell in cells:
            # in-range and duplicate-free within the block
            assert cell.size == np.unique(cell).size
            if cell.size:
                assert cell.min() >= 0 and cell.max() < total
            np.add.at(counts, cell, 1)
        # every item owned by exactly one block: disjoint + covering
        np.testing.assert_array_equal(counts, np.ones(total, dtype=np.int64))

    @given(
        total=st.integers(1, 2000),
        grid=st.integers(1, 9),
        block=st.integers(1, 70),
    )
    @settings(max_examples=60, deadline=None)
    def test_cells_are_sorted_strides(self, total, grid, block):
        # Each block's cell is strictly increasing — the grid-stride
        # loop never revisits an item.
        for b in range(grid):
            cell = _block_context(grid, block, b).thread_range(total)
            if cell.size > 1:
                assert (np.diff(cell) > 0).all()


class TestGridPlanPartition:
    """The runtime partition behind ``cell(vectors_of: total)``."""

    @given(
        vectors=st.integers(1, 5000),
        block_size=st.sampled_from((32, 64, 128, 256, 512, 1024)),
    )
    @settings(max_examples=60)
    def test_cells_disjoint_and_exact(self, vectors, block_size):
        plan = plan_grid(vectors, block_size, TESLA_C2050)
        seen = np.zeros(vectors, dtype=np.int64)
        for b in range(plan.num_blocks):
            cell = np.asarray(list(plan.vectors_of(b)), dtype=np.int64)
            assert cell.min() >= 0 and cell.max() < vectors
            np.add.at(seen, cell, 1)
        np.testing.assert_array_equal(seen, np.ones(vectors, dtype=np.int64))

    @given(
        vectors=st.integers(1, 5000),
        block_size=st.sampled_from((32, 64, 128, 256)),
    )
    @settings(max_examples=40)
    def test_out_of_range_block_rejected(self, vectors, block_size):
        plan = plan_grid(vectors, block_size, TESLA_C2050)
        with pytest.raises(ValidationError):
            plan.vectors_of(plan.num_blocks)


def _all_mode_results():
    """(kernel, mode, contract, result) for every shipped block program."""
    out = []
    for path in KERNEL_MODULES:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for kernel_def in find_kernel_defs(tree):
            assert kernel_def.contract is not None, kernel_def.kernel_name
            for mode in kernel_def.contract.modes:
                result = interpret_mode(
                    kernel_def.func, kernel_def.contract, mode, tree
                )
                out.append(
                    (kernel_def.kernel_name, mode.name, kernel_def.contract, result)
                )
    return out


class TestHullSoundness:
    """Concretized access hulls stay inside the declared extents.

    For random in-domain valuations (``Domain.sample``), every affine
    hull the interpreter computed for the shipped kernels evaluates to
    an index range inside ``[0, extent)`` — the concrete counterpart of
    the RA016 proof.
    """

    @given(seed=st.integers(0, 2**32 - 1), span=st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_shipped_kernel_hulls_in_extent(self, seed, span):
        rng = np.random.default_rng(seed)
        checked = 0
        for kernel, mode, contract, result in _all_mode_results():
            for access in result.accesses:
                extent = ref_extent(contract, Ref(access.param, access.field))
                if extent is None:
                    continue
                domain = access.domain if access.domain is not None else result.domain
                try:
                    valuation = domain.sample(rng, span=span)
                except ValidationError as exc:
                    # A loop symbol's concrete range is empty at this
                    # valuation: the access never executes — vacuous.
                    assert "empty concrete range" in str(exc)
                    continue
                for dim, ext in zip(access.dims, extent):
                    hull = dim_hull(dim, ext, domain)
                    assert hull is not None, (kernel, mode, access)
                    lo = hull[0].evaluate(valuation)
                    hi = hull[1].evaluate(valuation)
                    bound = ext.evaluate(valuation)
                    label = (kernel, mode, access.param, access.line)
                    assert lo <= hi + 1, label  # empty cells allowed
                    assert 0 <= lo, label
                    assert hi <= bound - 1, label
                    checked += 1
        assert checked > 100  # the sweep actually exercised the kernels
