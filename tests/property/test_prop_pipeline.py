"""Property-based tests of the pipeline contracts.

The harness's validity rests on two invariants that must hold for *every*
configuration, not just the ones unit tests pick:

1. the analytic estimators equal executed modeled times exactly;
2. work partitioning (multi-GPU, incremental refinement) never changes
   the numbers.

Hypothesis drives both across the configuration space at small sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import MultiGpuKPM, estimate_multigpu_seconds
from repro.gpu import TESLA_C2050
from repro.gpukpm import GpuKPM, estimate_gpu_kpm_seconds
from repro.kpm import KPMConfig, SpectralDensity, rescale_operator, stochastic_moments
from repro.lattice import cubic, tight_binding_hamiltonian


@pytest.fixture(scope="module")
def system():
    csr = tight_binding_hamiltonian(cubic(3), format="csr")
    scaled, _ = rescale_operator(csr)
    return csr, scaled


configs = st.builds(
    KPMConfig,
    num_moments=st.integers(1, 24),
    num_random_vectors=st.integers(1, 8),
    num_realizations=st.integers(1, 3),
    seed=st.integers(0, 1000),
    block_size=st.sampled_from((32, 64, 128, 1024)),
    precision=st.sampled_from(("double", "single")),
    vector_kind=st.sampled_from(("rademacher", "gaussian")),
)


class TestEstimatorContract:
    @given(config=configs)
    @settings(max_examples=25, deadline=None)
    def test_estimate_equals_run(self, system, config):
        csr, scaled = system
        runner = GpuKPM()
        _, report = runner.compute_moments(scaled, config)
        estimate = estimate_gpu_kpm_seconds(
            TESLA_C2050, csr.shape[0], config, nnz=scaled.nnz_stored
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)

    @given(config=configs, devices=st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_multigpu_estimate_equals_run(self, system, config, devices):
        csr, scaled = system
        if devices > config.total_vectors:
            return
        _, report = MultiGpuKPM(devices).compute_moments(scaled, config)
        estimate = estimate_multigpu_seconds(
            TESLA_C2050, csr.shape[0], config, devices, nnz=scaled.nnz_stored
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)


class TestPartitionInvariance:
    @given(config=configs, devices=st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_multigpu_moments_independent_of_device_count(
        self, system, config, devices
    ):
        _, scaled = system
        if devices > config.total_vectors:
            return
        reference = stochastic_moments(scaled, config)
        partitioned, _ = MultiGpuKPM(devices).compute_moments(scaled, config)
        np.testing.assert_allclose(partitioned.mu, reference.mu, atol=1e-5)

    @given(
        chunks=st.lists(st.integers(1, 6), min_size=1, max_size=5),
        seed=st.integers(0, 100),
        num_moments=st.integers(2, 16),
    )
    @settings(max_examples=20, deadline=None)
    def test_incremental_chunking_invariant(self, system, chunks, seed, num_moments):
        csr, _ = system
        total = sum(chunks)
        one_shot = SpectralDensity(csr, num_moments=num_moments, seed=seed)
        one_shot.add_vectors(total)
        stepwise = SpectralDensity(csr, num_moments=num_moments, seed=seed)
        for chunk in chunks:
            stepwise.add_vectors(chunk)
        # Same Philox streams; only the BLAS reduction order differs
        # between batchings, so agreement is to the ulp, not bit-exact.
        np.testing.assert_allclose(
            one_shot.moments().mu, stepwise.moments().mu, atol=1e-13
        )
