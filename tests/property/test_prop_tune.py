"""Property-based tests for the SpMV formats and the autotuner.

The tuner's whole premise is that storage format is a pure performance
knob: every block program executes the canonical contraction order of
``repro.sparse.sweep``, so dense, scalar CSR, vector CSR, and ELL must
produce *bit-identical* moments on both engines for arbitrary sparsity
patterns — and tuning decisions plus their persisted cache must be fully
deterministic.  Hypothesis drives all of it across random symmetric
operators.
"""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpukpm import GpuKPM
from repro.kpm import KPMConfig, rescale_operator, stochastic_moments
from repro.sparse import CSRMatrix, DenseOperator
from repro.tune import Autotuner, TuningCache


@st.composite
def symmetric_csr(draw, max_dim=10):
    """Random symmetric CSR matrices with a guaranteed nonzero diagonal."""
    dim = draw(st.integers(2, max_dim))
    density = draw(st.floats(0.1, 0.6))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    lower = np.where(
        rng.random((dim, dim)) < density, rng.standard_normal((dim, dim)), 0.0
    )
    dense = np.tril(lower, k=-1)
    # One guaranteed bond keeps the spectrum away from a pure multiple
    # of the identity (which has no well-defined KPM rescaling).
    dense[1, 0] = 1.0
    dense = dense + dense.T + np.eye(dim)
    return CSRMatrix.from_dense(dense)


configs = st.builds(
    KPMConfig,
    num_moments=st.integers(1, 12),
    num_random_vectors=st.integers(1, 3),
    seed=st.integers(0, 1000),
    precision=st.sampled_from(("double", "single")),
)


class TestFormatBitIdentity:
    @given(csr=symmetric_csr(), config=configs)
    @settings(max_examples=20, deadline=None)
    def test_gpu_formats_identical(self, csr, config):
        scaled, _ = rescale_operator(csr)
        tables = []
        for fmt, width in (
            ("dense", None),
            ("csr", None),
            ("csr-vector", 4),
            ("ell", None),
        ):
            kpm = GpuKPM(spmv_format=fmt, vector_width=width)
            moments, _ = kpm.compute_moments(scaled, config)
            tables.append(moments.mu)
        for table in tables[1:]:
            np.testing.assert_array_equal(table, tables[0])

    @given(csr=symmetric_csr(), config=configs)
    @settings(max_examples=20, deadline=None)
    def test_host_storages_identical(self, csr, config):
        scaled, _ = rescale_operator(csr)
        reference = stochastic_moments(scaled, config).mu
        as_ell = stochastic_moments(scaled.to_ell(), config).mu
        as_dense = stochastic_moments(
            DenseOperator(scaled.to_dense()), config
        ).mu
        np.testing.assert_array_equal(as_ell, reference)
        np.testing.assert_array_equal(as_dense, reference)

    @given(csr=symmetric_csr(), config=configs)
    @settings(max_examples=10, deadline=None)
    def test_tuned_run_matches_dense_run(self, csr, config):
        scaled, _ = rescale_operator(csr)
        dense_mu, _ = GpuKPM(spmv_format="dense").compute_moments(scaled, config)
        tuned_mu, _ = GpuKPM(tuner=Autotuner()).compute_moments(scaled, config)
        np.testing.assert_array_equal(tuned_mu.mu, dense_mu.mu)


class TestAutotunerDeterminism:
    @given(csr=symmetric_csr(), config=configs)
    @settings(max_examples=15, deadline=None)
    def test_independent_tuners_agree(self, csr, config):
        first = Autotuner().choose(csr, config)
        second = Autotuner().choose(csr, config)
        assert first == second

    @given(csr=symmetric_csr(), config=configs)
    @settings(max_examples=10, deadline=None)
    def test_cache_serialization_is_byte_stable(self, csr, config):
        a, b = Autotuner(), Autotuner()
        a.choose(csr, config)
        b.choose(csr, config)
        assert a.cache.to_json() == b.cache.to_json()
        restored = TuningCache.from_dict(json.loads(a.cache.to_json()))
        assert restored.to_json() == a.cache.to_json()
        assert restored.fingerprint() == a.cache.fingerprint()

    @given(csr=symmetric_csr(), config=configs)
    @settings(max_examples=10, deadline=None)
    def test_sweep_winner_is_choose_winner(self, csr, config):
        tuner = Autotuner()
        assert tuner.choose(csr, config) == tuner.sweep(csr, config)[0]
