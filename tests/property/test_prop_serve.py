"""Property tests: serve-layer responses are bit-identical to direct calls.

The service's core guarantee — coalescing and caching are pure routing,
never numerics — must hold for *any* configuration, not just the ones
the unit tests pick.  Hypothesis samples configs (moment counts, vector
counts, seeds, kernels, vector kinds) and operators, and asserts that
batch-mates and cache hits reproduce a fresh ``compute_dos`` bit for
bit on both the bit-identical backends (numpy) and the modeled GPU
pipeline (gpu-sim), whose reduction order differs from numpy's — which
is exactly why the service must never substitute one engine's moments
for another's request.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kpm import KPMConfig, compute_dos, local_dos
from repro.lattice import chain, square, tight_binding_hamiltonian
from repro.serve import (
    DoSRequest,
    LDoSRequest,
    SpectralService,
    TenantPolicy,
    check_equivalence,
    timed_trace,
)

OPERATORS = {
    "chain32": tight_binding_hamiltonian(chain(32)),
    "square6": tight_binding_hamiltonian(square(6)),
}


@st.composite
def kpm_configs(draw):
    return KPMConfig(
        num_moments=draw(st.sampled_from([8, 16, 32])),
        num_random_vectors=draw(st.integers(1, 6)),
        num_realizations=draw(st.integers(1, 2)),
        kernel=draw(st.sampled_from(["jackson", "lorentz", "dirichlet"])),
        vector_kind=draw(st.sampled_from(["rademacher", "gaussian"])),
        seed=draw(st.integers(0, 2**31)),
        num_energy_points=draw(st.sampled_from([64, 128])),
    )


class TestServeBitIdentity:
    @given(
        config=kpm_configs(),
        operator=st.sampled_from(sorted(OPERATORS)),
        backend=st.sampled_from(["numpy", "gpu-sim"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_coalesced_and_cached_match_compute_dos(
        self, config, operator, backend
    ):
        hamiltonian = OPERATORS[operator]
        direct = compute_dos(hamiltonian, config, backend=backend)

        service = SpectralService(backends=(backend,))
        batch = service.serve(
            [DoSRequest(hamiltonian, config, tag=str(i)) for i in range(3)]
        )
        [replay] = service.serve([DoSRequest(hamiltonian, config)])

        assert [r.source for r in batch] == ["computed", "coalesced", "coalesced"]
        assert replay.source == "cache"
        for response in [*batch, replay]:
            assert np.array_equal(response.values, direct.density)
            assert np.array_equal(response.energies, direct.energies)
            assert np.array_equal(response.moments.mu, direct.moments.mu)
            assert np.array_equal(
                response.moments.per_realization, direct.moments.per_realization
            )

    @given(
        config=kpm_configs(),
        operator=st.sampled_from(sorted(OPERATORS)),
        site=st.integers(0, 31),
    )
    @settings(max_examples=15, deadline=None)
    def test_ldos_matches_local_dos(self, config, operator, site):
        hamiltonian = OPERATORS[operator]
        energies, density = local_dos(hamiltonian, site, config)

        service = SpectralService(backends=("numpy",))
        responses = service.serve(
            [LDoSRequest(hamiltonian, site=site, config=config) for _ in range(2)]
        )
        for response in responses:
            assert np.array_equal(response.values, density)
            assert np.array_equal(response.energies, energies)

class TestPrefixClosedServing:
    """Tentpole property: a cached high-order entry serves any lower
    order bit-identically to a cold one-shot run at that order, and an
    in-place extension is bit-identical to a cold run at the higher
    order — for random ``(N_small < N_large)`` pairs, both kernels,
    both backends, and both trace and LDoS request kinds."""

    @given(
        config=kpm_configs(),
        operator=st.sampled_from(sorted(OPERATORS)),
        backend=st.sampled_from(["numpy", "gpu-sim"]),
        orders=st.tuples(st.integers(2, 48), st.integers(2, 48)).filter(
            lambda pair: pair[0] != pair[1]
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_prefix_hit_matches_cold_one_shot(
        self, config, operator, backend, orders
    ):
        n_small, n_large = sorted(orders)
        hamiltonian = OPERATORS[operator]
        small = config.with_updates(num_moments=n_small)

        service = SpectralService(backends=(backend,))
        service.serve(
            [DoSRequest(hamiltonian, config.with_updates(num_moments=n_large))]
        )
        [response] = service.serve([DoSRequest(hamiltonian, small)])

        assert response.source == "cache"
        assert response.num_moments_served == n_small
        assert service.metrics().cache_prefix_hits == 1
        assert service.metrics().engine_dispatches == 1

        direct = compute_dos(hamiltonian, small, backend=backend)
        assert np.array_equal(response.moments.mu, direct.moments.mu)
        assert np.array_equal(
            response.moments.per_realization, direct.moments.per_realization
        )
        assert np.array_equal(response.values, direct.density)

    @given(
        config=kpm_configs(),
        operator=st.sampled_from(sorted(OPERATORS)),
        backend=st.sampled_from(["numpy", "gpu-sim"]),
        orders=st.tuples(st.integers(2, 48), st.integers(2, 48)).filter(
            lambda pair: pair[0] != pair[1]
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_extension_matches_cold_one_shot(
        self, config, operator, backend, orders
    ):
        n_small, n_large = sorted(orders)
        hamiltonian = OPERATORS[operator]
        large = config.with_updates(num_moments=n_large)

        service = SpectralService(backends=(backend,))
        service.serve(
            [DoSRequest(hamiltonian, config.with_updates(num_moments=n_small))]
        )
        [response] = service.serve([DoSRequest(hamiltonian, large)])

        assert response.source == "extended"
        assert response.num_moments_served == n_large

        direct = compute_dos(hamiltonian, large, backend=backend)
        assert np.array_equal(response.moments.mu, direct.moments.mu)
        assert np.array_equal(
            response.moments.per_realization, direct.moments.per_realization
        )
        assert np.array_equal(response.values, direct.density)

    @given(
        config=kpm_configs(),
        operator=st.sampled_from(sorted(OPERATORS)),
        site=st.integers(0, 31),
        orders=st.tuples(st.integers(2, 48), st.integers(2, 48)).filter(
            lambda pair: pair[0] != pair[1]
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_ldos_prefix_and_extension_match_local_dos(
        self, config, operator, site, orders
    ):
        n_small, n_large = sorted(orders)
        hamiltonian = OPERATORS[operator]
        small = config.with_updates(num_moments=n_small)
        large = config.with_updates(num_moments=n_large)

        service = SpectralService(backends=("numpy",))
        service.serve([LDoSRequest(hamiltonian, site=site, config=large)])
        [low] = service.serve([LDoSRequest(hamiltonian, site=site, config=small)])
        assert low.source == "cache"
        energies, density = local_dos(hamiltonian, site, small)
        assert np.array_equal(low.values, density)
        assert np.array_equal(low.energies, energies)

        fresh = SpectralService(backends=("numpy",))
        fresh.serve([LDoSRequest(hamiltonian, site=site, config=small)])
        [ext] = fresh.serve([LDoSRequest(hamiltonian, site=site, config=large)])
        assert ext.source == "extended"
        energies, density = local_dos(hamiltonian, site, large)
        assert np.array_equal(ext.values, density)
        assert np.array_equal(ext.energies, energies)


class TestGatewayEquivalence:
    """Serving-v2 property: admission, EDF ordering, elastic capacity,
    and overload degradation may change *when* (or whether) a request is
    answered — never *what* the answer is.  For random multi-tenant
    timed traces on both bit-exact backends, every full-precision
    gateway answer must be bit-identical to a serial FIFO reference run,
    every degraded answer a bit-identical prefix of it, and every
    refusal valueless (:func:`repro.serve.check_equivalence`)."""

    @given(
        seed=st.integers(0, 2**31),
        backend=st.sampled_from(["numpy", "gpu-sim"]),
        num_requests=st.integers(4, 18),
        deadline_slack=st.sampled_from([0.3, 1.0, 50.0]),
        rate=st.sampled_from([0.2, 1.0, 100.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_gateway_equivalent_to_serial_fifo(
        self, seed, backend, num_requests, deadline_slack, rate
    ):
        arrivals = timed_trace(
            num_requests,
            seed=seed,
            duration=6.0,
            deadline_slack=deadline_slack,
            flash_crowds=1,
            flash_multiplier=6.0,
        )
        report = check_equivalence(
            arrivals,
            backend=backend,
            default_policy=TenantPolicy(rate=rate, burst=2.0 * rate),
        )
        assert report.ok, "\n".join(report.mismatches)
        assert report.total == num_requests
        assert (
            report.served + report.degraded + report.rejected + report.cancelled
            == num_requests
        )

    @given(seed=st.integers(0, 2**31), num_requests=st.integers(4, 14))
    @settings(max_examples=10, deadline=None)
    def test_gateway_replay_is_deterministic(self, seed, num_requests):
        arrivals = timed_trace(
            num_requests, seed=seed, duration=4.0, deadline_slack=0.5
        )

        def run():
            report = check_equivalence(
                arrivals,
                backend="gpu-sim",
                default_policy=TenantPolicy(rate=0.5, burst=1.0),
            )
            return (
                report.served,
                report.degraded,
                report.rejected,
                report.cancelled,
                report.mismatches,
            )

        assert run() == run()


class TestServeDeterminism:
    @given(config=kpm_configs(), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_replaying_a_trace_is_deterministic(self, config, data):
        hamiltonian = OPERATORS["chain32"]
        tags = data.draw(st.lists(st.sampled_from("abc"), min_size=1, max_size=6))

        def run():
            service = SpectralService(backends=("numpy",))
            responses = service.serve(
                [DoSRequest(hamiltonian, config, tag=t) for t in tags]
            )
            return [
                (r.tag, r.source, r.batch_id, r.values.tobytes()) for r in responses
            ]

        assert run() == run()
