"""Integration tests against the committed perf baseline BENCH_PR4.json.

This is the CI gate itself: re-record the baseline workload and compare.
The negative test inflates one span's modeled cost beyond tolerance and
asserts the gate catches it — proving the pass is meaningful.
"""

import json
from pathlib import Path

import pytest

from repro.bench.runner import baseline_record
from repro.obs import RunRecord, compare_records, load_run_record
from repro.obs.workloads import serve_prefix_run, smoke_run

BASELINE_PATH = Path(__file__).resolve().parents[2] / "BENCH_PR4.json"
PREFIX_BASELINE_PATH = Path(__file__).resolve().parents[2] / "BENCH_PR7.json"


@pytest.fixture(scope="module")
def baseline():
    return load_run_record(BASELINE_PATH)


@pytest.fixture(scope="module")
def current():
    return baseline_record()


class TestCommittedBaseline:
    def test_baseline_file_is_canonical(self, baseline):
        """The committed file must be byte-identical to its own re-export."""
        text = BASELINE_PATH.read_text(encoding="ascii")
        assert text == baseline.to_json() + "\n"

    def test_compare_passes(self, baseline, current):
        result = compare_records(baseline, current)
        assert result.ok, result.summary()

    def test_recorded_fingerprint_matches_committed(self, baseline, current):
        """The workload is deterministic, so a re-record is not merely
        within tolerance but identical."""
        assert current.fingerprint() == baseline.fingerprint()

    def test_smoke_subset_passes_with_bench_ignored(self, baseline):
        result = compare_records(baseline, smoke_run(), ignore=("bench.*",))
        assert result.ok, result.summary()

    def test_baseline_covers_the_three_subsystems(self, baseline):
        labels = {span.label for root in baseline.spans for span in root.walk()}
        assert {"workload.gpu", "workload.cluster", "workload.serve"} <= labels
        assert {"gpu.pipeline", "cluster.run", "serve.flush"} <= labels
        gauges = baseline.metrics.gauges
        assert any(name.startswith("bench.fig5.") for name in gauges)
        assert any(name.startswith("bench.fig7.") for name in gauges)
        assert any(name.startswith("bench.fig8.") for name in gauges)


class TestPrefixCacheBaseline:
    """BENCH_PR7.json: the prefix-vs-exact cache A/B gate."""

    @pytest.fixture(scope="class")
    def prefix_baseline(self):
        return load_run_record(PREFIX_BASELINE_PATH)

    @pytest.fixture(scope="class")
    def prefix_current(self):
        return serve_prefix_run()

    def test_baseline_file_is_canonical(self, prefix_baseline):
        text = PREFIX_BASELINE_PATH.read_text(encoding="ascii")
        assert text == prefix_baseline.to_json() + "\n"

    def test_recorded_fingerprint_matches_committed(
        self, prefix_baseline, prefix_current
    ):
        assert prefix_current.fingerprint() == prefix_baseline.fingerprint()

    def test_prefix_hit_rate_strictly_beats_exact(self, prefix_baseline):
        gauges = prefix_baseline.metrics.gauges
        assert (
            gauges["serve_prefix.cache_hit_rate"]
            > gauges["serve_exact.cache_hit_rate"]
        )
        assert gauges["serve_ab.hit_rate_advantage"] > 0.0
        # The prefix cache also wins on modeled throughput, not just hits.
        assert (
            gauges["serve_prefix.modeled_speedup"]
            > gauges["serve_exact.modeled_speedup"]
        )

    def test_compare_passes(self, prefix_baseline, prefix_current):
        result = compare_records(prefix_baseline, prefix_current)
        assert result.ok, result.summary()

    def test_hit_rate_drop_fails_the_gate(self, prefix_baseline, prefix_current):
        """Negative test: the gate is directional — a lower hit rate must
        fail even though every modeled cost is unchanged or better."""
        degraded = RunRecord.from_dict(prefix_current.to_dict())
        degraded.metrics.gauges["serve_prefix.cache_hit_rate"] = (
            prefix_baseline.metrics.gauges["serve_exact.cache_hit_rate"] * 0.5
        )
        result = compare_records(prefix_baseline, degraded)
        assert not result.ok
        assert "serve_prefix.cache_hit_rate" in {
            delta.label for delta in result.failures
        }


class TestNegativeGate:
    def test_inflated_span_cost_fails(self, baseline):
        """Required negative test: inflate gpu.moments beyond 10% and the
        gate must fail on exactly that label."""
        data = json.loads(BASELINE_PATH.read_text(encoding="ascii"))

        def inflate(span):
            if span["label"] == "gpu.moments":
                span["end"] += (span["end"] - span["start"]) * 0.25
            for child in span["children"]:
                inflate(child)

        for span in data["spans"]:
            inflate(span)
        inflated = RunRecord.from_dict(data)
        result = compare_records(baseline, inflated, tolerance=0.10)
        assert not result.ok
        assert "gpu.moments" in {delta.label for delta in result.failures}

    def test_vanished_span_fails(self, baseline, current):
        pruned = RunRecord.from_dict(current.to_dict())
        for root in pruned.spans:
            for span in root.walk():
                span.children = [
                    child for child in span.children if child.label != "serve.batch"
                ]
        result = compare_records(baseline, pruned)
        assert not result.ok
        assert any(delta.status == "missing" for delta in result.failures)
