"""Integration: all execution backends produce the same physics.

The determinism contract (Philox streams keyed by (seed, s, r)) means
the NumPy reference, the CPU-model backend, the GPU simulator, and the
multi-GPU cluster must agree on the moments to floating-point
reduction-order tolerance — and therefore on every derived quantity.
"""

import numpy as np
import pytest

from repro.cluster import MultiGpuKPM
from repro.kpm import KPMConfig, compute_dos, rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian

BACKENDS = ("numpy", "cpu-model", "gpu-sim")


@pytest.fixture(scope="module")
def hamiltonian():
    return tight_binding_hamiltonian(cubic(5), format="csr")


@pytest.fixture(scope="module")
def config():
    return KPMConfig(
        num_moments=48,
        num_random_vectors=8,
        num_realizations=2,
        seed=21,
        block_size=32,
    )


@pytest.fixture(scope="module")
def results(hamiltonian, config):
    return {
        backend: compute_dos(hamiltonian, config, backend=backend)
        for backend in BACKENDS
    }


class TestMomentParity:
    def test_all_backends_same_moments(self, results):
        reference = results["numpy"].moments.mu
        for backend in BACKENDS[1:]:
            np.testing.assert_allclose(
                results[backend].moments.mu, reference, atol=1e-12,
                err_msg=f"backend {backend} diverged",
            )

    def test_all_backends_same_density(self, results):
        reference = results["numpy"].density
        for backend in BACKENDS[1:]:
            np.testing.assert_allclose(results[backend].density, reference, atol=1e-10)

    def test_multigpu_matches_reference(self, hamiltonian, config, results):
        scaled, _ = rescale_operator(
            hamiltonian, method=config.bounds_method, epsilon=config.epsilon
        )
        for devices in (2, 5):
            data, _ = MultiGpuKPM(devices).compute_moments(scaled, config)
            np.testing.assert_allclose(
                data.mu, results["numpy"].moments.mu, atol=1e-12
            )


class TestTimingReports:
    def test_hardware_backends_report_modeled_time(self, results):
        assert results["numpy"].timing.modeled_seconds is None
        assert results["cpu-model"].timing.modeled_seconds > 0
        assert results["gpu-sim"].timing.modeled_seconds > 0

    def test_device_names(self, results):
        assert "Core i7" in results["cpu-model"].timing.device
        assert "Tesla" in results["gpu-sim"].timing.device


class TestStorageParity:
    def test_dense_and_csr_same_moments(self, config):
        dense = tight_binding_hamiltonian(cubic(4), format="dense")
        sparse = tight_binding_hamiltonian(cubic(4), format="csr")
        r_dense = compute_dos(dense, config, backend="gpu-sim")
        r_sparse = compute_dos(sparse, config, backend="gpu-sim")
        np.testing.assert_allclose(
            r_dense.moments.mu, r_sparse.moments.mu, atol=1e-11
        )

    def test_dense_priced_higher_than_csr(self, config):
        dense = tight_binding_hamiltonian(cubic(4), format="dense")
        sparse = tight_binding_hamiltonian(cubic(4), format="csr")
        t_dense = compute_dos(dense, config, backend="gpu-sim").timing.modeled_seconds
        t_sparse = compute_dos(sparse, config, backend="gpu-sim").timing.modeled_seconds
        assert t_dense > t_sparse
