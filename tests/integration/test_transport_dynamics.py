"""Integration: transport and dynamics cross-module consistency.

These tests tie the extension modules to each other and to exact
references: the survival amplitude from the Chebyshev propagator must be
the Fourier transform of the KPM local DoS; conductivity must respect
lattice symmetry and the fluctuation-dissipation temperature limits.
"""

import numpy as np
import pytest

from repro.kpm import (
    KPMConfig,
    conductivity_profile,
    evolve_state,
    exact_moments,
    finite_temperature_conductivity,
    kubo_greenwood_conductivity,
    lattice_current_operator,
    local_dos,
    rescale_operator,
    stochastic_conductivity_moments,
)
from repro.lattice import chain, square, tight_binding_hamiltonian


class TestSurvivalAmplitudeVsLocalDos:
    """C(t) = <psi0|psi(t)> equals the Fourier transform of the LDoS.

    Exact relation: C(t) = integral rho_0(E) exp(-i E t) dE where
    rho_0 is the local DoS of the start site.  Both sides come from
    this library through entirely different code paths (time recursion
    with Bessel coefficients vs moment recursion + DCT + quadrature).
    """

    def test_chain_survival(self):
        hamiltonian = tight_binding_hamiltonian(chain(128), format="csr")
        psi0 = np.zeros(128)
        site = 64
        psi0[site] = 1.0

        config = KPMConfig(num_moments=512, num_energy_points=4096)
        energies, ldos = local_dos(hamiltonian, site, config)

        for time in (0.5, 2.0, 5.0):
            evolved = evolve_state(hamiltonian, psi0, time)
            survival = np.vdot(psi0, evolved)
            fourier = np.trapezoid(ldos * np.exp(-1j * energies * time), energies)
            assert survival == pytest.approx(fourier, abs=2e-3)

    def test_free_particle_bessel_identity(self):
        # On the infinite chain C(t) = J_0(2t) exactly (Bessel function).
        from scipy.special import jv

        hamiltonian = tight_binding_hamiltonian(chain(512), format="csr")
        psi0 = np.zeros(512)
        psi0[256] = 1.0
        for time in (1.0, 3.0, 6.0):
            evolved = evolve_state(hamiltonian, psi0, time)
            survival = np.vdot(psi0, evolved)
            assert survival.real == pytest.approx(jv(0, 2.0 * time), abs=1e-6)
            assert survival.imag == pytest.approx(0.0, abs=1e-6)


class TestTransportSymmetry:
    def test_square_lattice_isotropic(self):
        # sigma_xx == sigma_yy on the square lattice by symmetry.
        lattice = square(12)
        hamiltonian = tight_binding_hamiltonian(lattice, format="csr")
        config = KPMConfig(num_moments=24, num_random_vectors=8, seed=3)
        energies = np.array([-1.0, 0.5])
        scaled, rescaling = rescale_operator(hamiltonian)
        sigma = {}
        for axis in (0, 1):
            current = lattice_current_operator(lattice, axis)
            mu_nm = stochastic_conductivity_moments(scaled, current, config)
            sigma[axis] = conductivity_profile(mu_nm, rescaling, energies)
        # Same magnitude; stochastic vectors are shared, so agreement is
        # limited only by the lattice's finite-size anisotropy.
        np.testing.assert_allclose(sigma[0], sigma[1], rtol=0.15)


class TestFiniteTemperature:
    @pytest.fixture(scope="class")
    def system(self):
        lattice = chain(96)
        hamiltonian = tight_binding_hamiltonian(lattice, format="csr")
        current = lattice_current_operator(lattice, 0)
        scaled, rescaling = rescale_operator(hamiltonian)
        config = KPMConfig(num_moments=32, num_random_vectors=12, seed=1)
        mu_nm = stochastic_conductivity_moments(scaled, current, config)
        return mu_nm, rescaling

    def test_zero_temperature_limit(self, system):
        mu_nm, rescaling = system
        sharp = finite_temperature_conductivity(mu_nm, rescaling, 0.3, 0.0)
        narrow = finite_temperature_conductivity(
            mu_nm, rescaling, 0.3, 0.02, num_points=2048
        )
        assert narrow == pytest.approx(sharp, rel=0.05)

    def test_temperature_smooths(self, system):
        # At high T the window averages the whole band: values at
        # different chemical potentials converge toward each other.
        mu_nm, rescaling = system
        cold_a = finite_temperature_conductivity(mu_nm, rescaling, 0.0, 0.05)
        cold_b = finite_temperature_conductivity(mu_nm, rescaling, 1.5, 0.05)
        warm_a = finite_temperature_conductivity(mu_nm, rescaling, 0.0, 2.0)
        warm_b = finite_temperature_conductivity(mu_nm, rescaling, 1.5, 2.0)
        assert abs(warm_a - warm_b) < abs(cold_a - cold_b)

    def test_negative_temperature_rejected(self, system):
        mu_nm, rescaling = system
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            finite_temperature_conductivity(mu_nm, rescaling, 0.0, -1.0)

    def test_positive(self, system):
        mu_nm, rescaling = system
        value = finite_temperature_conductivity(mu_nm, rescaling, 0.0, 0.5)
        assert value > 0
