"""Integration: the reproduced figures land in the paper's bands.

These tests encode the *shape claims* of the paper's evaluation section
(who wins, by roughly what factor, where trends bend) as assertions over
the harness output — the reproduction's headline contract.
"""

import numpy as np
import pytest

from repro.bench import fig5, fig6, fig7, fig8


class TestFig5Band:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5()

    def test_speedup_in_paper_band(self, result):
        # Paper: "The speedup keeps 3.5 times for all the cases."
        for speedup in result.column("speedup"):
            assert 3.0 <= speedup <= 4.0

    def test_speedup_flat_over_n(self, result):
        speedups = result.column("speedup")
        assert max(speedups) - min(speedups) < 0.25

    def test_times_scale_linearly_with_n(self, result):
        cpu = result.column("cpu_seconds")
        # N doubles each step; times must too (within 10%).
        for a, b in zip(cpu, cpu[1:]):
            assert b == pytest.approx(2 * a, rel=0.1)


class TestFig6Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6(num_random_vectors=12, num_realizations=2, num_energy_points=512)

    def test_band_support(self, result):
        # Cubic lattice band is [-6, 6]; Gerschgorin+margin cannot exceed 6.06.
        energies = np.array(result.column("energy"))
        assert energies[0] > -6.3
        assert energies[-1] < 6.3

    def test_higher_n_resolves_band_edge_more_sharply(self, result):
        # Resolution metric: the sharper truncation tracks the DoS fall-off
        # beyond the band edge with less broadening leakage.
        energies = np.array(result.column("energy"))
        low_n = np.array(result.column("dos_N256"))
        high_n = np.array(result.column("dos_N512"))
        outside = np.abs(energies) > 6.02
        assert high_n[outside].max(initial=0.0) <= low_n[outside].max(initial=0.0) + 1e-9

    def test_higher_n_is_spikier(self, result):
        # The 10^3 lattice spectrum is highly degenerate; doubling N
        # resolves individual degenerate levels as spikes — exactly the
        # "higher resolution" the paper's Fig. 6 demonstrates.  Total
        # variation is the spikiness measure.
        low_n = np.array(result.column("dos_N256"))
        high_n = np.array(result.column("dos_N512"))
        assert np.abs(np.diff(high_n)).sum() > 1.3 * np.abs(np.diff(low_n)).sum()

    def test_integrated_dos_agrees(self, result):
        # Pointwise the curves differ (resolution), but the cumulative
        # spectral weight must match everywhere.
        energies = np.array(result.column("energy"))
        low_n = np.array(result.column("dos_N256"))
        high_n = np.array(result.column("dos_N512"))
        widths = np.diff(energies)
        cdf_low = np.cumsum(0.5 * (low_n[1:] + low_n[:-1]) * widths)
        cdf_high = np.cumsum(0.5 * (high_n[1:] + high_n[:-1]) * widths)
        assert np.max(np.abs(cdf_low - cdf_high)) < 0.02


class TestFig7Band:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7()

    def test_speedup_rises_with_n(self, result):
        speedups = result.column("speedup")
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_final_speedup_near_four(self, result):
        # Paper: "the speedup increases to almost 4 times."
        assert 3.4 <= result.column("speedup")[-1] <= 4.3

    def test_first_speedup_lower(self, result):
        speedups = result.column("speedup")
        assert speedups[0] < speedups[-1] - 0.5


class TestFig8Band:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8()

    def test_gpu_always_wins_by_3x_plus(self, result):
        for speedup in result.column("speedup"):
            assert speedup >= 3.0

    def test_speedup_near_four_at_scale(self, result):
        # Paper: "almost four times faster performance than the CPU version."
        for speedup in result.column("speedup")[1:]:
            assert 3.5 <= speedup <= 4.7

    def test_cpu_grows_superquadratically(self, result):
        cpu = result.column("cpu_seconds")
        # D doubles: pure O(D^2) would give 4x; the cache cliff gives more
        # somewhere in the sweep.
        ratios = [b / a for a, b in zip(cpu, cpu[1:])]
        assert max(ratios) > 4.3

    def test_gpu_stays_quadratic(self, result):
        # Paper: "the execution time of the GPU version does not increase
        # more than the complexity O(H_SIZE^2)."
        gpu = result.column("gpu_seconds")
        for a, b in zip(gpu, gpu[1:]):
            assert b <= 4.3 * a
