"""Integration: KPM numerics against exact diagonalization and analytics.

These are the accuracy anchors of DESIGN.md §5: the reproduction's
physics must be right before its performance claims mean anything.
"""

import numpy as np
import pytest

from repro.ed import broadened_dos, exact_eigenvalues
from repro.kpm import (
    KPMConfig,
    compute_dos,
    dos_from_moments,
    exact_moments,
    jackson_resolution,
    rescale_operator,
)
from repro.lattice import (
    anderson_onsite_energies,
    chain,
    cubic,
    honeycomb_edges,
    hamiltonian_from_edges,
    square,
    tight_binding_hamiltonian,
)


class TestChainAnalytic:
    """1D chain: rho(E) = 1/(pi sqrt(4 - E^2)) in the thermodynamic limit."""

    def test_exact_moment_dos(self):
        h = tight_binding_hamiltonian(chain(1024), format="csr")
        scaled, rescaling = rescale_operator(h)
        mu = exact_moments(scaled, 512)
        energies, density = dos_from_moments(mu, rescaling, num_points=2048)
        mask = np.abs(energies) < 1.6
        analytic = 1.0 / (np.pi * np.sqrt(4.0 - energies[mask] ** 2))
        np.testing.assert_allclose(density[mask], analytic, atol=0.01)

    def test_stochastic_dos(self):
        h = tight_binding_hamiltonian(chain(1024), format="csr")
        config = KPMConfig(num_moments=256, num_random_vectors=24, seed=11)
        result = compute_dos(h, config)
        mask = np.abs(result.energies) < 1.5
        analytic = 1.0 / (np.pi * np.sqrt(4.0 - result.energies[mask] ** 2))
        # Tolerance: Jackson broadening bias of the curved 1/sqrt profile
        # dominates the stochastic noise (~1/sqrt(R*D) ~ 0.006).
        np.testing.assert_allclose(result.density[mask], analytic, atol=0.05)

    def test_van_hove_edges_enhanced(self):
        # The 1D DoS diverges at the band edges; the KPM density near
        # +-2 must greatly exceed the band-center value.
        h = tight_binding_hamiltonian(chain(1024), format="csr")
        config = KPMConfig(num_moments=256, num_random_vectors=16, seed=0)
        result = compute_dos(h, config)
        center = result.evaluate(np.array([0.0]))[0]
        edge = result.evaluate(np.array([1.95]))[0]
        assert edge > 2.5 * center


class TestCubicAgainstED:
    """The paper's 10^3 workload, shrunk to 6^3 for exact diagonalization."""

    @pytest.fixture(scope="class")
    def setup(self):
        h = tight_binding_hamiltonian(cubic(6), format="csr")
        eigenvalues = exact_eigenvalues(h)
        config = KPMConfig(num_moments=128, num_random_vectors=24, seed=5)
        result = compute_dos(h, config)
        return eigenvalues, result

    def test_matches_broadened_exact_spectrum(self, setup):
        eigenvalues, result = setup
        width = jackson_resolution(
            result.config.num_moments, result.rescaling.scale
        )
        mask = np.abs(result.energies) < 5.5
        reference = broadened_dos(eigenvalues, result.energies[mask], width)
        # The Jackson kernel is only approximately the Gaussian used by
        # broadened_dos, so allow a modest pointwise band plus a tight
        # mean-error band.
        assert np.max(np.abs(result.density[mask] - reference)) < 0.1
        assert np.mean(np.abs(result.density[mask] - reference)) < 0.015

    def test_support_matches_band(self, setup):
        eigenvalues, result = setup
        # Density outside the band (plus resolution) must be negligible.
        outside = np.abs(result.energies) > 6.0 + 3 * result.energy_resolution()
        if outside.any():
            assert np.max(np.abs(result.density[outside])) < 5e-3

    def test_integral_one(self, setup):
        _, result = setup
        assert result.integrate() == pytest.approx(1.0, abs=0.01)


class TestSquareLatticeVanHove:
    def test_log_singularity_at_band_center(self):
        # 2D square lattice has a log van Hove peak at E=0.
        h = tight_binding_hamiltonian(square(40), format="csr")
        config = KPMConfig(num_moments=128, num_random_vectors=16, seed=3)
        result = compute_dos(h, config)
        center = result.evaluate(np.array([0.0]))[0]
        shoulder = result.evaluate(np.array([2.0]))[0]
        assert center > 1.5 * shoulder


class TestHoneycombDirac:
    def test_dos_vanishes_at_dirac_point(self):
        num_sites, i, j = honeycomb_edges(16, 16, periodic=True)
        h = hamiltonian_from_edges(num_sites, i, j, format="csr")
        config = KPMConfig(num_moments=128, num_random_vectors=16, seed=4)
        result = compute_dos(h, config)
        dirac = result.evaluate(np.array([0.0]))[0]
        bulk = result.evaluate(np.array([1.0]))[0]
        assert dirac < 0.5 * bulk


class TestAndersonDisorder:
    def test_band_broadens_with_disorder(self):
        lattice = cubic(6)
        clean = tight_binding_hamiltonian(lattice, format="csr")
        eps = anderson_onsite_energies(lattice, 6.0, seed=9)
        dirty = tight_binding_hamiltonian(lattice, onsite=eps, format="csr")
        config = KPMConfig(num_moments=96, num_random_vectors=16, seed=2)
        clean_result = compute_dos(clean, config)
        dirty_result = compute_dos(dirty, config)
        # Disorder pushes spectral weight beyond the clean band edge.
        assert dirty_result.energies[-1] > clean_result.energies[-1]
        tail = dirty_result.evaluate(np.array([6.5]))[0]
        assert tail > 1e-4

    def test_disordered_dos_still_normalized(self):
        lattice = cubic(5)
        eps = anderson_onsite_energies(lattice, 4.0, seed=1)
        h = tight_binding_hamiltonian(lattice, onsite=eps, format="csr")
        result = compute_dos(h, KPMConfig(num_moments=96, num_random_vectors=16, seed=0))
        assert result.integrate() == pytest.approx(1.0, abs=0.02)


class TestMomentConvergenceRate:
    def test_stochastic_error_shrinks_like_sqrt_r(self):
        from repro.kpm import moment_convergence_study

        h = tight_binding_hamiltonian(cubic(4), format="csr")
        scaled, _ = rescale_operator(h)
        points = moment_convergence_study(
            scaled, [4, 64], num_moments=32, seed=0
        )
        # R x16 should shrink the RMS error by ~4; accept any factor > 2.
        assert points[0].moment_rms_error > 2.0 * points[1].moment_rms_error
