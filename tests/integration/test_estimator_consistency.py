"""Integration: analytic estimators equal executed modeled times.

This is the load-bearing property of the harness (DESIGN.md §5,
functional-sampling note): the figures are produced by the analytic
estimators at full paper parameters, which is only valid because the
estimators are *exact* for the simulator's launch schedule.  These tests
sweep the parameter grid at executable sizes and require exact (to
rounding) agreement.
"""

import pytest

from repro.cluster import MultiGpuKPM, estimate_multigpu_seconds
from repro.cpu import CORE_I7_930, CpuModelEngine, estimate_cpu_kpm_seconds
from repro.gpu import TESLA_C2050, GTX_580
from repro.gpukpm import GpuKPM, estimate_gpu_kpm_seconds
from repro.kpm import KPMConfig, rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian


def scaled(format):
    h = tight_binding_hamiltonian(cubic(4), format=format)
    op, _ = rescale_operator(h)
    return h, op


PARAM_GRID = [
    dict(num_moments=8, num_random_vectors=4, num_realizations=1, block_size=32),
    dict(num_moments=33, num_random_vectors=7, num_realizations=3, block_size=64),
    dict(num_moments=64, num_random_vectors=16, num_realizations=2, block_size=128),
    dict(num_moments=17, num_random_vectors=5, num_realizations=2, block_size=512),
]


class TestGpuEstimatorExactness:
    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_csr(self, params):
        h, op = scaled("csr")
        config = KPMConfig(seed=1, **params)
        _, report = GpuKPM().compute_moments(op, config)
        estimate = estimate_gpu_kpm_seconds(
            TESLA_C2050, h.shape[0], config, nnz=h.nnz_stored
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)

    @pytest.mark.parametrize("params", PARAM_GRID[:2])
    def test_dense(self, params):
        h, op = scaled("dense")
        config = KPMConfig(seed=1, **params)
        _, report = GpuKPM().compute_moments(op, config)
        estimate = estimate_gpu_kpm_seconds(TESLA_C2050, h.shape[0], config)
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)

    def test_other_device_spec(self):
        h, op = scaled("csr")
        config = KPMConfig(num_moments=16, num_random_vectors=4, block_size=32)
        _, report = GpuKPM(GTX_580).compute_moments(op, config)
        estimate = estimate_gpu_kpm_seconds(GTX_580, h.shape[0], config, nnz=h.nnz_stored)
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)


class TestCpuEstimatorExactness:
    @pytest.mark.parametrize("params", PARAM_GRID[:3])
    def test_csr(self, params):
        h, op = scaled("csr")
        config = KPMConfig(seed=1, **params)
        _, report = CpuModelEngine().compute_moments(op, config)
        estimate = estimate_cpu_kpm_seconds(
            CORE_I7_930, h.shape[0], config, nnz=h.nnz_stored
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)


class TestMultiGpuEstimatorExactness:
    @pytest.mark.parametrize("devices", [1, 2, 3, 4])
    def test_matches_run(self, devices):
        h, op = scaled("csr")
        config = KPMConfig(
            num_moments=16, num_random_vectors=8, num_realizations=1, block_size=32
        )
        _, report = MultiGpuKPM(devices).compute_moments(op, config)
        estimate = estimate_multigpu_seconds(
            TESLA_C2050, h.shape[0], config, devices, nnz=h.nnz_stored
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)
