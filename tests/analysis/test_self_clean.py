"""The library must pass its own contract checker with zero findings.

This is the acceptance gate of the checker itself: every rule enabled,
no baseline, scanned exactly as CI runs it.
"""

from pathlib import Path

from repro.analysis import AnalysisConfig, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_is_clean():
    report = run_analysis([REPO_ROOT / "src" / "repro"], AnalysisConfig())
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.files_checked > 50


def test_shipped_baseline_is_empty():
    # The repo ships an empty ratchet file: new findings can be accepted
    # temporarily, but the tree starts debt-free.
    import json

    baseline = json.loads((REPO_ROOT / "analysis-baseline.json").read_text())
    assert baseline == {"version": 1, "entries": {}}
