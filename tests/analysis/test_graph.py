"""Golden tests for the project graph export and the graph API itself.

``fixtures_graph/pkg`` is a four-module package exercising every import
flavour the collector distinguishes: eager absolute, eager relative,
TYPE_CHECKING-only, and lazy (function-body).  The JSON export is pinned
structurally — any change to the schema or the resolver shows up here.
"""

import json
from pathlib import Path

from repro.analysis.cli import load_project
from repro.analysis.graph import GRAPH_JSON_VERSION, ProjectGraph

PKG = Path(__file__).parent / "fixtures_graph" / "pkg"

GOLDEN = {
    "version": GRAPH_JSON_VERSION,
    "modules": [
        {"name": "pkg", "path": "__init__.py", "layer": "__init__", "imports": []},
        {"name": "pkg.base", "path": "base.py", "layer": "base", "imports": []},
        {
            "name": "pkg.middle",
            "path": "middle.py",
            "layer": "middle",
            "imports": [
                {"target": "pkg.base", "line": 5, "lazy": False, "type_checking": False},
                {"target": "pkg.base", "line": 6, "lazy": False, "type_checking": False},
                {"target": "pkg.top", "line": 9, "lazy": False, "type_checking": True},
            ],
        },
        {
            "name": "pkg.top",
            "path": "top.py",
            "layer": "top",
            "imports": [
                {"target": "pkg.middle", "line": 3, "lazy": False, "type_checking": False},
                {"target": "pkg.base", "line": 9, "lazy": True, "type_checking": False},
            ],
        },
    ],
}


def build():
    _, project = load_project([PKG])
    return project


class TestGoldenExports:
    def test_json_matches_golden(self):
        assert json.loads(build().to_json()) == GOLDEN

    def test_dot_styles_every_edge_flavour(self):
        dot = build().to_dot()
        assert dot.startswith("digraph project {")
        assert '"pkg.top" -> "pkg.middle";' in dot
        assert '"pkg.top" -> "pkg.base" [style=dashed, label="lazy"];' in dot
        assert '"pkg.middle" -> "pkg.top" [style=dotted, label="type"];' in dot


class TestGraphApi:
    def test_relative_import_resolves_like_absolute(self):
        # middle.py imports pkg.base twice: once absolute, once relative.
        middle = build().modules["pkg.middle"]
        targets = [e.target for e in middle.imports if e.eager]
        assert targets.count("pkg.base") == 2

    def test_eager_only_edges_drop_lazy_and_type_checking(self):
        eager = {(e.source, e.target) for e in build().edges(eager_only=True)}
        assert ("pkg.top", "pkg.base") not in eager  # lazy
        assert ("pkg.middle", "pkg.top") not in eager  # TYPE_CHECKING
        assert ("pkg.top", "pkg.middle") in eager

    def test_node_for_path(self):
        project = build()
        assert project.node_for_path("top.py").name == "pkg.top"
        assert project.node_for_path("nope.py") is None

    def test_acyclic_package_has_no_cycles(self):
        assert build().cycles() == []

    def test_mutual_imports_form_a_cycle(self, tmp_path):
        (tmp_path / "alpha.py").write_text("import beta\n", encoding="utf-8")
        (tmp_path / "beta.py").write_text("import alpha\n", encoding="utf-8")
        _, project = load_project([tmp_path])
        assert project.cycles() == [["alpha", "beta"]]

    def test_function_index_records_call_sites(self):
        # top.combine() calls double() and reads base.ANSWER.
        node = build().modules["pkg.top"]
        (combine,) = [f for f in node.functions if f.qualname == "combine"]
        called = {c.callee for c in combine.calls}
        assert "double" in called


class TestProjectGraphBuild:
    def test_external_imports_are_not_edges(self):
        # middle.py imports typing; only project-internal edges survive.
        targets = {e.target for e in build().edges()}
        assert targets <= {"pkg", "pkg.base", "pkg.middle", "pkg.top"}

    def test_build_from_pairs_matches_cli_loader(self):
        from repro.analysis.core import collect_files, load_module

        pairs = [(load_module(p, PKG), PKG) for p in collect_files(PKG)]
        direct = ProjectGraph.build(pairs)
        assert json.loads(direct.to_json()) == GOLDEN
