"""Middle module: eager absolute, eager relative, and TYPE_CHECKING imports."""

from typing import TYPE_CHECKING

import pkg.base
from . import base

if TYPE_CHECKING:
    from pkg import top

__all__ = ["double"]


def double():
    return pkg.base.ANSWER + base.ANSWER
