"""Golden-test package: a tiny project with every import flavour."""
