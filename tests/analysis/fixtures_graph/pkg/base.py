"""Leaf module: imports nothing from the project."""

__all__ = ["ANSWER"]

ANSWER = 42
