"""Top module: one eager and one lazy (function-body) project import."""

from pkg.middle import double

__all__ = ["combine"]


def combine():
    from pkg import base

    return double() + base.ANSWER
