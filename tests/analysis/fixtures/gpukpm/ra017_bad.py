"""RA017 fixtures: an unpinned block-independent write races itself.

``j`` *looks* block-derived (so the syntactic RA014 taint passes), but
the affine interpreter cancels it to the constant 0: every block of the
launch stores into ``acc[0]`` — a certain cross-block write/write
violation.  The pinned twin below is the legal single-writer form.
"""

_RACE_CONTRACT = KernelContract(
    symbols={"n": (1, None)},
    arrays={"acc": ArraySpec(extent=("n",), role="out")},
    sanitize_workload="dos",
)


@kernel("racy_reduce", contract=_RACE_CONTRACT)
def _racy_reduce_kernel(ctx, acc, n):
    j = ctx.linear_block_id - ctx.linear_block_id
    acc.data[j] = 1.0


@kernel("pinned_reduce", contract=_RACE_CONTRACT)
def _pinned_reduce_kernel(ctx, acc, n):
    if ctx.linear_block_id != 0:
        return
    acc.data[0] = 1.0
