"""RA020 fixtures: kernels that fall between proof and sanitizer.

Three ways out of the proven-or-sanitized dichotomy: no contract at
all, a sanitize workload naming nothing the pinned runner knows, and a
contract expression the static extractor cannot evaluate.
"""


@kernel("uncontracted")
def _uncontracted_kernel(ctx, out):
    out.data[ctx.linear_block_id] = 0.0


_W_CONTRACT = KernelContract(
    symbols={"n": (1, None)},
    arrays={"out": ArraySpec(extent=("n",), role="out")},
    sanitize_workload="warmup",
)


@kernel("mystery_workload", contract=_W_CONTRACT)
def _mystery_workload_kernel(ctx, out, n):
    rows = ctx.thread_range(n)
    out.data[rows] = 0.0


@kernel("unreadable", contract=build_contract())
def _unreadable_kernel(ctx, out):
    out.data[ctx.linear_block_id] = 0.0
