"""RA016 fixtures: a device store proven past its declared extent.

The shifted cell write escapes for *every* launch (certain), so it is
reported even though the contract names a sanitize workload; the
symbol-indexed read merely *may* escape (uncertain) and the workload
suppresses it — RA020 owns that obligation.
"""

_OOB_CONTRACT = KernelContract(
    symbols={"n": (1, None), "k": (0, "n")},
    arrays={"out": ArraySpec(extent=("n",), role="out")},
    sanitize_workload="dos",
)


@kernel("oob_shift", contract=_OOB_CONTRACT)
def _oob_shift_kernel(ctx, out, n, k):
    rows = ctx.thread_range(n)
    out.data[rows + 1] = 0.0
    peek = out.data[k]
    return peek
