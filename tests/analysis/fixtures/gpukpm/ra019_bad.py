"""RA019 fixture: a declared coverage axis with a provable gap.

``out`` promises exactly-once coverage of axis 0 (all ``n`` elements),
but the partition only tiles ``[0, n-1)`` — the last element is never
assigned.  No sanitize workload is named, so RA020 also reports the
kernel as neither proven nor dynamically covered.
"""

_GAP_CONTRACT = KernelContract(
    symbols={"n": (1, None)},
    arrays={"out": ArraySpec(extent=("n",), role="out", coverage=0)},
)


@kernel("short_cover", contract=_GAP_CONTRACT)
def _short_cover_kernel(ctx, out, n):
    rows = ctx.thread_range(n - 1)
    out.data[rows] = 0.0
