"""RA018 fixtures: ad-hoc contractions on matrix storage buffers.

Both products are numerically plausible but bypass the canonical
contraction order of ``repro.sparse.sweep``, so replay across storage
formats would not be bit-identical.  The accesses themselves are
in-bounds and race-free — the kernel *proves* clean under RA016/RA017;
only the contraction route is wrong.
"""

_DOT_CONTRACT = KernelContract(
    symbols={"n": (1, None), "nnz": (0, None)},
    arrays={"x": ArraySpec(extent=("n",), role="in")},
    matrices={"matrix": MatrixSpec("n", "n", nnz="nnz")},
)


@kernel("adhoc_product", contract=_DOT_CONTRACT)
def _adhoc_product_kernel(ctx, matrix, x, n):
    x_host = np.asarray(x.data, dtype=np.float64)
    result = np.dot(matrix.dense, x_host)
    stash = np.asarray(matrix.dense, dtype=np.float64)
    gram = stash @ stash.T
    return result, gram
