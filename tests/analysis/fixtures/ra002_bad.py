"""RA002 fixture: bare builtin raises (three findings)."""

__all__ = ["checked_order", "checked_kind"]


def checked_order(order):
    if order <= 0:
        raise ValueError("order must be positive")
    return order


def checked_kind(kind):
    if not isinstance(kind, str):
        raise TypeError("kind must be a string")
    if kind == "impossible":
        raise RuntimeError("unreachable kind")
    return kind
