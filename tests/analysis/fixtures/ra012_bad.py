"""RA012 fixture: stale suppressions (three findings under the full pack).

The file-wide RA004 noqa, the bare noqa on a clean line, and the RA003
token of the comma list all suppress nothing; the RA001 tokens are
consumed by real findings and must stay silent.
"""
# repro: noqa-file[RA004]

import random  # repro: noqa[RA001]
import random as rng2  # repro: noqa[RA001, RA003]

__all__ = ["quiet"]


def quiet():
    value = 1  # repro: noqa
    return value, random, rng2
