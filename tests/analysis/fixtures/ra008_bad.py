"""RA008 fixture: host wall-clock and entropy reads (five findings).

One flagged from-import plus four flagged calls; the suppressed call at
the end must stay silent.
"""

import os
import time
from datetime import datetime
from time import perf_counter

__all__ = ["stamp"]


def stamp():
    started = time.time()
    tick = time.monotonic()
    entropy = os.urandom(4)
    when = datetime.now()
    allowed = time.time()  # repro: noqa[RA008]
    return started, tick, entropy, when, allowed, perf_counter
