"""RA013 fixtures: device allocations that never find an owner."""

__all__ = [
    "leaks_buffer",
    "escapes_buffer",
    "freed_is_fine",
    "transferred_is_fine",
    "stored_is_fine",
]


def leaks_buffer(device, host):
    buf = device.alloc((64,), name="leaky")
    device.memcpy_htod(buf, host)
    return device.modeled_seconds


def escapes_buffer(device):
    out = device.alloc((64,), name="escapee")
    return out


def freed_is_fine(device):
    tmp = device.alloc((64,))
    tmp.free()


def transferred_is_fine(device):
    data = device.alloc((64,))
    return DeviceMatrix(dense=data)


def stored_is_fine(holder, device):
    buf = device.alloc((64,))
    holder.buffer = buf
