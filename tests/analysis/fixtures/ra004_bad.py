"""RA004 fixture: launch-contract violations (three findings)."""

from repro.util.validation import check_power_of_two

__all__ = ["run"]


def run(device, kern, plan, src, dst):
    device.launch(kern, grid=plan.num_blocks, block=96, args=(src, dst))
    device.launch(kern, grid=7, block=plan.block_size, args=(src, dst))
    threads = 24
    device.launch(kern, grid=plan.num_blocks, block=threads, args=(src, dst))
    device.launch(
        kern,
        grid=plan.num_blocks,
        block=check_power_of_two(threads, "threads"),
        args=(src, dst),
    )
