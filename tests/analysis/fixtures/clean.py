"""Clean fixture: zero findings under every rule."""

__all__ = ["double"]


def double(value):
    return 2 * value
