"""RA015 fixtures: sanitizer suppressions that cannot be audited."""

BARE = 1  # sanitize: ignore
TYPO = 2  # sanitize: ignore[SAN999]
MIXED = 3  # sanitize: ignore[SAN001, SAN042]
NAMED = 4  # sanitize: ignore[SAN005] -- intentional leak exercised by a test
