"""RA007 cycle fixture, half one: imports cycle_b (one cycle finding)."""

import cycle_b

__all__ = []
