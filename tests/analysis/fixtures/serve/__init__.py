"""Layer fixture: a 'serve'-layer package for the RA007 tests."""
