"""RA007 fixture: same-rank sibling import, gpu -> cpu (one finding)."""

import cpu

__all__ = []
