"""RA001 fixture: RNG use outside util/rng.py (three findings)."""

import random

import numpy as np

__all__ = ["draw"]


def draw():
    """Two flagged calls plus the flagged import above."""
    values = np.random.rand(4)
    extra = random.random()
    return values, extra
