"""RA014 fixtures: kernels whose write-sets ignore the block identity."""

from repro.gpu.kernel import kernel

__all__ = [
    "broadcast_store_kernel",
    "view_update_kernel",
    "tiled_kernel",
    "block_view_kernel",
    "guarded_kernel",
]


@kernel("broadcast_store")
def broadcast_store_kernel(ctx, out):
    out.data[...] = 1.0


@kernel("view_update")
def view_update_kernel(ctx, out):
    acc = out.data[0]
    acc += 1.0


@kernel("tiled_is_fine")
def tiled_kernel(ctx, out):
    idx = ctx.thread_range(out.shape[0])
    out.data[idx] = 1.0


@kernel("block_view_is_fine")
def block_view_kernel(ctx, workspace):
    ws = workspace.data[ctx.linear_block_id]
    ws[0] = 1.0
    ws += 1.0


@kernel("guarded_is_fine")
def guarded_kernel(ctx, partials, out):
    if ctx.linear_block_id != 0:
        return
    out.data[...] = partials.data.sum(axis=0)
