"""RA006 fixture: __all__ drift (three findings)."""

__all__ = ["exported", "missing_def", "exported"]


def exported():
    return 1


def orphan():
    return 2
