"""RA003 fixture: dtype-less constructors in a hot-path module (three findings)."""

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["make_workspace"]


def make_workspace(dim):
    dim = check_positive_int(dim, "dim")
    moments = np.zeros(dim)
    table = np.empty((dim, dim))
    weights = np.ones(dim, dtype=np.float64)
    samples = np.asarray([1.0, 2.0])
    return moments, table, weights, samples
