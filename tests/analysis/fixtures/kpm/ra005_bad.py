"""RA005 fixture: public API without validation (one finding)."""

__all__ = ["estimate_seconds"]


def estimate_seconds(dimension, num_moments=100):
    return 1.0e-9 * dimension * num_moments


def _helper(x):
    return x
