"""RA007 fixture: an upward import from the kpm layer (one finding).

The eager ``import serve`` below crosses the declared layer DAG upward
(kpm rank < serve rank).  The lazy and TYPE_CHECKING imports of the same
target are exempt and must stay silent.
"""

from typing import TYPE_CHECKING

import serve

if TYPE_CHECKING:
    import serve as _serve_types

__all__ = ["deferred"]


def deferred():
    """A function-body import is lazy: recorded, never a finding."""
    import serve as serve_lazy

    return serve_lazy
