"""RA009 fixture: dense materialization + loop-body allocation (four findings).

``np.eye``, ``np.linalg.eigvalsh`` and ``.todense()`` are dense
materializations; the ``np.zeros`` inside the loop *body* is
per-iteration churn.  The allocation in the loop's *iterator* expression
runs once and must stay silent, as must the suppressed allocation.
"""

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["densify", "accumulate"]


def densify(operator, dim):
    dim = check_positive_int(dim, "dim")
    identity = np.eye(dim, dtype=np.float64)
    spectrum = np.linalg.eigvalsh(identity)
    dense = operator.todense()
    return identity, spectrum, dense


def accumulate(dim):
    dim = check_positive_int(dim, "dim")
    total = np.zeros(dim, dtype=np.float64)
    for _ in np.zeros(3, dtype=np.float64):
        churn = np.zeros(dim, dtype=np.float64)
        quiet = np.zeros(dim, dtype=np.float64)  # repro: noqa[RA009]
        total += churn + quiet
    return total
