"""RA007 suppression fixture: the upward import is noqa'd (zero findings)."""

import serve  # repro: noqa[RA007]

__all__ = []
