"""Layer fixture: a 'cpu'-layer package for the RA007 sibling test."""
