"""RA011 fixture: leaked resources and an unbalanced ContextVar (four findings).

``leaky`` shows all four shapes; ``balanced`` is the hygienic mirror
(with-blocks, token reset) and must stay silent, as must the suppressed
factory return.
"""

import contextvars
import tempfile

__all__ = ["STATE", "leaky", "balanced", "factory"]

STATE = contextvars.ContextVar("ra011_state")


def leaky(path, tracer):
    handle = open(path)
    scratch = tempfile.NamedTemporaryFile()
    tracer.span("never-entered")
    STATE.set(1)
    return handle, scratch


def balanced(path, tracer):
    token = STATE.set(2)
    try:
        with open(path) as handle, tracer.span("entered"):
            return handle.read()
    finally:
        STATE.reset(token)


def factory(path):
    return open(path)  # repro: noqa[RA011]
