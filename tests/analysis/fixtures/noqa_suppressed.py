"""Suppression fixture: every violation silenced with repro noqa (zero findings)."""

import random  # repro: noqa[RA001]

__all__ = ["draw", "shout"]


def draw():
    return random.random()  # repro: noqa


def shout():
    raise RuntimeError("boom")  # repro: noqa[RA002]
