"""RA007 cycle fixture, half two: imports cycle_a back."""

import cycle_a

__all__ = []
