"""RA008 negative fixture: this module IS the wall-clock bridge.

``timing.py`` matches the default ``wall-clock-allowed`` list, so the
host-clock reads below are legal (zero findings).
"""

import time

__all__ = ["host_seconds"]


def host_seconds():
    return time.perf_counter() - time.monotonic()
