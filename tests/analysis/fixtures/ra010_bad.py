"""RA010 fixture: deprecated ``MultiGpuKPM.run`` call sites (two findings).

A direct constructor chain and a same-scope local both resolve
statically; the migrated call and the unknown-receiver call must stay
silent, as must the suppressed shim exercise.
"""

__all__ = ["MultiGpuKPM", "direct", "via_local", "migrated", "unknown", "pinned"]


class MultiGpuKPM:
    def run(self, operator, config):
        return self.compute_moments(operator, config)

    def compute_moments(self, operator, config):
        return operator, config


def direct(operator, config):
    return MultiGpuKPM().run(operator, config)


def via_local(operator, config):
    engine = MultiGpuKPM()
    return engine.run(operator, config)


def migrated(operator, config):
    return MultiGpuKPM().compute_moments(operator, config)


def unknown(engine, operator, config):
    # ``engine`` is a parameter of unknown type: dataflow-lite cannot
    # prove the class, so the runtime DeprecationWarning is the backstop.
    return engine.run(operator, config)


def pinned(operator, config):
    return MultiGpuKPM().run(operator, config)  # repro: noqa[RA010]
