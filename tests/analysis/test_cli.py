"""End-to-end tests of ``python -m repro.analysis``.

Pins the exit-code contract (0 clean / 1 findings / 2 usage error), the
JSON schema, the baseline create-then-pass flow, and noqa suppression —
all through :func:`repro.analysis.cli.main` exactly as ``__main__`` calls
it.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.analysis.core import Finding

FIXTURES = Path(__file__).parent / "fixtures"

BAD_SOURCE = '''"""Tmp module with one RA002 finding."""

__all__ = ["checked"]


def checked(x):
    if x < 0:
        raise ValueError("negative")
    return x
'''

CLEAN_SOURCE = '''"""Tmp module with no findings."""

__all__ = ["checked"]


def checked(x):
    return x
'''


@pytest.fixture
def project(tmp_path):
    """A hermetic scan root: no pyproject.toml above it inside tmp_path."""
    root = tmp_path / "proj"
    root.mkdir()
    (root / "mod.py").write_text(BAD_SOURCE, encoding="utf-8")
    return root


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main([str(FIXTURES / "clean.py")]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "1 file(s) checked" in out

    def test_findings_exit_one(self, project, capsys):
        assert main([str(project)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RA002" in out

    def test_unknown_rule_is_usage_error(self, project, capsys):
        assert main([str(project), "--select", "RA999"]) == EXIT_USAGE
        assert "RA999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_unparseable_file_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        assert main([str(bad)]) == EXIT_USAGE
        assert "cannot parse" in capsys.readouterr().err

    def test_bad_flag_is_argparse_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--format", "yaml"])
        assert excinfo.value.code == EXIT_USAGE

    def test_write_baseline_without_baseline_is_usage_error(self, project, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([str(project), "--write-baseline"])
        assert excinfo.value.code == EXIT_USAGE


class TestSelectIgnore:
    def test_select_narrows_the_rule_pack(self, project, capsys):
        assert main([str(project), "--select", "RA001"]) == EXIT_CLEAN
        assert main([str(project), "--select", "RA002"]) == EXIT_FINDINGS

    def test_ignore_drops_the_only_finding(self, project, capsys):
        assert main([str(project), "--ignore", "RA002"]) == EXIT_CLEAN

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for index in range(1, 21):
            assert f"RA{index:03d}" in out


class TestExplain:
    def test_known_rule_exits_clean_with_prose(self, capsys):
        assert main(["--explain", "RA007"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert out.startswith("RA007 ")
        assert "layer" in out

    def test_lowercase_rule_id_accepted(self, capsys):
        assert main(["--explain", "ra008"]) == EXIT_CLEAN
        assert "RA008" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--explain", "RA999"]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert "RA999" in err
        assert "RA001" in err  # the error lists the known rule ids

    def test_explain_needs_no_paths(self, capsys):
        # --explain is a documentation query: no scan root required.
        assert main(["--explain", "RA012"]) == EXIT_CLEAN

    def test_every_rule_has_explain_prose(self, capsys):
        from repro.analysis.rules import ALL_RULES

        assert len(ALL_RULES) == 20
        for rule in ALL_RULES:
            assert main(["--explain", rule.id]) == EXIT_CLEAN
            out = capsys.readouterr().out
            assert out.startswith(f"{rule.id} ")
            # Rich prose, not a one-line restatement of the title.
            assert len(out.strip().splitlines()) > 1

    @pytest.mark.parametrize(
        "rule_id, phrase",
        [
            ("RA016", "out-of-bounds"),
            ("RA017", "disjoint"),
            ("RA018", "canonical"),
            ("RA019", "exactly-once"),
            ("RA020", "certificate"),
        ],
    )
    def test_verifier_rules_explain_their_proof_obligation(
        self, rule_id, phrase, capsys
    ):
        assert main(["--explain", rule_id]) == EXIT_CLEAN
        assert phrase in capsys.readouterr().out.lower()


class TestGraphOut:
    def test_dot_export(self, project, capsys):
        assert main([str(project), "--graph-out", "dot"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert out.startswith("digraph project {")
        assert '"mod"' in out

    def test_json_export(self, project, capsys):
        assert main([str(project), "--graph-out", "json"]) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert [m["name"] for m in payload["modules"]] == ["mod"]

    def test_graph_out_skips_rule_findings(self, project, capsys):
        # The project fixture has an RA002 finding, but a graph export is
        # a query, not a scan: it must still exit 0.
        assert main([str(project), "--graph-out", "dot"]) == EXIT_CLEAN

    def test_bad_graph_format_is_argparse_usage_error(self, project):
        with pytest.raises(SystemExit) as excinfo:
            main([str(project), "--graph-out", "svg"])
        assert excinfo.value.code == EXIT_USAGE


class TestJsonFormat:
    def test_schema_round_trip(self, project, capsys):
        assert main([str(project), "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["files_checked"] == 1
        assert payload["baselined"] == []
        assert payload["stale_baseline"] == []
        findings = [Finding.from_json(item) for item in payload["findings"]]
        assert [f.rule for f in findings] == ["RA002"]
        assert findings[0].path == "mod.py"

    def test_clean_json(self, capsys):
        assert main([str(FIXTURES / "clean.py"), "--format", "json"]) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []


class TestBaselineFlow:
    def test_create_then_pass_then_ratchet(self, project, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"

        # 1. Known debt exists: write it down (exit 0).
        assert main(
            [str(project), "--baseline", str(baseline), "--write-baseline"]
        ) == EXIT_CLEAN
        assert json.loads(baseline.read_text())["version"] == 1
        assert "wrote 1 finding(s)" in capsys.readouterr().err

        # 2. The same debt no longer fails the run.
        assert main([str(project), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "(baselined)" in capsys.readouterr().out

        # 3. A new violation still fails even with the baseline applied.
        (project / "extra.py").write_text(BAD_SOURCE, encoding="utf-8")
        assert main([str(project), "--baseline", str(baseline)]) == EXIT_FINDINGS
        capsys.readouterr()

        # 4. Fixing everything flags the stale entry but passes — the
        #    file can now be ratcheted down to empty.
        (project / "mod.py").write_text(CLEAN_SOURCE, encoding="utf-8")
        (project / "extra.py").write_text(CLEAN_SOURCE, encoding="utf-8")
        assert main([str(project), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "stale baseline entry:" in capsys.readouterr().out

    def test_missing_baseline_file_is_ignored(self, project, tmp_path, capsys):
        # A configured-but-absent baseline means "no accepted debt".
        absent = tmp_path / "absent.json"
        assert main([str(project), "--baseline", str(absent)]) == EXIT_FINDINGS

    def test_corrupt_baseline_is_usage_error(self, project, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json")
        assert main([str(project), "--baseline", str(baseline)]) == EXIT_USAGE
        assert "cannot parse" in capsys.readouterr().err


class TestSuppression:
    def test_noqa_fixture_is_clean(self, capsys):
        assert main([str(FIXTURES / "noqa_suppressed.py")]) == EXIT_CLEAN

    def test_line_noqa_silences_only_its_line(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            '"""Doc."""\n'
            "\n"
            "__all__ = []\n"
            "\n"
            "import random  # repro: noqa[RA001]\n"
            "import random as rng2\n",
            encoding="utf-8",
        )
        assert main([str(target)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "mod.py:6" in out
        assert "mod.py:5" not in out

    def test_file_wide_noqa(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            '"""Doc."""\n'
            "# repro: noqa-file[RA001]\n"
            "\n"
            "__all__ = []\n"
            "\n"
            "import random\n"
            "import random as rng2\n",
            encoding="utf-8",
        )
        assert main([str(target)]) == EXIT_CLEAN
