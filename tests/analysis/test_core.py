"""Unit tests for the engine layer: Finding, Suppressions, file walking."""

from pathlib import Path

import pytest

from repro.analysis.core import (
    Finding,
    Suppressions,
    collect_files,
    load_module,
)
from repro.errors import ValidationError

FIXTURES = Path(__file__).parent / "fixtures"


class TestFinding:
    def make(self):
        return Finding(path="kpm/config.py", line=7, col=4, rule="RA002", message="boom")

    def test_render(self):
        assert self.make().render() == "kpm/config.py:7:4: RA002 boom"

    def test_fingerprint_is_line_independent(self):
        a = self.make()
        b = Finding(path="kpm/config.py", line=99, col=0, rule="RA002", message="boom")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() == "RA002::kpm/config.py::boom"

    def test_json_round_trip(self):
        finding = self.make()
        assert Finding.from_json(finding.to_json()) == finding

    def test_ordering_by_path_then_line(self):
        early = Finding(path="a.py", line=1, col=0, rule="RA001", message="m")
        late = Finding(path="a.py", line=9, col=0, rule="RA001", message="m")
        other = Finding(path="b.py", line=1, col=0, rule="RA001", message="m")
        assert sorted([other, late, early]) == [early, late, other]


class TestSuppressions:
    def test_single_rule(self):
        supp = Suppressions.parse("x = 1  # repro: noqa[RA001]\n")
        assert supp.is_suppressed("RA001", 1)
        assert not supp.is_suppressed("RA002", 1)
        assert not supp.is_suppressed("RA001", 2)

    def test_multiple_rules_and_whitespace(self):
        supp = Suppressions.parse("x = 1  # repro: noqa[RA001, RA003]\n")
        assert supp.is_suppressed("RA001", 1)
        assert supp.is_suppressed("RA003", 1)
        assert not supp.is_suppressed("RA002", 1)

    def test_bare_noqa_suppresses_everything_on_the_line(self):
        supp = Suppressions.parse("x = 1  # repro: noqa\n")
        assert supp.is_suppressed("RA001", 1)
        assert supp.is_suppressed("RA006", 1)
        assert not supp.is_suppressed("RA001", 2)

    def test_file_wide(self):
        supp = Suppressions.parse('"""doc."""\n# repro: noqa-file[RA005]\nx = 1\n')
        assert supp.is_suppressed("RA005", 1)
        assert supp.is_suppressed("RA005", 999)
        assert not supp.is_suppressed("RA001", 1)

    def test_lowercase_rule_ids_normalized(self):
        supp = Suppressions.parse("x = 1  # repro: noqa[ra001]\n")
        assert supp.is_suppressed("RA001", 1)

    def test_string_literals_never_suppress(self):
        supp = Suppressions.parse('x = "# repro: noqa[RA001]"\n')
        assert not supp.is_suppressed("RA001", 1)

    def test_trailing_prose_allowed(self):
        supp = Suppressions.parse("x = 1  # repro: noqa[RA003] -- complex allowed\n")
        assert supp.is_suppressed("RA003", 1)

    def test_consume_marks_entries_used(self):
        supp = Suppressions.parse("x = 1  # repro: noqa[RA001]\ny = 2  # repro: noqa[RA002]\n")
        supp.consume("RA001", 1)
        stale = supp.stale_entries()
        assert [(e.line, e.rule) for e in stale] == [(2, "RA002")]

    def test_unconsumed_entries_are_stale(self):
        supp = Suppressions.parse("x = 1  # repro: noqa[RA001]\n")
        assert [(e.line, e.rule) for e in supp.stale_entries()] == [(1, "RA001")]

    def test_file_wide_entry_tracked(self):
        supp = Suppressions.parse('"""doc."""\n# repro: noqa-file[RA005]\n')
        (entry,) = supp.stale_entries()
        assert entry.file_wide
        supp.consume("RA005", 40)
        assert supp.stale_entries() == []


class TestCollectFiles:
    def test_walks_fixture_tree_sorted(self):
        files = collect_files(FIXTURES)
        names = [f.relative_to(FIXTURES).as_posix() for f in files]
        assert names == sorted(names)
        assert "kpm/ra003_bad.py" in names
        assert "clean.py" in names

    def test_single_file(self):
        path = FIXTURES / "clean.py"
        assert collect_files(path) == [path]

    def test_rejects_non_python_file(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hi")
        with pytest.raises(ValidationError, match="not a Python file"):
            collect_files(target)

    def test_rejects_missing_path(self, tmp_path):
        with pytest.raises(ValidationError, match="no such file"):
            collect_files(tmp_path / "nope")

    def test_skips_pycache_and_hidden(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "mod.py").write_text("x = 1\n")
        names = [f.relative_to(tmp_path).as_posix() for f in collect_files(tmp_path)]
        assert names == ["pkg/mod.py"]


class TestLoadModule:
    def test_rel_path_is_posix_relative_to_root(self):
        module = load_module(FIXTURES / "kpm" / "ra003_bad.py", FIXTURES)
        assert module.rel_path == "kpm/ra003_bad.py"

    def test_file_scanned_as_root_uses_its_name(self):
        path = FIXTURES / "clean.py"
        module = load_module(path, path)
        assert module.rel_path == "clean.py"

    def test_syntax_error_raises_validation_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        with pytest.raises(ValidationError, match="cannot parse"):
            load_module(bad, tmp_path)
