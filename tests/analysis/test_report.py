"""Unit tests for the reporters and the baseline ratchet."""

import json

import pytest

from repro.analysis.core import Finding
from repro.analysis.report import Baseline, Report, render_json, render_text
from repro.errors import ValidationError


def finding(path="a.py", line=1, rule="RA001", message="m"):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [finding(), finding(line=2), finding(rule="RA002", message="n")]
        baseline = Baseline.from_findings(findings)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        assert Baseline.load(target).counts == baseline.counts

    def test_counts_are_a_multiset(self):
        baseline = Baseline.from_findings([finding(), finding(line=9)])
        assert baseline.counts == {"RA001::a.py::m": 2}

    def test_partition(self):
        baseline = Baseline.from_findings([finding(), finding(rule="RA009", message="gone")])
        new, baselined, stale = baseline.partition([finding(), finding(rule="RA002")])
        assert [f.rule for f in new] == ["RA002"]
        assert [f.rule for f in baselined] == ["RA001"]
        assert stale == ["RA009::a.py::gone"]

    def test_partition_respects_counts(self):
        baseline = Baseline.from_findings([finding()])
        new, baselined, _ = baseline.partition([finding(), finding(line=5)])
        assert len(baselined) == 1
        assert len(new) == 1

    def test_saved_file_shape(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline.from_findings([finding()]).save(target)
        data = json.loads(target.read_text())
        assert data == {"version": 1, "entries": {"RA001::a.py::m": 1}}

    @pytest.mark.parametrize(
        "payload",
        [
            "not json",
            '{"entries": {}}',
            '{"version": 2, "entries": {}}',
            '{"version": 1, "entries": []}',
            '{"version": 1, "entries": {"k": 0}}',
            '{"version": 1, "entries": {"k": "1"}}',
        ],
    )
    def test_load_rejects_bad_shapes(self, tmp_path, payload):
        target = tmp_path / "baseline.json"
        target.write_text(payload)
        with pytest.raises(ValidationError):
            Baseline.load(target)


class TestRendering:
    def test_text_lists_findings_and_summary(self):
        report = Report(
            findings=[finding()],
            baselined=[finding(rule="RA002", message="old")],
            stale_baseline=["RA003::b.py::x"],
            files_checked=4,
        )
        text = render_text(report)
        assert "a.py:1:0: RA001 m" in text
        assert "(baselined)" in text
        assert "stale baseline entry: RA003::b.py::x" in text
        assert text.endswith(
            "1 finding(s), 1 baselined, 1 stale baseline entr(ies), 4 file(s) checked"
        )

    def test_json_schema(self):
        report = Report(findings=[finding()], files_checked=2)
        payload = json.loads(render_json(report))
        assert payload["version"] == 2
        assert payload["files_checked"] == 2
        assert payload["baselined"] == []
        assert payload["stale_baseline"] == []
        assert [Finding.from_json(item) for item in payload["findings"]] == [finding()]
        assert payload["findings"][0]["severity"] == "error"

    def test_failed_ignores_baselined_and_stale(self):
        assert not Report(findings=[], baselined=[finding()], stale_baseline=["x"]).failed
        assert Report(findings=[finding()]).failed

    def test_warning_severity_does_not_fail_the_run(self):
        import dataclasses

        warning = dataclasses.replace(finding(), severity="warning")
        assert not Report(findings=[warning]).failed
        assert Report(findings=[warning, finding(line=2)]).failed

    def test_severity_is_not_part_of_the_fingerprint(self):
        import dataclasses

        warning = dataclasses.replace(finding(), severity="warning")
        assert warning.fingerprint() == finding().fingerprint()
