"""Unit tests for AnalysisConfig and the [tool.repro-analysis] loader."""

import pytest

from repro.analysis.config import AnalysisConfig, load_config, match_path
from repro.errors import ValidationError


class TestDefaults:
    def test_default_scopes(self):
        config = AnalysisConfig()
        assert "kpm/*" in config.hot_path_modules
        assert "gpu/*" in config.hot_path_modules
        assert config.rng_allowed == ("util/rng.py",)
        assert "gpukpm/*" in config.validated_packages
        assert config.baseline is None

    def test_with_updates_is_non_destructive(self):
        base = AnalysisConfig()
        changed = base.with_updates(select=("RA001",))
        assert changed.select == ("RA001",)
        assert base.select == ()


class TestMatchPath:
    def test_direct_match(self):
        assert match_path("kpm/config.py", ("kpm/*",))

    def test_prefixed_match(self):
        # Scanning from the repository root instead of src/repro still
        # classifies the module correctly.
        assert match_path("src/repro/kpm/config.py", ("kpm/*",))

    def test_exact_file_pattern(self):
        assert match_path("util/rng.py", ("util/rng.py",))
        assert match_path("src/repro/util/rng.py", ("util/rng.py",))

    def test_non_match(self):
        assert not match_path("cli/main.py", ("kpm/*", "gpu/*"))


class TestLoadConfig:
    def write_pyproject(self, tmp_path, body):
        (tmp_path / "pyproject.toml").write_text(body, encoding="utf-8")

    def test_missing_pyproject_yields_defaults(self, tmp_path):
        assert load_config(tmp_path) == AnalysisConfig()

    def test_missing_table_yields_defaults(self, tmp_path):
        self.write_pyproject(tmp_path, "[project]\nname = 'x'\n")
        assert load_config(tmp_path) == AnalysisConfig()

    def test_table_overrides_kebab_case_keys(self, tmp_path):
        self.write_pyproject(
            tmp_path,
            "[tool.repro-analysis]\n"
            'select = ["RA001", "RA002"]\n'
            'hot-path-modules = ["fast/*"]\n'
            'rng-allowed = ["fast/rng.py"]\n'
            'baseline = "debt.json"\n',
        )
        config = load_config(tmp_path)
        assert config.select == ("RA001", "RA002")
        assert config.hot_path_modules == ("fast/*",)
        assert config.rng_allowed == ("fast/rng.py",)
        assert config.baseline == "debt.json"

    def test_search_walks_upward(self, tmp_path):
        self.write_pyproject(tmp_path, '[tool.repro-analysis]\nignore = ["RA006"]\n')
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert load_config(nested).ignore == ("RA006",)

    def test_start_may_be_a_file(self, tmp_path):
        self.write_pyproject(tmp_path, '[tool.repro-analysis]\nignore = ["RA004"]\n')
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        assert load_config(target).ignore == ("RA004",)

    def test_unknown_key_rejected(self, tmp_path):
        self.write_pyproject(tmp_path, "[tool.repro-analysis]\nbogus = []\n")
        with pytest.raises(ValidationError, match="bogus"):
            load_config(tmp_path)

    def test_non_list_value_rejected(self, tmp_path):
        self.write_pyproject(tmp_path, '[tool.repro-analysis]\nselect = "RA001"\n')
        with pytest.raises(ValidationError, match="list of strings"):
            load_config(tmp_path)

    def test_non_string_baseline_rejected(self, tmp_path):
        self.write_pyproject(tmp_path, "[tool.repro-analysis]\nbaseline = 3\n")
        with pytest.raises(ValidationError, match="baseline"):
            load_config(tmp_path)

    def test_broken_toml_rejected(self, tmp_path):
        self.write_pyproject(tmp_path, "[tool.repro-analysis\n")
        with pytest.raises(ValidationError, match="cannot parse"):
            load_config(tmp_path)


class TestLayerDag:
    def test_default_dag_ranks(self):
        config = AnalysisConfig()
        assert config.layer_rank("errors") == 0
        assert config.layer_rank("kpm") == 6
        assert config.layer_rank("serve") == 10
        # cpu and gpu are same-rank siblings.
        assert config.layer_rank("cpu") == config.layer_rank("gpu")
        assert config.layer_rank("not-a-layer") is None

    def test_layers_key_parses_strings_and_sibling_lists(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-analysis]\n"
            'layers = ["base", ["left", "right"], "top"]\n',
            encoding="utf-8",
        )
        config = load_config(tmp_path)
        assert config.layers == (("base",), ("left", "right"), ("top",))
        assert config.layer_rank("left") == config.layer_rank("right") == 1

    def test_duplicate_layer_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-analysis]\nlayers = ["base", ["base", "top"]]\n',
            encoding="utf-8",
        )
        with pytest.raises(ValidationError, match="twice"):
            load_config(tmp_path)

    def test_non_list_layers_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-analysis]\nlayers = "base"\n', encoding="utf-8"
        )
        with pytest.raises(ValidationError, match="layers"):
            load_config(tmp_path)


class TestSeverityAndTables:
    def test_severity_defaults_to_error(self):
        assert AnalysisConfig().severity_for("RA001") == "error"

    def test_severity_table_overrides_one_rule(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-analysis.severity]\nRA009 = \"warning\"\n",
            encoding="utf-8",
        )
        config = load_config(tmp_path)
        assert config.severity_for("RA009") == "warning"
        assert config.severity_for("RA001") == "error"

    def test_bad_severity_level_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-analysis.severity]\nRA009 = \"info\"\n",
            encoding="utf-8",
        )
        with pytest.raises(ValidationError, match="severity"):
            load_config(tmp_path)

    def test_deprecations_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-analysis.deprecations]\n"
            '"Old.run" = "call Old.go() instead"\n',
            encoding="utf-8",
        )
        config = load_config(tmp_path)
        assert config.deprecations == (("Old.run", "call Old.go() instead"),)

    def test_default_deprecations_cover_the_gpu_engines(self):
        # GpuKPM.run was removed after its deprecation cycle; only the
        # MultiGpuKPM shim remains in the default table.
        classes = {entry[0] for entry in AnalysisConfig().deprecations}
        assert classes == {"MultiGpuKPM.run"}

    def test_wall_clock_and_loop_allocator_defaults(self):
        config = AnalysisConfig()
        assert config.wall_clock_allowed == ("timing.py",)
        assert "zeros" in config.loop_allocators
