"""Acceptance tests: seeded violations in a copy of the real tree must fail.

The issue pins two scenarios end-to-end through the CLI: an upward
``import repro.serve`` inside ``kpm/`` (RA007) and a host-clock read in
``gpukpm/pipeline.py`` (RA008).  The tree is copied to a directory named
``repro`` so module names resolve exactly as in the real package; the
copy has no ``pyproject.toml`` above it, so the built-in defaults (which
encode the same layer DAG) apply.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


@pytest.fixture
def tree(tmp_path):
    # The destination directory MUST be named ``repro``: the module-name
    # resolver prefixes the scan root's directory name, so ``repro.serve``
    # only resolves against a root called ``repro``.
    dest = tmp_path / "repro"
    shutil.copytree(SRC, dest, ignore=shutil.ignore_patterns("__pycache__"))
    return dest


def run(tree, capsys):
    code = main([str(tree)])
    return code, capsys.readouterr().out


def test_pristine_copy_is_clean(tree, capsys):
    code, _ = run(tree, capsys)
    assert code == EXIT_CLEAN


def test_layering_violation_in_kpm_fails(tree, capsys):
    target = tree / "kpm" / "dos.py"
    lines = target.read_text(encoding="utf-8").count("\n")
    target.write_text(
        target.read_text(encoding="utf-8") + "\nimport repro.serve\n",
        encoding="utf-8",
    )
    code, out = run(tree, capsys)
    assert code == EXIT_FINDINGS
    assert f"kpm/dos.py:{lines + 2}" in out
    assert "RA007" in out
    assert "layer 'kpm' (rank 6) is below layer 'serve' (rank 10)" in out


def test_leaked_device_allocation_in_gpukpm_fails(tree, capsys):
    target = tree / "gpukpm" / "pipeline.py"
    lines = target.read_text(encoding="utf-8").count("\n")
    target.write_text(
        target.read_text(encoding="utf-8")
        + "\ndef _seeded_leak(device):\n"
        + "    scratch = device.alloc((64,))\n"
        + "    return device.modeled_seconds\n",
        encoding="utf-8",
    )
    code, out = run(tree, capsys)
    assert code == EXIT_FINDINGS
    assert f"gpukpm/pipeline.py:{lines + 3}" in out
    assert "RA013" in out
    assert "'scratch' is neither freed nor transferred" in out


def test_unpartitioned_kernel_write_in_kernels_fails(tree, capsys):
    target = tree / "gpukpm" / "kernels.py"
    lines = target.read_text(encoding="utf-8").count("\n")
    target.write_text(
        target.read_text(encoding="utf-8")
        + '\n@kernel("seeded_broadcast")\n'
        + "def _seeded_broadcast_kernel(ctx, out):\n"
        + "    out.data[...] = 1.0\n",
        encoding="utf-8",
    )
    code, out = run(tree, capsys)
    assert code == EXIT_FINDINGS
    assert f"gpukpm/kernels.py:{lines + 4}" in out
    assert "RA014" in out
    assert "indices not derived from ctx.thread_range" in out


def test_bare_sanitizer_ignore_in_gpu_memory_fails(tree, capsys):
    target = tree / "gpu" / "memory.py"
    lines = target.read_text(encoding="utf-8").count("\n")
    target.write_text(
        target.read_text(encoding="utf-8")
        + "\n_SEEDED_FLAG = True  # sanitize: ignore\n",
        encoding="utf-8",
    )
    code, out = run(tree, capsys)
    assert code == EXIT_FINDINGS
    assert f"gpu/memory.py:{lines + 2}" in out
    assert "RA015" in out
    assert "names no finding code" in out


def test_wall_clock_in_gpukpm_pipeline_fails(tree, capsys):
    target = tree / "gpukpm" / "pipeline.py"
    lines = target.read_text(encoding="utf-8").count("\n")
    target.write_text(
        target.read_text(encoding="utf-8")
        + "\nimport time\n_SEEDED_T0 = time.perf_counter()\n",
        encoding="utf-8",
    )
    code, out = run(tree, capsys)
    assert code == EXIT_FINDINGS
    assert f"gpukpm/pipeline.py:{lines + 3}" in out
    assert "RA008" in out
    assert "time.perf_counter" in out
