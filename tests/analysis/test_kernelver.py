"""The static kernel verifier end to end: proofs, mutants, certificates.

Everything here is *static* — kernels are parsed and abstractly
interpreted, never imported or executed.  The two mutant tests seed the
paper's classic device bugs (an off-by-one store and a dropped
block-ownership index) into the real recursion kernel's source text and
require the verifier to refuse the proof.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, run_analysis
from repro.analysis.cli import main
from repro.analysis.kernelver import (
    CERTIFICATE_SCHEMA,
    build_certificate,
    render_certificate,
    verify_module,
)
from repro.obs.sanitize_run import cross_check_certificate, sanitized_run

REPO = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO / "src" / "repro"
KERNELS_PY = SRC_REPRO / "gpukpm" / "kernels.py"
CONDUCTIVITY_PY = SRC_REPRO / "gpukpm" / "conductivity_gpu.py"
COMMITTED_CERT = REPO / "kernelver-cert.json"


def _verify_source(text: str):
    return verify_module(ast.parse(text))


def _report_for(reports, kernel_name):
    for report in reports:
        if report.kernel_name == kernel_name:
            return report
    raise AssertionError(f"no kernel {kernel_name!r} in {reports}")


class TestShippedKernelsProve:
    @pytest.mark.parametrize(
        "path, kernels",
        [
            (
                KERNELS_PY,
                [
                    "kpm_recursion",
                    "reduce_moments",
                    "spmv_csr_scalar",
                    "spmv_csr_vector",
                    "spmv_ell",
                ],
            ),
            (CONDUCTIVITY_PY, ["kpm_conductivity", "reduce_conductivity"]),
        ],
    )
    def test_all_block_programs_proven(self, path, kernels):
        reports = _verify_source(path.read_text(encoding="utf-8"))
        by_name = {report.kernel_name: report for report in reports}
        assert sorted(by_name) == sorted(kernels)
        for name, report in by_name.items():
            assert report.status == "proven", (
                name,
                report.problems,
                report.issues(),
            )

    def test_recursion_kernel_proves_all_four_modes(self):
        reports = _verify_source(KERNELS_PY.read_text(encoding="utf-8"))
        recursion = _report_for(reports, "kpm_recursion")
        assert [mode.mode_name for mode in recursion.modes] == [
            "cold",
            "cold-capture",
            "resume",
            "resume-capture",
        ]
        assert all(not mode.issues for mode in recursion.modes)


class TestSeededMutants:
    """The verifier must reject classic device bugs without executing."""

    def test_off_by_one_store_is_caught(self):
        original = KERNELS_PY.read_text(encoding="utf-8")
        target = "mu_tilde.data[v, order] = r0 @ ws[nxt]"
        assert target in original
        mutated = original.replace(
            target, "mu_tilde.data[v, order + 1] = r0 @ ws[nxt]"
        )
        recursion = _report_for(_verify_source(mutated), "kpm_recursion")
        assert recursion.status == "failed"
        bounds = recursion.issues("RA016")
        assert bounds, "the out-of-bounds store produced no RA016 issue"
        assert any(
            "may exceed extent" in issue.message for _, issue in bounds
        )

    def test_dropped_block_ownership_is_caught(self):
        original = KERNELS_PY.read_text(encoding="utf-8")
        target = "ws = workspace.data[ctx.linear_block_id]"
        assert target in original
        mutated = original.replace(target, "ws = workspace.data[0]")
        recursion = _report_for(_verify_source(mutated), "kpm_recursion")
        assert recursion.status == "failed"
        races = recursion.issues("RA017")
        assert any(issue.certain for _, issue in races), (
            "every block sharing workspace row 0 must be a *certain* "
            "write/write violation"
        )
        assert any(
            "overlaps across blocks" in issue.message for _, issue in races
        )

    def test_mutants_detected_through_the_rule_gate(self, tmp_path):
        # The same mutants through run_analysis: the public gate fails.
        mutant_dir = tmp_path / "gpukpm"
        mutant_dir.mkdir()
        original = KERNELS_PY.read_text(encoding="utf-8")
        (mutant_dir / "kernels.py").write_text(
            original.replace(
                "ws = workspace.data[ctx.linear_block_id]",
                "ws = workspace.data[0]",
            ),
            encoding="utf-8",
        )
        config = AnalysisConfig(select=("RA017",))
        report = run_analysis([tmp_path], config)
        assert report.failed
        assert all(f.rule == "RA017" for f in report.findings)


class TestCertificate:
    def test_committed_certificate_is_byte_identical(self):
        config = AnalysisConfig()
        certificate = build_certificate([SRC_REPRO], config)
        assert render_certificate(certificate) == COMMITTED_CERT.read_text(
            encoding="utf-8"
        )

    def test_build_is_deterministic(self):
        config = AnalysisConfig()
        first = render_certificate(build_certificate([SRC_REPRO], config))
        second = render_certificate(build_certificate([SRC_REPRO], config))
        assert first == second

    def test_certificate_shape(self):
        certificate = build_certificate([SRC_REPRO], AnalysisConfig())
        assert certificate["schema"] == CERTIFICATE_SCHEMA
        assert certificate["fingerprint"].startswith("sha256:")
        kernels = certificate["kernels"]
        assert len(kernels) == 7
        assert all(entry["status"] == "proven" for entry in kernels)
        recursion = next(
            entry for entry in kernels if entry["kernel"] == "kpm_recursion"
        )
        assert sorted(recursion["modes"]) == [
            "cold",
            "cold-capture",
            "resume",
            "resume-capture",
        ]
        for mode in recursion["modes"].values():
            assert mode["rules"] == {
                "RA016": "proven",
                "RA017": "proven",
                "RA019": "proven",
            }

    def test_certificate_out_cli(self, tmp_path, capsys):
        out = tmp_path / "cert.json"
        status = main([str(SRC_REPRO), "--certificate-out", str(out)])
        assert status == 0
        assert out.read_text(encoding="utf-8") == COMMITTED_CERT.read_text(
            encoding="utf-8"
        )

    def test_drift_detected_against_doctored_certificate(self, tmp_path):
        doctored = json.loads(COMMITTED_CERT.read_text(encoding="utf-8"))
        doctored["kernels"][0]["status"] = "sanitize"
        cert_path = tmp_path / "kernelver-cert.json"
        cert_path.write_text(
            json.dumps(doctored, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        config = AnalysisConfig(
            select=("RA020",), certificate=str(cert_path)
        )
        report = run_analysis([SRC_REPRO], config)
        assert report.failed
        assert any("drifted" in f.message for f in report.findings)


class TestCrossCheck:
    """cross_check_certificate: the dynamic half of RA020."""

    @staticmethod
    def _certificate(kernels):
        return {"schema": CERTIFICATE_SCHEMA, "kernels": kernels}

    @staticmethod
    def _report(workloads=("dos",), launches=None, findings=()):
        from repro.sanitize import SanitizerReport

        return SanitizerReport(
            label="test",
            workload={"workloads": list(workloads)},
            findings=list(findings),
            stats={"kernel_launches": dict(launches or {})},
        )

    def test_all_proven_certificate_passes_trivially(self):
        cert = self._certificate([{"kernel": "k", "status": "proven"}])
        assert cross_check_certificate(self._report(), cert) == []

    def test_wrong_schema_is_one_problem(self):
        problems = cross_check_certificate(self._report(), {"schema": "x"})
        assert len(problems) == 1
        assert "schema" in problems[0]

    def test_discharged_obligation_passes(self):
        cert = self._certificate(
            [{"kernel": "k", "status": "sanitize", "sanitize_workload": "dos"}]
        )
        report = self._report(workloads=("dos",), launches={"k": 3})
        assert cross_check_certificate(report, cert) == []

    def test_unknown_workload_reported(self):
        cert = self._certificate(
            [
                {
                    "kernel": "k",
                    "status": "sanitize",
                    "sanitize_workload": "warmup",
                }
            ]
        )
        problems = cross_check_certificate(self._report(), cert)
        assert any("unknown sanitize workload" in p for p in problems)

    def test_workload_not_run_reported(self):
        cert = self._certificate(
            [
                {
                    "kernel": "k",
                    "status": "sanitize",
                    "sanitize_workload": "serve",
                }
            ]
        )
        report = self._report(workloads=("dos",), launches={"k": 1})
        problems = cross_check_certificate(report, cert)
        assert any("did not execute" in p for p in problems)

    def test_never_launched_reported(self):
        cert = self._certificate(
            [{"kernel": "k", "status": "sanitize", "sanitize_workload": "dos"}]
        )
        report = self._report(workloads=("dos",), launches={})
        problems = cross_check_certificate(report, cert)
        assert any("never launched" in p for p in problems)

    def test_failed_kernel_reported(self):
        cert = self._certificate([{"kernel": "k", "status": "failed"}])
        problems = cross_check_certificate(self._report(), cert)
        assert any("'failed'" in p for p in problems)

    def test_committed_certificate_against_the_pinned_dos_run(self):
        # The real artifact: all kernels proven, so any sanitized run
        # (even a sub-selection) discharges it.
        certificate = json.loads(COMMITTED_CERT.read_text(encoding="utf-8"))
        report = sanitized_run(workloads=("dos",))
        assert cross_check_certificate(report, certificate) == []
