"""Per-rule tests over the deliberately-broken fixture tree.

Each ``raNNN_bad.py`` fixture must produce *exactly* its expected
findings — path, line, and rule — and nothing else; ``clean.py`` and
``noqa_suppressed.py`` must produce nothing under any rule.
"""

from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, run_analysis

FIXTURES = Path(__file__).parent / "fixtures"


def scan(select=()):
    """Run the checker over the fixture tree with the given rule selection."""
    config = AnalysisConfig(select=tuple(select))
    return run_analysis([FIXTURES], config)


def locations(findings):
    return [(f.path, f.line, f.rule) for f in findings]


class TestRA001UnseededRng:
    def test_exact_findings(self):
        report = scan(["RA001"])
        assert locations(report.findings) == [
            ("ra001_bad.py", 3, "RA001"),
            ("ra001_bad.py", 12, "RA001"),
            ("ra001_bad.py", 13, "RA001"),
        ]

    def test_messages_name_the_offender(self):
        messages = [f.message for f in scan(["RA001"]).findings]
        assert any("stdlib 'random'" in m for m in messages)
        assert any("np.random.rand" in m for m in messages)
        assert all("philox_stream" in m for m in messages)


class TestRA002ErrorTaxonomy:
    def test_exact_findings(self):
        report = scan(["RA002"])
        assert locations(report.findings) == [
            ("ra002_bad.py", 8, "RA002"),
            ("ra002_bad.py", 14, "RA002"),
            ("ra002_bad.py", 16, "RA002"),
        ]

    def test_messages_point_at_the_taxonomy(self):
        messages = [f.message for f in scan(["RA002"]).findings]
        assert any("raise ValueError" in m for m in messages)
        assert any("raise TypeError" in m for m in messages)
        assert any("raise RuntimeError" in m for m in messages)
        assert all("repro.errors" in m for m in messages)


class TestRA003DtypeDrift:
    def test_exact_findings(self):
        report = scan(["RA003"])
        assert locations(report.findings) == [
            ("kpm/ra003_bad.py", 12, "RA003"),
            ("kpm/ra003_bad.py", 13, "RA003"),
            ("kpm/ra003_bad.py", 15, "RA003"),
        ]

    def test_only_fires_in_hot_path_modules(self):
        # The same constructors in a non-hot-path file stay legal: the
        # fixture root itself holds numpy-using files that never trigger.
        paths = {f.path for f in scan(["RA003"]).findings}
        assert paths == {"kpm/ra003_bad.py"}


class TestRA004LaunchContract:
    def test_exact_findings(self):
        report = scan(["RA004"])
        assert locations(report.findings) == [
            ("ra004_bad.py", 9, "RA004"),
            ("ra004_bad.py", 10, "RA004"),
            ("ra004_bad.py", 12, "RA004"),
        ]

    def test_messages_distinguish_the_violations(self):
        messages = [f.message for f in scan(["RA004"]).findings]
        assert any("literal block size 96" in m for m in messages)
        assert any("hard-coded grid dimension 7" in m for m in messages)
        assert any("planning layer" in m for m in messages)


class TestRA005PublicApiValidation:
    def test_exact_findings(self):
        report = scan(["RA005"])
        assert locations(report.findings) == [
            ("kpm/ra005_bad.py", 6, "RA005"),
        ]

    def test_message_names_the_function(self):
        (finding,) = scan(["RA005"]).findings
        assert "estimate_seconds" in finding.message

    def test_validated_function_passes(self):
        # make_workspace in kpm/ra003_bad.py calls check_positive_int,
        # which is validation evidence — no RA005 finding for it.
        paths = {f.path for f in scan(["RA005"]).findings}
        assert "kpm/ra003_bad.py" not in paths


class TestRA006ExportConsistency:
    def test_exact_findings(self):
        report = scan(["RA006"])
        assert locations(report.findings) == [
            ("ra006_bad.py", 3, "RA006"),
            ("ra006_bad.py", 3, "RA006"),
            ("ra006_bad.py", 10, "RA006"),
        ]

    def test_messages_cover_all_three_drift_modes(self):
        messages = [f.message for f in scan(["RA006"]).findings]
        assert any("twice" in m for m in messages)
        assert any("'missing_def' is not defined" in m for m in messages)
        assert any("'orphan' is missing from __all__" in m for m in messages)


class TestRA007Layering:
    def test_exact_findings(self):
        report = scan(["RA007"])
        assert locations(report.findings) == [
            ("cycle_a.py", 3, "RA007"),
            ("gpu/ra007_sibling.py", 3, "RA007"),
            ("kpm/ra007_bad.py", 10, "RA007"),
        ]

    def test_messages_cover_all_three_shapes(self):
        messages = [f.message for f in scan(["RA007"]).findings]
        assert any("eager import cycle: cycle_a -> cycle_b -> cycle_a" in m for m in messages)
        assert any("same-rank siblings" in m for m in messages)
        assert any("layer 'kpm' (rank 6) is below layer 'serve' (rank 10)" in m for m in messages)

    def test_lazy_and_type_checking_imports_are_exempt(self):
        # kpm/ra007_bad.py also imports serve lazily (function body) and
        # under TYPE_CHECKING; only the eager module-level import fires.
        paths = [loc for loc in locations(scan(["RA007"]).findings) if loc[0] == "kpm/ra007_bad.py"]
        assert paths == [("kpm/ra007_bad.py", 10, "RA007")]

    def test_noqa_silences_the_upward_import(self):
        paths = {f.path for f in scan(["RA007"]).findings}
        assert "kpm/ra007_ok.py" not in paths


class TestRA008ModeledClock:
    def test_exact_findings(self):
        report = scan(["RA008"])
        assert locations(report.findings) == [
            ("ra008_bad.py", 10, "RA008"),
            ("ra008_bad.py", 16, "RA008"),
            ("ra008_bad.py", 17, "RA008"),
            ("ra008_bad.py", 18, "RA008"),
            ("ra008_bad.py", 19, "RA008"),
        ]

    def test_messages_name_the_clock_source(self):
        messages = [f.message for f in scan(["RA008"]).findings]
        assert any("time.perf_counter" in m for m in messages)
        assert any("os.urandom" in m for m in messages)
        assert any("datetime.now" in m for m in messages)

    def test_wall_clock_allowed_module_is_exempt(self):
        paths = {f.path for f in scan(["RA008"]).findings}
        assert "timing.py" not in paths


class TestRA009HotPathPerf:
    def test_exact_findings(self):
        report = scan(["RA009"])
        assert locations(report.findings) == [
            ("kpm/ra009_bad.py", 18, "RA009"),
            ("kpm/ra009_bad.py", 19, "RA009"),
            ("kpm/ra009_bad.py", 20, "RA009"),
            ("kpm/ra009_bad.py", 28, "RA009"),
        ]

    def test_iterator_expression_allocation_is_exempt(self):
        # The np.zeros in the for-loop's *iterator* runs once, not per
        # iteration; only the loop-body allocation at line 28 fires.
        lines = [f.line for f in scan(["RA009"]).findings if "allocat" in f.message]
        assert lines == [28]

    def test_only_fires_in_hot_path_modules(self):
        paths = {f.path for f in scan(["RA009"]).findings}
        assert paths == {"kpm/ra009_bad.py"}


class TestRA010DeprecatedApi:
    def test_exact_findings(self):
        report = scan(["RA010"])
        assert locations(report.findings) == [
            ("ra010_bad.py", 20, "RA010"),
            ("ra010_bad.py", 25, "RA010"),
        ]

    def test_messages_carry_the_migration_advice(self):
        messages = [f.message for f in scan(["RA010"]).findings]
        assert all("MultiGpuKPM.run" in m for m in messages)
        assert all("compute_moments" in m for m in messages)

    def test_unknown_receiver_stays_silent(self):
        # ``engine.run(...)`` where ``engine`` is a parameter cannot be
        # resolved statically — the runtime DeprecationWarning covers it.
        lines = {f.line for f in scan(["RA010"]).findings}
        assert 35 not in lines


class TestRA011ResourceHygiene:
    def test_exact_findings(self):
        report = scan(["RA011"])
        assert locations(report.findings) == [
            ("ra011_bad.py", 17, "RA011"),
            ("ra011_bad.py", 18, "RA011"),
            ("ra011_bad.py", 19, "RA011"),
            ("ra011_bad.py", 20, "RA011"),
        ]

    def test_messages_cover_all_four_shapes(self):
        messages = [f.message for f in scan(["RA011"]).findings]
        assert any("open(" in m for m in messages)
        assert any("NamedTemporaryFile" in m for m in messages)
        assert any("span" in m for m in messages)
        assert any("without a matching STATE.reset()" in m for m in messages)

    def test_with_blocks_and_reset_stay_silent(self):
        lines = {f.line for f in scan(["RA011"]).findings}
        # balanced() spans lines 24-30: everything entered via with or reset.
        assert all(line < 24 for line in lines)


class TestRA012StaleSuppressions:
    # RA012 only makes sense under the full pack: a narrower selection
    # leaves every other rule's noqa unconsumed and therefore "stale".
    def findings(self):
        return [f for f in scan().findings if f.rule == "RA012"]

    def test_exact_findings(self):
        assert [(f.path, f.line) for f in self.findings()] == [
            ("ra012_bad.py", 7),
            ("ra012_bad.py", 10),
            ("ra012_bad.py", 16),
        ]

    def test_messages_distinguish_the_three_shapes(self):
        messages = [f.message for f in self.findings()]
        assert any("file-wide noqa for RA004 suppresses nothing" in m for m in messages)
        assert any("noqa for RA003 suppresses nothing" in m for m in messages)
        assert any("noqa for every rule suppresses nothing" in m for m in messages)

    def test_consumed_tokens_stay_silent(self):
        # The RA001 tokens on lines 9-10 shield real findings and are
        # consumed — only the RA003 token of line 10 is reported.
        line_10 = [f for f in self.findings() if f.line == 10]
        assert len(line_10) == 1
        assert "RA003" in line_10[0].message


class TestRA013DeviceArrayLifetime:
    def test_exact_findings(self):
        report = scan(["RA013"])
        assert locations(report.findings) == [
            ("ra013_bad.py", 13, "RA013"),
            ("ra013_bad.py", 19, "RA013"),
        ]

    def test_messages_distinguish_leak_from_escape(self):
        messages = [f.message for f in scan(["RA013"]).findings]
        assert any("'buf' is neither freed nor transferred" in m for m in messages)
        assert any("'out' escapes its device scope via return" in m for m in messages)

    def test_free_transfer_and_store_stay_silent(self):
        # freed_is_fine / transferred_is_fine / stored_is_fine cover the
        # three legitimate endings; only the first two functions fire.
        lines = {f.line for f in scan(["RA013"]).findings}
        assert lines == {13, 19}


class TestRA014KernelWriteSet:
    def test_exact_findings(self):
        report = scan(["RA014"])
        assert locations(report.findings) == [
            ("ra014_bad.py", 16, "RA014"),
            ("ra014_bad.py", 22, "RA014"),
        ]

    def test_messages_cover_both_store_shapes(self):
        messages = [f.message for f in scan(["RA014"]).findings]
        assert any("writes 'out.data' with indices not derived" in m for m in messages)
        assert any("updates device view 'acc' identically" in m for m in messages)

    def test_tiled_block_view_and_guarded_kernels_stay_silent(self):
        # thread_range tiling, a linear_block_id-derived view, and the
        # single-writer guard are the three legitimate write shapes.
        lines = {f.line for f in scan(["RA014"]).findings}
        assert lines == {16, 22}


class TestRA015SanitizerSuppressionAudit:
    def test_exact_findings(self):
        report = scan(["RA015"])
        assert locations(report.findings) == [
            ("ra015_bad.py", 3, "RA015"),
            ("ra015_bad.py", 4, "RA015"),
            ("ra015_bad.py", 5, "RA015"),
        ]

    def test_messages_distinguish_bare_from_unknown(self):
        messages = [f.message for f in scan(["RA015"]).findings]
        assert any("names no finding code" in m for m in messages)
        assert any("unknown finding code 'SAN999'" in m for m in messages)
        assert any("unknown finding code 'SAN042'" in m for m in messages)

    def test_named_known_code_stays_silent(self):
        # Line 5 mixes SAN001 (known) with SAN042 (unknown): only the
        # unknown code fires; line 6's well-formed ignore is silent.
        lines = [f.line for f in scan(["RA015"]).findings]
        assert lines.count(5) == 1
        assert 6 not in lines


class TestRA016StaticBounds:
    def test_exact_findings(self):
        report = scan(["RA016"])
        assert locations(report.findings) == [
            ("gpukpm/ra016_bad.py", 19, "RA016"),
        ]

    def test_certain_violation_names_the_escape(self):
        (finding,) = scan(["RA016"]).findings
        assert "oob_shift" in finding.message
        assert "upper bound n exceeds extent n" in finding.message

    def test_uncertain_issue_suppressed_by_sanitize_workload(self):
        # The same fixture reads out[k] with k <= n (may escape by one);
        # the contract's sanitize_workload shifts that uncertain
        # obligation to RA020, so only the certain write is reported.
        lines = [f.line for f in scan(["RA016"]).findings]
        assert lines == [19]


class TestRA017CrossBlockRace:
    def test_exact_findings(self):
        report = scan(["RA017"])
        assert locations(report.findings) == [
            ("gpukpm/ra017_bad.py", 19, "RA017"),
        ]

    def test_certain_self_race_is_reported(self):
        # j = block_id - block_id cancels to the constant 0: one write
        # statement races itself across blocks.
        (finding,) = scan(["RA017"]).findings
        assert "racy_reduce" in finding.message
        assert "write/write" in finding.message
        assert "overlaps across blocks" in finding.message

    def test_pinned_single_writer_is_clean(self):
        messages = [f.message for f in scan(["RA017"]).findings]
        assert not any("pinned_reduce" in m for m in messages)


class TestRA018CanonicalSweep:
    def test_exact_findings(self):
        report = scan(["RA018"])
        assert locations(report.findings) == [
            ("gpukpm/ra018_bad.py", 20, "RA018"),
            ("gpukpm/ra018_bad.py", 22, "RA018"),
        ]

    def test_messages_name_the_contraction_route(self):
        messages = [f.message for f in scan(["RA018"]).findings]
        assert any("'np.dot'" in m for m in messages)
        assert any("'@'" in m for m in messages)
        assert all("matvec / repro.sparse.sweep" in m for m in messages)


class TestRA019LaunchCoverage:
    def test_exact_findings(self):
        report = scan(["RA019"])
        assert locations(report.findings) == [
            ("gpukpm/ra019_bad.py", 18, "RA019"),
        ]

    def test_message_names_the_coverage_axis(self):
        (finding,) = scan(["RA019"]).findings
        assert "short_cover" in finding.message
        assert "exactly-once covering scheme on coverage axis 0" in finding.message


class TestRA020ProofCertificate:
    def test_exact_findings(self):
        report = scan(["RA020"])
        assert locations(report.findings) == [
            ("gpukpm/ra019_bad.py", 16, "RA020"),
            ("gpukpm/ra020_bad.py", 10, "RA020"),
            ("gpukpm/ra020_bad.py", 22, "RA020"),
            ("gpukpm/ra020_bad.py", 28, "RA020"),
        ]

    def test_messages_cover_the_three_gaps(self):
        messages = [f.message for f in scan(["RA020"]).findings]
        assert any("not statically proven" in m for m in messages)
        assert any(
            "no statically-readable KernelContract" in m for m in messages
        )
        assert any("unknown sanitize workload 'warmup'" in m for m in messages)

    def test_unreadable_contract_carries_the_extractor_error(self):
        messages = [f.message for f in scan(["RA020"]).findings]
        assert any("build_contract" in m for m in messages)

    def test_certain_failure_with_workload_stays_out_of_ra020(self):
        # ra016/ra017 fixtures carry sanitize_workload="dos": RA020
        # leaves their certain violations to RA016/RA017 rather than
        # double-reporting them.
        paths = {f.path for f in scan(["RA020"]).findings}
        assert "gpukpm/ra016_bad.py" not in paths
        assert "gpukpm/ra017_bad.py" not in paths


class TestFullSweep:
    def test_rule_totals(self):
        report = scan()
        counts: dict[str, int] = {}
        for finding in report.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        assert counts == {
            "RA001": 3,
            "RA002": 3,
            "RA003": 3,
            "RA004": 3,
            "RA005": 1,
            "RA006": 3,
            "RA007": 3,
            "RA008": 5,
            "RA009": 4,
            "RA010": 2,
            "RA011": 4,
            "RA012": 3,
            "RA013": 2,
            "RA014": 2,
            "RA015": 3,
            "RA016": 1,
            "RA017": 1,
            "RA018": 2,
            "RA019": 1,
            "RA020": 4,
        }

    def test_clean_and_suppressed_files_stay_silent(self):
        paths = {f.path for f in scan().findings}
        assert "clean.py" not in paths
        assert "noqa_suppressed.py" not in paths

    def test_ignore_drops_rules(self):
        config = AnalysisConfig(
            ignore=(
                "RA001",
                "RA002",
                "RA004",
                "RA006",
                "RA007",
                "RA008",
                "RA010",
                "RA011",
                "RA012",
                "RA013",
                "RA014",
                "RA015",
                "RA016",
                "RA017",
                "RA018",
                "RA019",
                "RA020",
            )
        )
        report = run_analysis([FIXTURES], config)
        assert {f.rule for f in report.findings} == {"RA003", "RA005", "RA009"}

    def test_severity_downgrade_keeps_finding_but_not_failure(self):
        config = AnalysisConfig(
            select=("RA009",),
            severity=(("RA009", "warning"),),
        )
        report = run_analysis([FIXTURES], config)
        assert len(report.findings) == 4
        assert all(f.severity == "warning" for f in report.findings)
        assert not report.failed

    def test_unknown_rule_id_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError, match="RA999"):
            scan(["RA999"])
