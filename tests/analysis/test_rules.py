"""Per-rule tests over the deliberately-broken fixture tree.

Each ``raNNN_bad.py`` fixture must produce *exactly* its expected
findings — path, line, and rule — and nothing else; ``clean.py`` and
``noqa_suppressed.py`` must produce nothing under any rule.
"""

from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, run_analysis

FIXTURES = Path(__file__).parent / "fixtures"


def scan(select=()):
    """Run the checker over the fixture tree with the given rule selection."""
    config = AnalysisConfig(select=tuple(select))
    return run_analysis([FIXTURES], config)


def locations(findings):
    return [(f.path, f.line, f.rule) for f in findings]


class TestRA001UnseededRng:
    def test_exact_findings(self):
        report = scan(["RA001"])
        assert locations(report.findings) == [
            ("ra001_bad.py", 3, "RA001"),
            ("ra001_bad.py", 12, "RA001"),
            ("ra001_bad.py", 13, "RA001"),
        ]

    def test_messages_name_the_offender(self):
        messages = [f.message for f in scan(["RA001"]).findings]
        assert any("stdlib 'random'" in m for m in messages)
        assert any("np.random.rand" in m for m in messages)
        assert all("philox_stream" in m for m in messages)


class TestRA002ErrorTaxonomy:
    def test_exact_findings(self):
        report = scan(["RA002"])
        assert locations(report.findings) == [
            ("ra002_bad.py", 8, "RA002"),
            ("ra002_bad.py", 14, "RA002"),
            ("ra002_bad.py", 16, "RA002"),
        ]

    def test_messages_point_at_the_taxonomy(self):
        messages = [f.message for f in scan(["RA002"]).findings]
        assert any("raise ValueError" in m for m in messages)
        assert any("raise TypeError" in m for m in messages)
        assert any("raise RuntimeError" in m for m in messages)
        assert all("repro.errors" in m for m in messages)


class TestRA003DtypeDrift:
    def test_exact_findings(self):
        report = scan(["RA003"])
        assert locations(report.findings) == [
            ("kpm/ra003_bad.py", 12, "RA003"),
            ("kpm/ra003_bad.py", 13, "RA003"),
            ("kpm/ra003_bad.py", 15, "RA003"),
        ]

    def test_only_fires_in_hot_path_modules(self):
        # The same constructors in a non-hot-path file stay legal: the
        # fixture root itself holds numpy-using files that never trigger.
        paths = {f.path for f in scan(["RA003"]).findings}
        assert paths == {"kpm/ra003_bad.py"}


class TestRA004LaunchContract:
    def test_exact_findings(self):
        report = scan(["RA004"])
        assert locations(report.findings) == [
            ("ra004_bad.py", 9, "RA004"),
            ("ra004_bad.py", 10, "RA004"),
            ("ra004_bad.py", 12, "RA004"),
        ]

    def test_messages_distinguish_the_violations(self):
        messages = [f.message for f in scan(["RA004"]).findings]
        assert any("literal block size 96" in m for m in messages)
        assert any("hard-coded grid dimension 7" in m for m in messages)
        assert any("planning layer" in m for m in messages)


class TestRA005PublicApiValidation:
    def test_exact_findings(self):
        report = scan(["RA005"])
        assert locations(report.findings) == [
            ("kpm/ra005_bad.py", 6, "RA005"),
        ]

    def test_message_names_the_function(self):
        (finding,) = scan(["RA005"]).findings
        assert "estimate_seconds" in finding.message

    def test_validated_function_passes(self):
        # make_workspace in kpm/ra003_bad.py calls check_positive_int,
        # which is validation evidence — no RA005 finding for it.
        paths = {f.path for f in scan(["RA005"]).findings}
        assert "kpm/ra003_bad.py" not in paths


class TestRA006ExportConsistency:
    def test_exact_findings(self):
        report = scan(["RA006"])
        assert locations(report.findings) == [
            ("ra006_bad.py", 3, "RA006"),
            ("ra006_bad.py", 3, "RA006"),
            ("ra006_bad.py", 10, "RA006"),
        ]

    def test_messages_cover_all_three_drift_modes(self):
        messages = [f.message for f in scan(["RA006"]).findings]
        assert any("twice" in m for m in messages)
        assert any("'missing_def' is not defined" in m for m in messages)
        assert any("'orphan' is missing from __all__" in m for m in messages)


class TestFullSweep:
    def test_rule_totals(self):
        report = scan()
        counts: dict[str, int] = {}
        for finding in report.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        assert counts == {
            "RA001": 3,
            "RA002": 3,
            "RA003": 3,
            "RA004": 3,
            "RA005": 1,
            "RA006": 3,
        }

    def test_clean_and_suppressed_files_stay_silent(self):
        paths = {f.path for f in scan().findings}
        assert "clean.py" not in paths
        assert "noqa_suppressed.py" not in paths

    def test_ignore_drops_rules(self):
        config = AnalysisConfig(ignore=("RA001", "RA002", "RA004", "RA006"))
        report = run_analysis([FIXTURES], config)
        assert {f.rule for f in report.findings} == {"RA003", "RA005"}

    def test_unknown_rule_id_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError, match="RA999"):
            scan(["RA999"])
