"""Shared fixtures: small Hamiltonians, configs, and device specs.

Everything here is sized for sub-second tests; the figure-scale runs
live in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.spec import tiny_test_device
from repro.kpm import KPMConfig
from repro.lattice import chain, cubic, square, tight_binding_hamiltonian


@pytest.fixture
def rng():
    """A deterministic NumPy generator for ad-hoc test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def chain_csr():
    """Periodic 64-site chain Hamiltonian (CSR): analytic DoS available."""
    return tight_binding_hamiltonian(chain(64), format="csr")


@pytest.fixture
def chain_dense():
    """Periodic 64-site chain Hamiltonian (dense operator)."""
    return tight_binding_hamiltonian(chain(64), format="dense")


@pytest.fixture
def cube4_csr():
    """The paper's lattice at miniature scale: 4^3 periodic cube (CSR)."""
    return tight_binding_hamiltonian(cubic(4), format="csr")


@pytest.fixture
def square_open_csr():
    """A 5x7 open-boundary square lattice: irregular coordination numbers."""
    return tight_binding_hamiltonian(square(5, 7, periodic=False), format="csr")


@pytest.fixture
def small_config():
    """Fast KPM parameters for functional tests."""
    return KPMConfig(
        num_moments=32,
        num_random_vectors=8,
        num_realizations=2,
        seed=7,
        block_size=32,
    )


@pytest.fixture
def tiny_gpu():
    """A 1 MiB-VRAM device spec for allocator/launch-limit tests."""
    return tiny_test_device()


def random_symmetric(dimension: int, seed: int = 0) -> np.ndarray:
    """Dense random symmetric matrix with spectrum roughly in [-2, 2]."""
    gen = np.random.default_rng(seed)
    a = gen.standard_normal((dimension, dimension)) / np.sqrt(dimension)
    return a + a.T
