"""Unit tests for repro.lattice.disorder and repro.lattice.graph."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lattice import (
    anderson_onsite_energies,
    bond_disorder_hoppings,
    chain,
    cubic,
    hamiltonian_from_graph,
    tight_binding_hamiltonian,
)


class TestAndersonDisorder:
    def test_shape_from_int(self):
        eps = anderson_onsite_energies(100, 2.0, seed=1)
        assert eps.shape == (100,)

    def test_shape_from_lattice(self):
        eps = anderson_onsite_energies(cubic(3), 2.0, seed=1)
        assert eps.shape == (27,)

    def test_bounded_by_half_width(self):
        eps = anderson_onsite_energies(10000, 3.0, seed=2)
        assert np.all(np.abs(eps) <= 1.5)

    def test_mean_near_zero(self):
        eps = anderson_onsite_energies(20000, 2.0, seed=3)
        assert abs(eps.mean()) < 0.05

    def test_deterministic(self):
        np.testing.assert_array_equal(
            anderson_onsite_energies(50, 1.0, seed=4),
            anderson_onsite_energies(50, 1.0, seed=4),
        )

    def test_seed_changes_draw(self):
        a = anderson_onsite_energies(50, 1.0, seed=4)
        b = anderson_onsite_energies(50, 1.0, seed=5)
        assert not np.array_equal(a, b)

    def test_rejects_nonpositive_strength(self):
        with pytest.raises(ValidationError):
            anderson_onsite_energies(10, 0.0)

    def test_feeds_hamiltonian_builder(self):
        lattice = chain(32)
        eps = anderson_onsite_energies(lattice, 2.0, seed=0)
        h = tight_binding_hamiltonian(lattice, onsite=eps, format="csr")
        np.testing.assert_allclose(h.diagonal(), eps)
        assert h.is_symmetric()


class TestBondDisorder:
    def test_one_hopping_per_bond(self):
        lattice = cubic(3)
        hoppings = bond_disorder_hoppings(lattice, seed=0)
        i, _ = lattice.neighbor_pairs()
        assert hoppings.shape == i.shape

    def test_range(self):
        hoppings = bond_disorder_hoppings(chain(1000), mean=-1.0, spread=0.2, seed=1)
        assert np.all(hoppings <= -0.9)
        assert np.all(hoppings >= -1.1)

    def test_rejects_non_lattice(self):
        with pytest.raises(ValidationError):
            bond_disorder_hoppings("nope")


class TestGraphHamiltonian:
    def test_ring_graph_matches_chain(self):
        import networkx as nx

        g = nx.cycle_graph(8)
        h_graph = hamiltonian_from_graph(g, format="dense")
        h_chain = tight_binding_hamiltonian(chain(8), format="dense")
        np.testing.assert_array_equal(h_graph.to_dense(), h_chain.to_dense())

    def test_edge_weights(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "b", t=-2.5)
        h = hamiltonian_from_graph(g, weight_attr="t", format="dense")
        assert h.to_dense()[0, 1] == -2.5

    def test_onsite_attr(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node("a", eps=1.5)
        g.add_node("b")
        g.add_edge("a", "b")
        h = hamiltonian_from_graph(g, onsite_attr="eps", format="dense")
        np.testing.assert_array_equal(np.diag(h.to_dense()), [1.5, 0.0])

    def test_self_loops_ignored(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 0)
        g.add_edge(0, 1)
        h = hamiltonian_from_graph(g, format="dense")
        assert h.to_dense()[0, 0] == 0.0

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValidationError):
            hamiltonian_from_graph(nx.Graph())

    def test_random_regular_graph_symmetric(self):
        import networkx as nx

        g = nx.random_regular_graph(3, 20, seed=1)
        h = hamiltonian_from_graph(g, format="csr")
        assert h.is_symmetric()
        np.testing.assert_array_equal(np.sort(h.row_nnz()), np.full(20, 4))
