"""Unit tests for repro.sparse.io (MatrixMarket), cross-checked vs scipy."""

import io

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lattice import cubic, tight_binding_hamiltonian
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    DenseOperator,
    read_matrix_market,
    write_matrix_market,
)


def roundtrip(matrix, **read_kwargs):
    buffer = io.StringIO()
    write_matrix_market(matrix, buffer)
    buffer.seek(0)
    return read_matrix_market(buffer, **read_kwargs)


class TestCoordinateRoundtrip:
    def test_csr_symmetric(self):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        out = roundtrip(h)
        np.testing.assert_array_equal(out.to_dense(), h.to_dense())

    def test_general_nonsymmetric(self):
        coo = COOMatrix([0, 1], [1, 2], [3.5, -1.25], (3, 4))
        out = roundtrip(coo, format="coo")
        np.testing.assert_array_equal(out.to_dense(), coo.to_dense())

    def test_symmetric_header_written(self):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        buffer = io.StringIO()
        write_matrix_market(h, buffer)
        assert "coordinate real symmetric" in buffer.getvalue().splitlines()[0]

    def test_symmetric_stores_lower_triangle_only(self):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        buffer = io.StringIO()
        write_matrix_market(h, buffer)
        header_counts = buffer.getvalue().splitlines()[1].split()
        stored = int(header_counts[2])
        # diag (27 explicit zeros) + one copy of each of 81 bonds
        assert stored == 27 + 81

    def test_forced_general(self):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        buffer = io.StringIO()
        write_matrix_market(h, buffer, symmetric=False)
        assert "general" in buffer.getvalue().splitlines()[0]
        buffer.seek(0)
        out = read_matrix_market(buffer)
        np.testing.assert_array_equal(out.to_dense(), h.to_dense())

    def test_values_exact(self):
        coo = COOMatrix([0], [0], [0.1 + 0.2], (1, 1))
        out = roundtrip(coo)
        assert out.to_dense()[0, 0] == 0.1 + 0.2

    def test_empty_matrix(self):
        coo = COOMatrix([], [], [], (3, 3))
        out = roundtrip(coo, format="coo")
        assert out.nnz_stored == 0

    def test_formats(self):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        assert isinstance(roundtrip(h, format="csr"), CSRMatrix)
        assert isinstance(roundtrip(h, format="coo"), COOMatrix)
        assert isinstance(roundtrip(h, format="dense"), DenseOperator)


class TestArrayRoundtrip:
    def test_dense_operator(self, rng):
        dense = DenseOperator(rng.standard_normal((3, 5)))
        out = roundtrip(dense, format="dense")
        np.testing.assert_array_equal(out.to_dense(), dense.to_dense())

    def test_raw_ndarray(self, rng):
        arr = rng.standard_normal((4, 2))
        buffer = io.StringIO()
        write_matrix_market(arr, buffer)
        buffer.seek(0)
        out = read_matrix_market(buffer, format="dense")
        np.testing.assert_array_equal(out.to_dense(), arr)


class TestScipyInterop:
    def test_scipy_reads_our_coordinate_files(self):
        import scipy.io as sio

        h = tight_binding_hamiltonian(cubic(3), format="csr")
        buffer = io.StringIO()
        write_matrix_market(h, buffer)
        buffer.seek(0)
        reference = sio.mmread(buffer)
        np.testing.assert_allclose(reference.toarray(), h.to_dense())

    def test_we_read_scipy_files(self, rng):
        import scipy.io as sio
        import scipy.sparse as sp

        dense = rng.standard_normal((6, 6))
        dense[np.abs(dense) < 1.0] = 0.0
        buffer = io.BytesIO()
        sio.mmwrite(buffer, sp.coo_matrix(dense))
        text = io.StringIO(buffer.getvalue().decode())
        out = read_matrix_market(text)
        np.testing.assert_allclose(out.to_dense(), dense)


class TestFileRoundtrip:
    def test_path_based(self, tmp_path):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        path = tmp_path / "h.mtx"
        write_matrix_market(h, str(path))
        out = read_matrix_market(str(path))
        np.testing.assert_array_equal(out.to_dense(), h.to_dense())


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(ValidationError, match="not a MatrixMarket header"):
            read_matrix_market(io.StringIO("nope\n"))

    def test_complex_rejected(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 2.0\n"
        with pytest.raises(ValidationError, match="only real"):
            read_matrix_market(io.StringIO(text))

    def test_bad_symmetry(self):
        text = "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"
        with pytest.raises(ValidationError, match="unsupported symmetry"):
            read_matrix_market(io.StringIO(text))

    def test_truncated_body(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
        with pytest.raises(ValidationError):
            read_matrix_market(io.StringIO(text))

    def test_unknown_format_arg(self):
        with pytest.raises(ValidationError):
            read_matrix_market(io.StringIO(""), format="csc")

    def test_unwritable_type(self):
        with pytest.raises(ValidationError):
            write_matrix_market("nope", io.StringIO())
