"""Unit tests for repro.gpu.spec and repro.gpu.thread."""

import pytest

from repro.errors import ValidationError
from repro.gpu import Dim3, GTX_580, TESLA_C1060, TESLA_C2050, as_dim3, tiny_test_device


class TestGpuSpec:
    def test_c2050_datasheet_peak(self):
        # 14 SMs x 32 DP FLOPs/cycle x 1.15 GHz = 515.2 GFLOP/s.
        assert TESLA_C2050.peak_dp_flops == pytest.approx(515.2e9)

    def test_c2050_sp_peak(self):
        # 448 cores x 2 x 1.15 GHz = 1.03 TFLOP/s.
        assert TESLA_C2050.peak_sp_flops == pytest.approx(1030.4e9)

    def test_c2050_memory(self):
        assert TESLA_C2050.global_mem_bytes == 3 * 1024**3
        assert TESLA_C2050.mem_bandwidth_bytes_per_s == 144e9

    def test_presets_distinct(self):
        assert TESLA_C1060.peak_dp_flops < TESLA_C2050.peak_dp_flops
        assert GTX_580.clock_ghz > TESLA_C2050.clock_ghz

    def test_with_updates(self):
        spec = TESLA_C2050.with_updates(mem_efficiency=0.5)
        assert spec.mem_efficiency == 0.5
        assert TESLA_C2050.mem_efficiency != 0.5

    def test_validation_positive_fields(self):
        with pytest.raises(ValidationError):
            TESLA_C2050.with_updates(sm_count=0)

    def test_validation_efficiency_range(self):
        with pytest.raises(ValidationError):
            TESLA_C2050.with_updates(flop_efficiency=1.5)

    def test_validation_negative_overheads(self):
        with pytest.raises(ValidationError):
            TESLA_C2050.with_updates(setup_overhead_s=-1.0)

    def test_tiny_device_overridable(self):
        spec = tiny_test_device(sm_count=4)
        assert spec.sm_count == 4


class TestDim3:
    def test_total(self):
        assert Dim3(4, 3, 2).total == 24

    def test_defaults(self):
        assert Dim3(7) == (7, 1, 1)

    def test_unlinearize_roundtrip(self):
        dims = Dim3(3, 4, 2)
        seen = set()
        for linear in range(dims.total):
            idx = dims.unlinearize(linear)
            assert 0 <= idx.x < 3 and 0 <= idx.y < 4 and 0 <= idx.z < 2
            seen.add(tuple(idx))
        assert len(seen) == 24

    def test_unlinearize_x_fastest(self):
        assert Dim3(3, 2).unlinearize(1) == (1, 0, 0)
        assert Dim3(3, 2).unlinearize(3) == (0, 1, 0)

    def test_unlinearize_out_of_range(self):
        with pytest.raises(ValidationError):
            Dim3(2).unlinearize(2)


class TestAsDim3:
    def test_int(self):
        assert as_dim3(5) == Dim3(5)

    def test_tuple(self):
        assert as_dim3((2, 3)) == Dim3(2, 3)

    def test_passthrough(self):
        d = Dim3(1, 2, 3)
        assert as_dim3(d) == d

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            as_dim3(0)

    def test_rejects_too_many(self):
        with pytest.raises(ValidationError):
            as_dim3((1, 2, 3, 4))

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            as_dim3(True)

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            as_dim3("big")
