"""Unit tests for repro.kpm.reconstruct."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.kpm import (
    apply_kernel_damping,
    chebyshev_grid,
    dos_from_moments,
    evaluate_series_at,
    exact_moments,
    jackson_kernel,
    reconstruct_on_chebyshev_grid,
    rescale_operator,
)
from repro.kpm.rescale import Rescaling
from repro.lattice import chain, tight_binding_hamiltonian


class TestApplyKernelDamping:
    def test_named_kernel(self):
        mu = np.ones(16)
        damped = apply_kernel_damping(mu, "jackson")
        np.testing.assert_allclose(damped, jackson_kernel(16))

    def test_explicit_coefficients(self):
        mu = np.arange(4, dtype=float)
        damped = apply_kernel_damping(mu, np.array([1.0, 0.5, 0.25, 0.0]))
        np.testing.assert_allclose(damped, [0.0, 0.5, 0.5, 0.0])

    def test_coefficient_shape_mismatch(self):
        with pytest.raises(ShapeError):
            apply_kernel_damping(np.ones(4), np.ones(5))

    def test_accepts_moment_data(self):
        class FakeMD:
            mu = np.ones(8)

        damped = apply_kernel_damping(FakeMD(), "dirichlet")
        np.testing.assert_array_equal(damped, np.ones(8))

    def test_empty_moments_rejected(self):
        with pytest.raises(ShapeError):
            apply_kernel_damping(np.empty(0), "jackson")


class TestChebyshevGrid:
    def test_range_and_order(self):
        x = chebyshev_grid(64)
        assert np.all(np.diff(x) > 0)
        assert np.all(np.abs(x) < 1.0)

    def test_symmetry(self):
        x = chebyshev_grid(32)
        np.testing.assert_allclose(x, -x[::-1], atol=1e-15)

    def test_values(self):
        x = chebyshev_grid(2)
        np.testing.assert_allclose(x, [-np.cos(np.pi / 4), np.cos(np.pi / 4)])


class TestReconstructOnGrid:
    def test_dct_matches_direct_evaluation(self):
        mu = np.exp(-0.3 * np.arange(24))
        x, f = reconstruct_on_chebyshev_grid(mu, 64)
        direct = evaluate_series_at(mu, x)
        np.testing.assert_allclose(f, direct, atol=1e-12)

    def test_constant_moments_semicircle_weight(self):
        # mu = [1, 0, 0, ...] -> f(x) = 1 / (pi sqrt(1-x^2)).
        mu = np.zeros(8)
        mu[0] = 1.0
        x, f = reconstruct_on_chebyshev_grid(mu, 128)
        np.testing.assert_allclose(f, 1.0 / (np.pi * np.sqrt(1 - x**2)), atol=1e-12)

    def test_integral_normalization(self):
        # integral over [-1,1] of the reconstruction equals mu_0.
        mu = np.zeros(16)
        mu[0] = 1.0
        mu[2] = 0.3
        x, f = reconstruct_on_chebyshev_grid(mu, 2048)
        assert np.trapezoid(f, x) == pytest.approx(1.0, abs=1e-3)

    def test_num_points_too_small(self):
        with pytest.raises(ValidationError):
            reconstruct_on_chebyshev_grid(np.ones(16), 8)


class TestEvaluateSeriesAt:
    def test_rejects_edge_points(self):
        with pytest.raises(ValidationError):
            evaluate_series_at(np.ones(4), [1.0])

    def test_scalar_input(self):
        out = evaluate_series_at(np.array([1.0, 0.0]), 0.5)
        assert out.shape == (1,)

    def test_chebyshev_orthogonality(self):
        # With mu = e_k the series is 2 T_k(x) / (pi sqrt(1-x^2)).
        mu = np.zeros(6)
        mu[3] = 1.0
        x = np.linspace(-0.9, 0.9, 7)
        expected = 2 * np.cos(3 * np.arccos(x)) / (np.pi * np.sqrt(1 - x**2))
        np.testing.assert_allclose(evaluate_series_at(mu, x), expected, atol=1e-12)


class TestDosFromMoments:
    def test_chain_matches_analytic(self):
        h = tight_binding_hamiltonian(chain(256), format="csr")
        scaled, rescaling = rescale_operator(h)
        mu = exact_moments(scaled, 256)
        energies, density = dos_from_moments(mu, rescaling, num_points=1024)
        # rho(E) = 1/(pi sqrt(4 - E^2)) for the infinite chain.
        mask = np.abs(energies) < 1.5
        analytic = 1.0 / (np.pi * np.sqrt(4.0 - energies[mask] ** 2))
        np.testing.assert_allclose(density[mask], analytic, atol=0.02)

    def test_integral_one(self):
        h = tight_binding_hamiltonian(chain(64), format="csr")
        scaled, rescaling = rescale_operator(h)
        mu = exact_moments(scaled, 64)
        energies, density = dos_from_moments(mu, rescaling, num_points=512)
        assert np.trapezoid(density, energies) == pytest.approx(1.0, abs=1e-2)

    def test_requires_rescaling_object(self):
        with pytest.raises(ValidationError):
            dos_from_moments(np.ones(8), "not-a-rescaling")

    def test_jacobian_applied(self):
        mu = np.zeros(4)
        mu[0] = 1.0
        _, density_wide = dos_from_moments(mu, Rescaling(4.0, 0.0), kernel="dirichlet", num_points=64)
        _, density_narrow = dos_from_moments(mu, Rescaling(2.0, 0.0), kernel="dirichlet", num_points=64)
        np.testing.assert_allclose(density_wide * 2, density_narrow)
