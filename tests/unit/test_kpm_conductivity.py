"""Unit tests for the Kubo-Greenwood conductivity module."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.kpm import (
    KPMConfig,
    conductivity_moments_single_vector,
    conductivity_profile,
    current_operator_from_edges,
    get_kernel,
    kubo_greenwood_conductivity,
    lattice_current_operator,
    rescale_operator,
    stochastic_conductivity_moments,
)
from repro.lattice import (
    anderson_onsite_energies,
    chain,
    square,
    tight_binding_hamiltonian,
)


@pytest.fixture(scope="module")
def chain_system():
    lattice = chain(48)
    hamiltonian = tight_binding_hamiltonian(lattice, format="csr")
    current = lattice_current_operator(lattice, 0)
    scaled, rescaling = rescale_operator(hamiltonian)
    return hamiltonian, current, scaled, rescaling


def exact_conductivity_moments(scaled, current, num_moments):
    """Eigen-based reference for mu_nm = -Tr[A T_n A T_m]/D."""
    eigenvalues, vectors = np.linalg.eigh(scaled.to_dense())
    a_rotated = vectors.T @ current.to_dense() @ vectors
    chebyshev = np.cos(
        np.outer(np.arange(num_moments), np.arccos(np.clip(eigenvalues, -1, 1)))
    )
    dim = eigenvalues.size
    return np.einsum("kl,nl,mk->nm", a_rotated**2, chebyshev, chebyshev) / dim


def kpm_delta_reference(mu_exact, rescaling, energies, kernel, scaled, current):
    """Self-consistent reference: the double sum with the *KPM* deltas.

    With exact moments the profile is identically
    ``pi * sum_kl |A_kl|^2 d(x, x_k) d(x, x_l) / (D a^2)`` where ``d`` is
    the kernel-damped KPM delta — an algebraic identity this function
    evaluates directly from the spectrum.
    """
    eigenvalues, vectors = np.linalg.eigh(scaled.to_dense())
    a_rotated = vectors.T @ current.to_dense() @ vectors
    num_moments = mu_exact.shape[0]
    g = get_kernel(kernel, num_moments)
    weights = g * (2.0 - (np.arange(num_moments) == 0))
    x = rescaling.to_scaled(np.asarray(energies))

    def kpm_delta(points):
        theta_x = np.arccos(x)
        theta_k = np.arccos(np.clip(points, -1, 1))
        series = np.einsum(
            "n,nk,ne->ke",
            weights,
            np.cos(np.outer(np.arange(num_moments), theta_k)),
            np.cos(np.outer(np.arange(num_moments), theta_x)),
        )
        return series / (np.pi * np.sqrt(1 - x**2))[None, :]

    deltas = kpm_delta(eigenvalues)  # (D, M)
    dim = eigenvalues.size
    j = np.einsum("kl,ke,le->e", a_rotated**2, deltas, deltas) / dim
    return np.pi * j * rescaling.density_jacobian**2


class TestCurrentOperator:
    def test_antisymmetric(self, chain_system):
        _, current, _, _ = chain_system
        dense = current.to_dense()
        np.testing.assert_allclose(dense, -dense.T, atol=1e-14)

    def test_matches_commutator_open_chain(self):
        # On an open chain X is well defined: A must equal [H, X].
        lattice = chain(16, periodic=False)
        hamiltonian = tight_binding_hamiltonian(lattice, format="dense").to_dense()
        positions = np.diag(np.arange(16.0))
        commutator = hamiltonian @ positions - positions @ hamiltonian
        current = lattice_current_operator(lattice, 0, format="dense")
        np.testing.assert_allclose(current.to_dense(), commutator, atol=1e-14)

    def test_square_lattice_axis_selects_bonds(self):
        lattice = square(6)
        current_x = lattice_current_operator(lattice, 0)
        current_y = lattice_current_operator(lattice, 1)
        # Each axis operator holds one bond (+ conjugate) per site.
        assert current_x.nnz_stored == 2 * 36
        assert not np.allclose(current_x.to_dense(), current_y.to_dense())

    def test_axis_out_of_range(self):
        with pytest.raises(ValidationError):
            lattice_current_operator(chain(8), 1)

    def test_edge_builder_shape_mismatch(self):
        with pytest.raises(ShapeError):
            current_operator_from_edges(4, [0], [1, 2], [1.0])


class TestMoments:
    def test_stochastic_matches_exact(self, chain_system):
        _, current, scaled, _ = chain_system
        config = KPMConfig(num_moments=16, num_random_vectors=64, seed=0)
        stochastic = stochastic_conductivity_moments(scaled, current, config)
        exact = exact_conductivity_moments(scaled, current, 16)
        assert np.max(np.abs(stochastic - exact)) < 0.15

    def test_symmetric_in_indices(self, chain_system):
        # Tr[A T_n A T_m] is symmetric under n <-> m.
        _, current, scaled, _ = chain_system
        exact = exact_conductivity_moments(scaled, current, 12)
        np.testing.assert_allclose(exact, exact.T, atol=1e-12)

    def test_single_vector_deterministic(self, chain_system):
        _, current, scaled, _ = chain_system
        r0 = np.ones(48)
        a = conductivity_moments_single_vector(scaled, current, r0, 8)
        b = conductivity_moments_single_vector(scaled, current, r0, 8)
        np.testing.assert_array_equal(a, b)

    def test_dimension_mismatch(self, chain_system):
        _, current, scaled, _ = chain_system
        with pytest.raises(ShapeError):
            conductivity_moments_single_vector(scaled, current, np.ones(5), 8)


class TestProfile:
    def test_matches_kpm_delta_identity(self, chain_system):
        # With exact moments the profile equals the eigen double sum with
        # KPM-broadened deltas — an algebraic identity, so 1e-9 agreement.
        _, current, scaled, rescaling = chain_system
        mu_exact = exact_conductivity_moments(scaled, current, 24)
        energies = np.array([-1.0, 0.0, 0.7])
        kpm = conductivity_profile(mu_exact, rescaling, energies)
        reference = kpm_delta_reference(
            mu_exact, rescaling, energies, "jackson", scaled, current
        )
        np.testing.assert_allclose(kpm, reference, rtol=1e-9)

    def test_nonnegative(self, chain_system):
        _, current, scaled, rescaling = chain_system
        mu_exact = exact_conductivity_moments(scaled, current, 32)
        energies = np.linspace(-1.8, 1.8, 41)
        sigma = conductivity_profile(mu_exact, rescaling, energies)
        assert sigma.min() >= -1e-10

    def test_particle_hole_symmetric(self, chain_system):
        _, current, scaled, rescaling = chain_system
        mu_exact = exact_conductivity_moments(scaled, current, 32)
        plus = conductivity_profile(mu_exact, rescaling, np.array([0.8]))
        minus = conductivity_profile(mu_exact, rescaling, np.array([-0.8]))
        assert plus[0] == pytest.approx(minus[0], rel=1e-9)

    def test_energy_outside_interval(self, chain_system):
        _, _, _, rescaling = chain_system
        with pytest.raises(ValidationError):
            conductivity_profile(np.eye(8), rescaling, [100.0])

    def test_rejects_nonsquare_moments(self, chain_system):
        _, _, _, rescaling = chain_system
        with pytest.raises(ShapeError):
            conductivity_profile(np.ones((4, 5)), rescaling, [0.0])


class TestPhysics:
    def test_disorder_suppresses_conductivity(self):
        lattice = chain(96)
        current = lattice_current_operator(lattice, 0)
        clean = tight_binding_hamiltonian(lattice, format="csr")
        eps = anderson_onsite_energies(lattice, 3.0, seed=4)
        dirty = tight_binding_hamiltonian(lattice, onsite=eps, format="csr")
        config = KPMConfig(num_moments=32, num_random_vectors=12, seed=1)
        energies = np.array([0.0])
        sigma_clean = kubo_greenwood_conductivity(clean, current, energies, config)
        sigma_dirty = kubo_greenwood_conductivity(dirty, current, energies, config)
        assert sigma_dirty[0] < 0.6 * sigma_clean[0]

    def test_gap_suppresses_conductivity(self):
        # SSH dimerized chain: alternating hoppings open a gap
        # 2|t1 - t2| around E = 0 — no states, no transport there.
        from repro.lattice import hamiltonian_from_edges

        length = 96
        lattice = chain(length)
        i, j = lattice.neighbor_pairs()
        order = np.argsort(i)
        i, j = i[order], j[order]
        hoppings = np.where(np.arange(length) % 2 == 0, -1.0, -0.4)
        ssh = hamiltonian_from_edges(length, i, j, hopping=hoppings)
        current_ssh = current_operator_from_edges(
            length, i, j, np.ones(length), hopping=hoppings
        )
        uniform = tight_binding_hamiltonian(lattice, format="csr")
        current_uniform = lattice_current_operator(lattice, 0)

        config = KPMConfig(num_moments=48, num_random_vectors=12, seed=2)
        energies = np.array([0.0])
        sigma_gapped = kubo_greenwood_conductivity(ssh, current_ssh, energies, config)
        sigma_metal = kubo_greenwood_conductivity(
            uniform, current_uniform, energies, config
        )
        assert sigma_gapped[0] < 0.1 * sigma_metal[0]
