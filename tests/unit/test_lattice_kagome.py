"""Unit tests for the kagome builder — pinned by its exact flat band."""

import numpy as np
import pytest

from repro.lattice import hamiltonian_from_edges, kagome_edges


class TestKagomeGeometry:
    def test_site_count(self):
        num_sites, _, _ = kagome_edges(4, 5)
        assert num_sites == 60

    def test_periodic_bond_count(self):
        # 6 bonds per 3-site unit cell (coordination 4).
        num_sites, i, _ = kagome_edges(4, 4, periodic=True)
        assert len(i) == 6 * 16

    def test_coordination_four(self):
        num_sites, i, j = kagome_edges(5, 5, periodic=True)
        counts = np.zeros(num_sites, dtype=int)
        np.add.at(counts, i, 1)
        np.add.at(counts, j, 1)
        np.testing.assert_array_equal(counts, np.full(num_sites, 4))

    def test_no_self_loops_or_duplicates(self):
        _, i, j = kagome_edges(4, 4, periodic=True)
        assert not np.any(i == j)
        keys = set(map(tuple, np.sort(np.stack([i, j], axis=1), axis=1)))
        assert len(keys) == len(i)

    def test_open_has_fewer_bonds(self):
        _, i_per, _ = kagome_edges(4, 4, periodic=True)
        _, i_open, _ = kagome_edges(4, 4, periodic=False)
        assert len(i_open) < len(i_per)

    def test_periodic_needs_two_cells(self):
        with pytest.raises(ValueError):
            kagome_edges(1, 4, periodic=True)


class TestKagomePhysics:
    @pytest.fixture(scope="class")
    def spectrum(self):
        num_sites, i, j = kagome_edges(6, 6, periodic=True)
        h = hamiltonian_from_edges(num_sites, i, j, format="dense")
        return num_sites, np.linalg.eigvalsh(h.to_dense())

    def test_flat_band_at_plus_two(self, spectrum):
        # One third of all states sit exactly at E = -2t = +2 (plus the
        # band-touching state of the periodic cluster).
        num_sites, eigenvalues = spectrum
        flat = np.sum(np.abs(eigenvalues - 2.0) < 1e-8)
        assert flat == num_sites // 3 + 1

    def test_band_bottom_at_minus_four(self, spectrum):
        _, eigenvalues = spectrum
        assert eigenvalues[0] == pytest.approx(-4.0, abs=1e-10)

    def test_nothing_above_flat_band(self, spectrum):
        _, eigenvalues = spectrum
        assert eigenvalues[-1] <= 2.0 + 1e-10

    def test_kpm_sees_flat_band_peak(self):
        from repro.kpm import KPMConfig, compute_dos

        num_sites, i, j = kagome_edges(12, 12, periodic=True)
        h = hamiltonian_from_edges(num_sites, i, j, format="csr")
        config = KPMConfig(num_moments=128, num_random_vectors=16, seed=1)
        result = compute_dos(h, config)
        at_flat = result.evaluate(np.array([2.0]))[0]
        in_bulk = result.evaluate(np.array([-1.0]))[0]
        # The delta-function band dwarfs the dispersive bands.
        assert at_flat > 5.0 * in_bulk
