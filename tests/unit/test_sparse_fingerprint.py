"""Unit tests for the stable content fingerprints on matrix types."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lattice import chain, cubic, tight_binding_hamiltonian
from repro.sparse import COOMatrix, CSRMatrix, DenseOperator
from repro.sparse.csr import content_fingerprint


class TestContentFingerprint:
    def test_equal_matrices_collide(self):
        a = tight_binding_hamiltonian(cubic(4), format="csr")
        b = tight_binding_hamiltonian(cubic(4), format="csr")
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_perturbed_matrix_differs(self):
        a = tight_binding_hamiltonian(chain(32), format="csr")
        data = a.data.copy()
        data[0] += 1e-12
        b = CSRMatrix(a.indptr, a.indices, data, a.shape)
        assert a.fingerprint() != b.fingerprint()

    def test_structure_change_differs(self):
        periodic = tight_binding_hamiltonian(chain(32), format="csr")
        open_chain = tight_binding_hamiltonian(
            chain(32, periodic=False), format="csr"
        )
        assert periodic.fingerprint() != open_chain.fingerprint()

    def test_stable_across_calls(self):
        a = tight_binding_hamiltonian(chain(16), format="csr")
        assert a.fingerprint() == a.fingerprint()
        assert len(a.fingerprint()) == 64  # sha256 hex

    def test_coo_collides_with_equal_csr(self):
        csr = tight_binding_hamiltonian(chain(16), format="csr")
        rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
        coo = COOMatrix(rows, csr.indices, csr.data, csr.shape)
        assert coo.fingerprint() == csr.fingerprint()

    def test_dense_differs_from_csr(self):
        # Dense matvec has a different reduction order than CSR, so the
        # two representations must not share moment-cache entries.
        csr = tight_binding_hamiltonian(chain(16), format="csr")
        dense = DenseOperator(csr.to_dense())
        assert dense.fingerprint() != csr.fingerprint()

    def test_dense_content_hash(self):
        a = DenseOperator(np.eye(4))
        b = DenseOperator(np.eye(4))
        c = DenseOperator(np.diag([1.0, 1.0, 1.0, 1.0 + 1e-9]))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_helper_validates_tag(self):
        with pytest.raises(ValidationError):
            content_fingerprint("", (2, 2), np.zeros(2))

    def test_tag_separates_representations(self):
        arr = np.arange(4, dtype=np.float64)
        assert content_fingerprint("a", (2, 2), arr) != content_fingerprint(
            "b", (2, 2), arr
        )
