"""Unit tests for repro.gpu.memory (pool + device arrays)."""

import numpy as np
import pytest

from repro.errors import DeviceError, OutOfMemoryError, ShapeError, ValidationError
from repro.gpu import Device, MemoryPool, tiny_test_device


class TestMemoryPool:
    def test_reserve_release(self):
        pool = MemoryPool(1000)
        pool.reserve(400)
        assert pool.used_bytes == 400
        pool.release(400)
        assert pool.used_bytes == 0

    def test_capacity_enforced(self):
        pool = MemoryPool(100)
        with pytest.raises(OutOfMemoryError, match="out of memory"):
            pool.reserve(101)

    def test_peak_tracked(self):
        pool = MemoryPool(1000)
        pool.reserve(600)
        pool.release(600)
        pool.reserve(100)
        assert pool.peak_bytes == 600

    def test_release_more_than_used(self):
        pool = MemoryPool(100)
        with pytest.raises(DeviceError):
            pool.release(1)

    def test_allocation_count(self):
        pool = MemoryPool(1000)
        pool.reserve(1)
        pool.reserve(1)
        assert pool.allocation_count == 2

    def test_reset(self):
        pool = MemoryPool(100)
        pool.reserve(50)
        pool.reset()
        assert pool.used_bytes == 0
        assert pool.peak_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            MemoryPool(0)


class TestDeviceArray:
    @pytest.fixture
    def device(self):
        return Device(tiny_test_device())

    def test_alloc_zero_initialized(self, device):
        arr = device.alloc((8, 8), name="a")
        np.testing.assert_array_equal(arr.data, np.zeros((8, 8)))

    def test_alloc_dtype(self, device):
        arr = device.alloc(4, dtype=np.int64, name="idx")
        assert arr.dtype == np.int64

    def test_oom_raised(self, device):
        with pytest.raises(OutOfMemoryError):
            device.alloc((1024, 1024))

    def test_free_returns_capacity(self, device):
        arr = device.alloc((100,))
        used = device.memory.used_bytes
        arr.free()
        assert device.memory.used_bytes == used - 800

    def test_double_free_rejected(self, device):
        arr = device.alloc(4)
        arr.free()
        with pytest.raises(DeviceError, match="already freed"):
            arr.free()

    def test_use_after_free_in_transfer(self, device):
        arr = device.alloc(4)
        arr.free()
        with pytest.raises(DeviceError):
            device.memcpy_htod(arr, np.zeros(4))

    def test_htod_dtoh_roundtrip(self, device, rng):
        host = rng.standard_normal(32)
        arr = device.alloc(32)
        device.memcpy_htod(arr, host)
        out = np.empty(32)
        device.memcpy_dtoh(out, arr)
        np.testing.assert_array_equal(out, host)

    def test_transfer_shape_mismatch(self, device):
        arr = device.alloc(8)
        with pytest.raises(ShapeError):
            device.memcpy_htod(arr, np.zeros(9))

    def test_transfers_charged_to_pcie(self, device):
        arr = device.alloc(1000)
        seconds = device.memcpy_htod(arr, np.zeros(1000))
        spec = device.spec
        expected = spec.pcie_latency_s + 8000 / spec.pcie_bandwidth_bytes_per_s
        assert seconds == pytest.approx(expected)
        assert device.profiler.transfer_seconds == pytest.approx(expected)
