"""Unit tests for repro.obs.compare (the perf-regression gate)."""

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry, RunRecord, Tracer, compare_records


def record_with(costs, metrics=None, label="run"):
    """Build a RunRecord whose span labels carry the given modeled costs."""
    tracer = Tracer()
    for span_label, seconds in costs.items():
        with tracer.span(span_label):
            tracer.advance(seconds)
    registry = MetricsRegistry()
    for name, value in (metrics or {}).items():
        registry.set_gauge(name, value)
    return RunRecord(label=label, spans=tracer.finish(), metrics=registry)


class TestGate:
    def test_identical_records_pass(self):
        baseline = record_with({"a": 1.0, "b": 2.0})
        result = compare_records(baseline, record_with({"a": 1.0, "b": 2.0}))
        assert result.ok
        assert [d.status for d in result.deltas] == ["ok", "ok"]

    def test_within_tolerance_passes(self):
        baseline = record_with({"a": 1.0})
        result = compare_records(baseline, record_with({"a": 1.05}), tolerance=0.10)
        assert result.ok

    def test_regression_fails(self):
        baseline = record_with({"a": 1.0, "b": 1.0})
        result = compare_records(
            baseline, record_with({"a": 1.5, "b": 1.0}), tolerance=0.10
        )
        assert not result.ok
        assert [d.label for d in result.failures] == ["a"]
        assert result.failures[0].status == "regression"
        assert result.failures[0].ratio == pytest.approx(1.5)
        assert "FAIL" in result.summary()

    def test_missing_label_fails(self):
        result = compare_records(record_with({"a": 1.0, "b": 1.0}), record_with({"a": 1.0}))
        assert not result.ok
        assert result.failures[0].status == "missing"
        assert result.failures[0].label == "b"

    def test_new_label_passes(self):
        result = compare_records(record_with({"a": 1.0}), record_with({"a": 1.0, "c": 9.0}))
        assert result.ok
        assert {d.label: d.status for d in result.deltas}["c"] == "new"

    def test_floor_absorbs_zero_baseline(self):
        baseline = record_with({"a": 0.0})
        assert compare_records(baseline, record_with({"a": 5e-10})).ok
        assert not compare_records(baseline, record_with({"a": 1e-6})).ok

    def test_improvement_always_passes(self):
        result = compare_records(record_with({"a": 2.0}), record_with({"a": 0.1}))
        assert result.ok


class TestBandsAndIgnore:
    def test_band_override_widens_tolerance(self):
        baseline = record_with({"serve.batch": 1.0, "gpu.moments": 1.0})
        current = record_with({"serve.batch": 1.2, "gpu.moments": 1.2})
        strict = compare_records(baseline, current, tolerance=0.10)
        assert {d.label for d in strict.failures} == {"serve.batch", "gpu.moments"}
        banded = compare_records(
            baseline, current, tolerance=0.10, bands={"serve.*": 0.30}
        )
        assert {d.label for d in banded.failures} == {"gpu.moments"}

    def test_ignore_drops_labels_entirely(self):
        baseline = record_with({"a": 1.0}, metrics={"bench.fig5.N512.gpu_seconds": 1.0})
        current = record_with({"a": 1.0})
        assert not compare_records(baseline, current).ok
        ignored = compare_records(baseline, current, ignore=("bench.*",))
        assert ignored.ok
        assert all(not d.label.startswith("bench.") for d in ignored.deltas)


class TestMetrics:
    def test_seconds_metrics_compared(self):
        baseline = record_with({}, metrics={"x.modeled_seconds": 1.0, "x.depth": 1.0})
        current = record_with({}, metrics={"x.modeled_seconds": 2.0, "x.depth": 99.0})
        result = compare_records(baseline, current)
        # Only *seconds* and quality metrics participate; depth is ignored.
        assert [d.label for d in result.deltas] == ["x.modeled_seconds"]
        assert not result.ok


class TestHigherIsBetterMetrics:
    def test_rate_drop_is_a_regression(self):
        baseline = record_with({}, metrics={"serve.cache_hit_rate": 0.8})
        current = record_with({}, metrics={"serve.cache_hit_rate": 0.5})
        result = compare_records(baseline, current, tolerance=0.10)
        assert not result.ok
        [delta] = result.failures
        assert delta.label == "serve.cache_hit_rate"
        assert delta.direction == "higher"
        assert "higher is better" in delta.summary()

    def test_rate_rise_passes(self):
        baseline = record_with({}, metrics={"serve.cache_hit_rate": 0.5})
        current = record_with({}, metrics={"serve.cache_hit_rate": 0.9})
        assert compare_records(baseline, current).ok

    def test_rate_within_band_passes(self):
        baseline = record_with({}, metrics={"serve.modeled_speedup": 2.0})
        current = record_with({}, metrics={"serve.modeled_speedup": 1.85})
        assert compare_records(baseline, current, tolerance=0.10).ok
        assert not compare_records(baseline, current, tolerance=0.05).ok

    def test_speedup_and_ratio_names_gated(self):
        baseline = record_with(
            {}, metrics={"a.speedup": 3.0, "b.efficiency_ratio": 1.0}
        )
        current = record_with(
            {}, metrics={"a.speedup": 1.0, "b.efficiency_ratio": 0.2}
        )
        result = compare_records(baseline, current)
        assert {d.label for d in result.failures} == {
            "a.speedup", "b.efficiency_ratio",
        }

    def test_span_labels_stay_lower_is_better(self):
        # A span named like a quality metric is still a cost.
        baseline = record_with({"compute.rate_limiter": 1.0})
        current = record_with({"compute.rate_limiter": 2.0})
        assert not compare_records(baseline, current).ok


class TestValidation:
    def test_rejects_non_records(self):
        with pytest.raises(ValidationError):
            compare_records({}, record_with({}))

    def test_rejects_bad_tolerance_and_bands(self):
        baseline = record_with({"a": 1.0})
        with pytest.raises(ValidationError):
            compare_records(baseline, baseline, tolerance=-0.1)
        with pytest.raises(ValidationError):
            compare_records(baseline, baseline, bands={"a": -1.0})
        with pytest.raises(ValidationError):
            compare_records(baseline, baseline, ignore=("",))
        with pytest.raises(ValidationError):
            compare_records(baseline, baseline, floor_seconds=-1.0)
