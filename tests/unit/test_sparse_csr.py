"""Unit tests for repro.sparse.CSRMatrix."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.sparse import COOMatrix, CSRMatrix


def dense_example():
    return np.array(
        [
            [2.0, -1.0, 0.0, 0.0],
            [-1.0, 2.0, -1.0, 0.0],
            [0.0, -1.0, 2.0, -1.0],
            [0.0, 0.0, -1.0, 2.0],
        ]
    )


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = dense_example()
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)
        assert csr.nnz_stored == 10

    def test_from_dense_tolerance(self):
        dense = np.array([[1.0, 1e-12], [0.0, 2.0]])
        csr = CSRMatrix.from_dense(dense, tolerance=1e-9)
        assert csr.nnz_stored == 2

    def test_from_dense_negative_tolerance(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_dense(np.eye(2), tolerance=-1.0)

    def test_identity(self):
        eye = CSRMatrix.identity(5)
        np.testing.assert_array_equal(eye.to_dense(), np.eye(5))

    def test_indptr_wrong_length(self):
        with pytest.raises(ShapeError):
            CSRMatrix([0, 1], [0], [1.0], (2, 2))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValidationError):
            CSRMatrix([1, 1, 2], [0, 1], [1.0, 2.0], (2, 2))

    def test_indptr_decreasing_rejected(self):
        with pytest.raises((ValidationError, ShapeError)):
            CSRMatrix([0, 2, 1], [0, 1, 0], [1.0, 2.0, 3.0], (2, 2))

    def test_duplicate_column_in_row_rejected(self):
        with pytest.raises(ValidationError, match="strictly increasing"):
            CSRMatrix([0, 2], [1, 1], [1.0, 2.0], (1, 3))

    def test_unsorted_columns_rejected(self):
        with pytest.raises(ValidationError, match="strictly increasing"):
            CSRMatrix([0, 2], [2, 0], [1.0, 2.0], (1, 3))

    def test_column_out_of_range(self):
        with pytest.raises(ValidationError):
            CSRMatrix([0, 1], [5], [1.0], (1, 3))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError):
            CSRMatrix([0, 1], [0], [np.inf], (1, 1))


class TestMatvec:
    def test_matches_dense(self, rng):
        dense = dense_example()
        csr = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(4)
        np.testing.assert_allclose(csr.matvec(x), dense @ x)

    def test_empty_rows(self):
        csr = COOMatrix([0, 3], [1, 2], [4.0, 5.0], (4, 4)).to_csr()
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(csr.matvec(x), csr.to_dense() @ x)

    def test_all_empty(self):
        csr = COOMatrix([], [], [], (3, 3)).to_csr()
        np.testing.assert_array_equal(csr.matvec(np.ones(3)), np.zeros(3))

    def test_wrong_length_rejected(self):
        csr = CSRMatrix.identity(3)
        with pytest.raises(ShapeError):
            csr.matvec(np.ones(4))

    def test_rectangular(self, rng):
        dense = rng.standard_normal((3, 5))
        dense[np.abs(dense) < 0.5] = 0.0
        csr = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(5)
        np.testing.assert_allclose(csr.matvec(x), dense @ x)

    def test_matches_scipy(self, rng):
        import scipy.sparse as sp

        dense = rng.standard_normal((20, 20))
        dense[np.abs(dense) < 1.0] = 0.0
        csr = CSRMatrix.from_dense(dense)
        reference = sp.csr_matrix(dense)
        x = rng.standard_normal(20)
        np.testing.assert_allclose(csr.matvec(x), reference @ x)


class TestMatmat:
    def test_matches_dense(self, rng):
        dense = dense_example()
        csr = CSRMatrix.from_dense(dense)
        block = rng.standard_normal((4, 6))
        np.testing.assert_allclose(csr.matmat(block), dense @ block)

    def test_consistent_with_matvec(self, rng):
        dense = dense_example()
        csr = CSRMatrix.from_dense(dense)
        block = rng.standard_normal((4, 3))
        result = csr.matmat(block)
        for k in range(3):
            np.testing.assert_allclose(result[:, k], csr.matvec(block[:, k]))

    def test_empty_rows_block(self):
        csr = COOMatrix([2], [0], [1.5], (4, 4)).to_csr()
        block = np.ones((4, 2))
        expected = np.zeros((4, 2))
        expected[2] = 1.5
        np.testing.assert_array_equal(csr.matmat(block), expected)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            CSRMatrix.identity(3).matmat(np.ones((4, 2)))

    def test_dot_dispatch(self, rng):
        csr = CSRMatrix.from_dense(dense_example())
        vec = rng.standard_normal(4)
        block = rng.standard_normal((4, 2))
        np.testing.assert_allclose(csr.dot(vec), csr.matvec(vec))
        np.testing.assert_allclose(csr @ block, csr.matmat(block))
        with pytest.raises(ShapeError):
            csr.dot(np.ones((2, 2, 2)))


class TestTransforms:
    def test_transpose(self, rng):
        dense = rng.standard_normal((5, 3))
        dense[np.abs(dense) < 0.8] = 0.0
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.transpose().to_dense(), dense.T)

    def test_scale_shift(self):
        csr = CSRMatrix.from_dense(dense_example())
        result = csr.scale_shift(0.5, -1.0)
        np.testing.assert_allclose(
            result.to_dense(), 0.5 * dense_example() - np.eye(4)
        )

    def test_scale_only_keeps_pattern(self):
        csr = CSRMatrix.from_dense(dense_example())
        result = csr.scale_shift(2.0, 0.0)
        np.testing.assert_array_equal(result.indptr, csr.indptr)
        np.testing.assert_allclose(result.data, csr.data * 2.0)

    def test_scale_shift_inserts_diagonal(self):
        # Matrix with no stored diagonal must gain one under a shift.
        csr = COOMatrix([0, 1], [1, 0], [1.0, 1.0], (2, 2)).to_csr()
        result = csr.scale_shift(1.0, 3.0)
        np.testing.assert_allclose(result.diagonal(), [3.0, 3.0])

    def test_scale_shift_requires_square(self):
        csr = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            csr.scale_shift(1.0, 1.0)

    def test_to_coo_roundtrip(self):
        csr = CSRMatrix.from_dense(dense_example())
        np.testing.assert_array_equal(csr.to_coo().to_csr().to_dense(), dense_example())


class TestSpectralHelpers:
    def test_diagonal(self):
        csr = CSRMatrix.from_dense(dense_example())
        np.testing.assert_array_equal(csr.diagonal(), np.full(4, 2.0))

    def test_diagonal_with_unstored_entries(self):
        csr = COOMatrix([0], [1], [7.0], (2, 2)).to_csr()
        np.testing.assert_array_equal(csr.diagonal(), [0.0, 0.0])

    def test_offdiag_abs_row_sums(self):
        csr = CSRMatrix.from_dense(dense_example())
        np.testing.assert_array_equal(
            csr.offdiag_abs_row_sums(), [1.0, 2.0, 2.0, 1.0]
        )

    def test_is_symmetric_true(self):
        assert CSRMatrix.from_dense(dense_example()).is_symmetric()

    def test_is_symmetric_false(self):
        assert not CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]])).is_symmetric()

    def test_is_symmetric_tolerance(self):
        dense = dense_example()
        dense[0, 1] += 1e-12
        csr = CSRMatrix.from_dense(dense)
        assert not csr.is_symmetric()
        assert csr.is_symmetric(tolerance=1e-10)

    def test_rectangular_not_symmetric(self):
        assert not CSRMatrix.from_dense(np.ones((2, 3))).is_symmetric()

    def test_max_row_nnz(self):
        csr = CSRMatrix.from_dense(dense_example())
        assert csr.max_row_nnz == 3

    def test_nbytes_positive(self):
        assert CSRMatrix.identity(4).nbytes > 0
