"""Unit tests for repro.serve.cache (bounded LRU moment cache)."""

import pytest

from repro.errors import ValidationError
from repro.serve import CacheEntry, MomentCache


def entry(tag: str) -> CacheEntry:
    return CacheEntry(moments=tag, rescaling=None, engine="numpy", modeled_seconds=1.0)


class TestMomentCache:
    def test_miss_then_hit(self):
        cache = MomentCache(capacity=4)
        assert cache.get(("a",)) is None
        cache.put(("a",), entry("a"))
        assert cache.get(("a",)).moments == "a"
        assert (cache.hits, cache.misses) == (1, 1)
        assert ("a",) in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = MomentCache(capacity=2)
        cache.put(("a",), entry("a"))
        cache.put(("b",), entry("b"))
        cache.get(("a",))  # refresh "a": "b" is now least-recently-used
        cache.put(("c",), entry("c"))
        assert ("a",) in cache
        assert ("b",) not in cache
        assert ("c",) in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = MomentCache(capacity=2)
        cache.put(("a",), entry("a"))
        cache.put(("b",), entry("b"))
        cache.put(("a",), entry("a2"))  # re-put refreshes, overwrites
        cache.put(("c",), entry("c"))
        assert cache.get(("a",)).moments == "a2"
        assert ("b",) not in cache

    def test_zero_capacity_disables(self):
        cache = MomentCache(capacity=0)
        cache.put(("a",), entry("a"))
        assert len(cache) == 0
        assert cache.get(("a",)) is None

    def test_clear_keeps_counters(self):
        cache = MomentCache(capacity=4)
        cache.put(("a",), entry("a"))
        cache.get(("a",))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            MomentCache(capacity=-1)
        with pytest.raises(ValidationError):
            MomentCache(4).put(("a",), "not-an-entry")
