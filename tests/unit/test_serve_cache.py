"""Unit tests for repro.serve.cache (bounded LRU prefix moment cache)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm.moments import MomentData
from repro.serve import CacheEntry, MomentCache


def entry(tag: str) -> CacheEntry:
    return CacheEntry(moments=tag, rescaling=None, engine="numpy", modeled_seconds=1.0)


def array_entry(num_moments: int, state=None) -> CacheEntry:
    return CacheEntry(
        moments=np.arange(num_moments, dtype=np.float64),
        rescaling=None,
        engine="numpy",
        modeled_seconds=1.0,
        state=state,
    )


def moment_data_entry(num_moments: int) -> CacheEntry:
    per = np.ones((2, num_moments), dtype=np.float64)
    data = MomentData(
        mu=per.mean(axis=0), per_realization=per, dimension=8, num_vectors=4
    )
    return CacheEntry(
        moments=data, rescaling=None, engine="gpu-sim", modeled_seconds=1.0
    )


class TestMomentCache:
    def test_miss_then_hit(self):
        cache = MomentCache(capacity=4)
        assert cache.get(("a",)) is None
        cache.put(("a",), entry("a"))
        assert cache.get(("a",)).moments == "a"
        assert (cache.hits, cache.misses) == (1, 1)
        assert ("a",) in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = MomentCache(capacity=2)
        cache.put(("a",), entry("a"))
        cache.put(("b",), entry("b"))
        cache.get(("a",))  # refresh "a": "b" is now least-recently-used
        cache.put(("c",), entry("c"))
        assert ("a",) in cache
        assert ("b",) not in cache
        assert ("c",) in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = MomentCache(capacity=2)
        cache.put(("a",), entry("a"))
        cache.put(("b",), entry("b"))
        cache.put(("a",), entry("a2"))  # re-put refreshes, overwrites
        cache.put(("c",), entry("c"))
        assert cache.get(("a",)).moments == "a2"
        assert ("b",) not in cache

    def test_zero_capacity_disables(self):
        cache = MomentCache(capacity=0)
        cache.put(("a",), entry("a"))
        assert len(cache) == 0
        assert cache.get(("a",)) is None

    def test_clear_keeps_counters(self):
        cache = MomentCache(capacity=4)
        cache.put(("a",), entry("a"))
        cache.get(("a",))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            MomentCache(capacity=-1)
        with pytest.raises(ValidationError):
            MomentCache(4).put(("a",), "not-an-entry")


class TestPrefixLookup:
    def test_shorter_order_hits_as_slice(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), array_entry(16))
        hit = cache.get(("k",), num_moments=10)
        assert hit is not None
        assert hit.num_moments == 10
        assert np.array_equal(hit.moments, np.arange(10, dtype=np.float64))
        assert (cache.hits, cache.misses, cache.prefix_hits) == (1, 0, 1)
        # The stored entry keeps its full length.
        assert cache.entry_at(("k",)).num_moments == 16

    def test_exact_order_hits_without_prefix_counter(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), array_entry(16))
        hit = cache.get(("k",), num_moments=16)
        assert hit.num_moments == 16
        assert (cache.hits, cache.prefix_hits) == (1, 0)

    def test_longer_order_misses(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), array_entry(16))
        assert cache.get(("k",), num_moments=17) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_exact_mode_rejects_prefix(self):
        cache = MomentCache(capacity=4, prefix=False)
        cache.put(("k",), array_entry(16))
        assert cache.get(("k",), num_moments=10) is None
        assert cache.get(("k",), num_moments=16) is not None
        assert (cache.hits, cache.misses, cache.prefix_hits) == (1, 1, 0)

    def test_prefix_slices_drop_recursion_state(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), array_entry(16, state=object()))
        hit = cache.get(("k",), num_moments=10)
        assert hit.state is None
        assert cache.entry_at(("k",)).state is not None

    def test_prefix_of_moment_data_slices_both_tables(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), moment_data_entry(12))
        hit = cache.get(("k",), num_moments=5)
        assert hit.moments.num_moments == 5
        assert hit.moments.per_realization.shape == (2, 5)

    def test_prefix_beyond_stored_raises(self):
        with pytest.raises(ValidationError, match="exceeds"):
            array_entry(8).prefix(9)

    def test_keep_longer_on_collision(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), array_entry(16))
        cache.put(("k",), array_entry(8))  # stale short recompute
        assert cache.entry_at(("k",)).num_moments == 16
        cache.put(("k",), array_entry(24))  # extension wins
        assert cache.entry_at(("k",)).num_moments == 24

    def test_extended_put_counts(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), array_entry(8, state=object()))
        cache.put(("k",), array_entry(16), extended=True)
        assert cache.extensions == 1


class TestPeekExtendable:
    def test_finds_resumable_strict_prefix(self):
        cache = MomentCache(capacity=4)
        stored = array_entry(8, state=object())
        cache.put(("k",), stored)
        peek = cache.peek_extendable(("k",), 16)
        assert peek is not None
        assert peek.num_moments == 8
        assert peek.state is stored.state
        # peek never counts a lookup.
        assert (cache.hits, cache.misses) == (0, 0)

    def test_requires_state_and_strictness(self):
        cache = MomentCache(capacity=4)
        cache.put(("a",), array_entry(8))  # no checkpoint
        cache.put(("b",), array_entry(16, state=object()))  # already long enough
        assert cache.peek_extendable(("a",), 16) is None
        assert cache.peek_extendable(("b",), 16) is None
        assert cache.peek_extendable(("missing",), 16) is None

    def test_disabled_in_exact_mode(self):
        cache = MomentCache(capacity=4, prefix=False)
        cache.put(("k",), array_entry(8, state=object()))
        assert cache.peek_extendable(("k",), 16) is None


class TestFrozenEntries:
    """Satellite: cached arrays are shared — mutation must fail loudly."""

    def test_cached_ndarray_is_read_only(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), array_entry(8))
        hit = cache.get(("k",))
        with pytest.raises(ValueError, match="read-only"):
            hit.moments[0] = 99.0

    def test_cached_moment_data_is_read_only(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), moment_data_entry(8))
        hit = cache.get(("k",))
        with pytest.raises(ValueError, match="read-only"):
            hit.moments.mu[0] = 99.0
        with pytest.raises(ValueError, match="read-only"):
            hit.moments.per_realization[0, 0] = 99.0

    def test_prefix_slice_inherits_read_only(self):
        cache = MomentCache(capacity=4)
        cache.put(("k",), array_entry(8))
        hit = cache.get(("k",), num_moments=4)
        with pytest.raises(ValueError, match="read-only"):
            hit.moments[0] = 99.0
