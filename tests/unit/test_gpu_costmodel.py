"""Unit tests for repro.gpu.costmodel — the roofline's limiting behaviors."""

import pytest

from repro.errors import ValidationError
from repro.gpu import (
    KernelStats,
    TESLA_C2050,
    compute_occupancy,
    kernel_cost,
    transfer_cost,
)


def cost(stats, *, grid_blocks=64, block_size=256, shared=0):
    occupancy = compute_occupancy(TESLA_C2050, block_size, shared_bytes_per_block=shared)
    return kernel_cost(TESLA_C2050, stats, grid_blocks=grid_blocks, occupancy=occupancy)


class TestRooflineSides:
    def test_compute_bound_detection(self):
        stats = KernelStats(flops=1e12, gmem_read_bytes=1e3)
        result = cost(stats)
        assert result.bound == "compute"
        assert result.compute_seconds > result.memory_seconds

    def test_memory_bound_detection(self):
        stats = KernelStats(flops=1e3, gmem_read_bytes=1e12)
        result = cost(stats)
        assert result.bound == "memory"

    def test_compute_time_scales_with_flops(self):
        t1 = cost(KernelStats(flops=1e11)).total_seconds
        t2 = cost(KernelStats(flops=2e11)).total_seconds
        assert t2 == pytest.approx(2 * t1 - TESLA_C2050.kernel_launch_overhead_s, rel=1e-6)

    def test_launch_overhead_floor(self):
        result = cost(KernelStats())
        assert result.total_seconds == pytest.approx(TESLA_C2050.kernel_launch_overhead_s)


class TestUtilizationEffects:
    def test_few_blocks_halve_compute(self):
        stats = KernelStats(flops=1e12)
        full = cost(stats, grid_blocks=14)
        half = cost(stats, grid_blocks=7)
        assert half.sm_utilization == pytest.approx(0.5)
        assert half.compute_seconds == pytest.approx(2 * full.compute_seconds)

    def test_thread_efficiency_scales_compute(self):
        base = cost(KernelStats(flops=1e12))
        degraded = cost(KernelStats(flops=1e12, thread_efficiency=0.5))
        assert degraded.compute_seconds == pytest.approx(2 * base.compute_seconds)

    def test_coalescing_scales_memory(self):
        base = cost(KernelStats(gmem_read_bytes=1e12))
        strided = cost(KernelStats(gmem_read_bytes=1e12, coalescing=0.5))
        assert strided.memory_seconds == pytest.approx(2 * base.memory_seconds)

    def test_wave_count(self):
        # 256-thread blocks: 6 resident/SM, 84-wide waves on 14 SMs.
        result = cost(KernelStats(flops=1.0), grid_blocks=85)
        assert result.wave_count == 2
        assert cost(KernelStats(flops=1.0), grid_blocks=84).wave_count == 1


class TestL2Reuse:
    def test_l2_resident_rereads_faster(self):
        footprint = 256 * 1024  # fits the 768 KiB L2
        traffic = 1e12
        cached = cost(
            KernelStats(gmem_read_bytes=traffic, footprint_bytes=footprint)
        )
        streaming = cost(KernelStats(gmem_read_bytes=traffic))
        assert cached.memory_seconds < streaming.memory_seconds

    def test_footprint_above_l2_streams(self):
        traffic = 1e12
        big_footprint = 4 * 1024 * 1024
        result = cost(
            KernelStats(gmem_read_bytes=traffic, footprint_bytes=big_footprint)
        )
        plain = cost(KernelStats(gmem_read_bytes=traffic))
        assert result.memory_seconds == pytest.approx(plain.memory_seconds)

    def test_footprint_capped_at_traffic(self):
        # A declared footprint larger than the traffic must not go negative.
        result = cost(
            KernelStats(gmem_read_bytes=100.0, footprint_bytes=1e9)
        )
        assert result.memory_seconds > 0


class TestValidation:
    def test_zero_blocks_rejected(self):
        occupancy = compute_occupancy(TESLA_C2050, 128)
        with pytest.raises(ValidationError):
            kernel_cost(TESLA_C2050, KernelStats(), grid_blocks=0, occupancy=occupancy)

    def test_requires_spec(self):
        occupancy = compute_occupancy(TESLA_C2050, 128)
        with pytest.raises(ValidationError):
            kernel_cost("gpu", KernelStats(), grid_blocks=1, occupancy=occupancy)


class TestTransferCost:
    def test_latency_plus_bandwidth(self):
        seconds = transfer_cost(TESLA_C2050, 6_000_000_000)
        assert seconds == pytest.approx(TESLA_C2050.pcie_latency_s + 1.0)

    def test_zero_bytes_latency_only(self):
        assert transfer_cost(TESLA_C2050, 0) == TESLA_C2050.pcie_latency_s

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            transfer_cost(TESLA_C2050, -1)


class TestKernelStatsMerge:
    def test_merge_sums_work(self):
        a = KernelStats(flops=1.0, gmem_read_bytes=2.0, gmem_write_bytes=3.0)
        a.merge(KernelStats(flops=10.0, gmem_read_bytes=20.0, gmem_write_bytes=30.0))
        assert a.flops == 11.0
        assert a.gmem_read_bytes == 22.0
        assert a.gmem_write_bytes == 33.0

    def test_merge_takes_max_footprint_min_factors(self):
        a = KernelStats(footprint_bytes=10.0, coalescing=1.0, thread_efficiency=1.0)
        a.merge(KernelStats(footprint_bytes=5.0, coalescing=0.5, thread_efficiency=0.8))
        assert a.footprint_bytes == 10.0
        assert a.coalescing == 0.5
        assert a.thread_efficiency == 0.8
