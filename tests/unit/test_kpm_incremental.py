"""Unit tests for repro.kpm.SpectralDensity (incremental refinement)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm import SpectralDensity, exact_moments, rescale_operator
from repro.lattice import chain, cubic, tight_binding_hamiltonian


@pytest.fixture
def hamiltonian():
    return tight_binding_hamiltonian(cubic(4), format="csr")


class TestAccumulation:
    def test_starts_empty(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=16)
        assert sd.num_vectors == 0
        with pytest.raises(ValidationError, match="add_vectors"):
            sd.moments()

    def test_add_vectors_grows_table(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=16)
        sd.add_vectors(4).add_vectors(3)
        assert sd.num_vectors == 7

    def test_incremental_equals_one_shot(self, hamiltonian):
        one_shot = SpectralDensity(hamiltonian, num_moments=16, seed=5)
        one_shot.add_vectors(10)
        stepwise = SpectralDensity(hamiltonian, num_moments=16, seed=5)
        for _ in range(5):
            stepwise.add_vectors(2)
        np.testing.assert_allclose(
            one_shot.moments().mu, stepwise.moments().mu, atol=1e-13
        )

    def test_matvec_counter(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=16)
        sd.add_vectors(4)
        assert sd.matvecs_performed == 15 * 4

    def test_mu0_is_one_for_rademacher(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=8)
        sd.add_vectors(3)
        assert sd.moments().mu[0] == pytest.approx(1.0)


class TestAddMoments:
    def test_extends_order(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=8, seed=2)
        sd.add_vectors(4)
        sd.add_moments(8)
        assert sd.num_moments == 16
        assert sd.moments().mu.shape == (16,)

    def test_low_orders_unchanged(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=8, seed=2)
        sd.add_vectors(4)
        before = sd.moments().mu.copy()
        sd.add_moments(8)
        np.testing.assert_allclose(sd.moments().mu[:8], before, atol=1e-12)

    def test_counts_resume_cost(self, hamiltonian):
        # Resuming from the checkpoint costs one matvec per new order
        # per vector — not a full replay from mu_0.
        sd = SpectralDensity(hamiltonian, num_moments=8, seed=2)
        sd.add_vectors(4)
        cost_before = sd.matvecs_performed
        sd.add_moments(8)
        assert sd.matvecs_performed == cost_before + 8 * 4

    def test_extension_bitwise_equals_one_shot(self, hamiltonian):
        extended = SpectralDensity(hamiltonian, num_moments=8, seed=2)
        extended.add_vectors(4)
        extended.add_moments(8)
        one_shot = SpectralDensity(hamiltonian, num_moments=16, seed=2)
        one_shot.add_vectors(4)
        assert np.array_equal(extended.moments().mu, one_shot.moments().mu)

    def test_extension_across_groups(self, hamiltonian):
        # Each add_vectors group resumes from its own checkpoint.
        extended = SpectralDensity(hamiltonian, num_moments=8, seed=2)
        extended.add_vectors(3).add_vectors(2)
        extended.add_moments(8).add_moments(4)
        one_shot = SpectralDensity(hamiltonian, num_moments=20, seed=2)
        one_shot.add_vectors(3).add_vectors(2)
        assert np.array_equal(extended.moments().mu, one_shot.moments().mu)

    def test_add_moments_before_vectors(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=8)
        sd.add_moments(8)
        sd.add_vectors(2)
        assert sd.moments().mu.shape == (16,)

    def test_failure_leaves_state_untouched(self, hamiltonian):
        # Satellite regression: an exception mid-extension must not
        # corrupt the accumulated state (previously num_moments was
        # bumped and the table wiped *before* recomputing).
        sd = SpectralDensity(hamiltonian, num_moments=8, seed=2)
        sd.add_vectors(4)
        table_before = sd.moments().mu.copy()
        cost_before = sd.matvecs_performed

        class ExplodingOperator:
            # Delegates the operator protocol but fails every product.
            def __init__(self, inner):
                self._inner = inner
                self.shape = inner.shape

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def matvec(self, x):
                raise RuntimeError("device lost")

            def matmat(self, x):
                raise RuntimeError("device lost")

        healthy = sd.scaled
        sd.scaled = ExplodingOperator(healthy)
        with pytest.raises(RuntimeError, match="device lost"):
            sd.add_moments(8)
        sd.scaled = healthy
        assert sd.num_moments == 8
        assert sd.matvecs_performed == cost_before
        np.testing.assert_array_equal(sd.moments().mu, table_before)
        # The object is still fully usable afterwards.
        sd.add_moments(8)
        assert sd.moments().mu.shape == (16,)


class TestErrorEstimates:
    def test_infinite_before_two_vectors(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=8)
        sd.add_vectors(1)
        assert sd.density_error_estimate() == float("inf")

    def test_error_shrinks_with_vectors(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=32, seed=0)
        sd.add_vectors(4)
        coarse = sd.density_error_estimate()
        sd.add_vectors(60)
        fine = sd.density_error_estimate()
        assert fine < coarse / 2

    def test_refinement_loop_converges_to_exact(self, hamiltonian):
        scaled, _ = rescale_operator(hamiltonian)
        reference = exact_moments(scaled, 32)
        sd = SpectralDensity(hamiltonian, num_moments=32, seed=1)
        sd.add_vectors(8)
        while sd.density_error_estimate() > 5e-3 and sd.num_vectors < 512:
            sd.add_vectors(16)
        np.testing.assert_allclose(sd.moments().mu, reference, atol=0.03)


class TestDos:
    def test_normalized(self, hamiltonian):
        sd = SpectralDensity(hamiltonian, num_moments=64, seed=3)
        sd.add_vectors(16)
        energies, density = sd.dos(num_points=512)
        assert np.trapezoid(density, energies) == pytest.approx(1.0, abs=0.02)

    def test_matches_compute_dos_pipeline(self):
        from repro.kpm import KPMConfig, compute_dos

        h = tight_binding_hamiltonian(chain(64), format="csr")
        sd = SpectralDensity(h, num_moments=32, seed=7)
        sd.add_vectors(8)
        config = KPMConfig(
            num_moments=32, num_random_vectors=8, num_realizations=1, seed=7
        )
        reference = compute_dos(h, config)
        np.testing.assert_allclose(
            sd.moments().mu, reference.moments.mu, atol=1e-13
        )
        _, density = sd.dos(num_points=reference.config.num_energy_points)
        np.testing.assert_allclose(density, reference.density, atol=1e-10)
