"""Unit tests for repro.sparse.COOMatrix."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.sparse import COOMatrix


def make_simple():
    # [[1, 2], [0, 3]]
    return COOMatrix([0, 0, 1], [0, 1, 1], [1.0, 2.0, 3.0], (2, 2))


class TestConstruction:
    def test_basic(self):
        coo = make_simple()
        assert coo.shape == (2, 2)
        assert coo.nnz_stored == 3

    def test_mismatched_lengths(self):
        with pytest.raises(ShapeError):
            COOMatrix([0], [0, 1], [1.0, 2.0], (2, 2))

    def test_row_out_of_range(self):
        with pytest.raises(ValidationError):
            COOMatrix([2], [0], [1.0], (2, 2))

    def test_col_out_of_range(self):
        with pytest.raises(ValidationError):
            COOMatrix([0], [5], [1.0], (2, 2))

    def test_negative_index(self):
        with pytest.raises(ValidationError):
            COOMatrix([-1], [0], [1.0], (2, 2))

    def test_nonfinite_value(self):
        with pytest.raises(ValidationError):
            COOMatrix([0], [0], [np.nan], (2, 2))

    def test_bad_shape(self):
        with pytest.raises(ValidationError):
            COOMatrix([], [], [], (0, 2))

    def test_empty_matrix_ok(self):
        coo = COOMatrix([], [], [], (3, 3))
        assert coo.nnz_stored == 0
        np.testing.assert_array_equal(coo.to_dense(), np.zeros((3, 3)))


class TestDuplicates:
    def test_sum_duplicates_merges(self):
        coo = COOMatrix([0, 0, 0], [1, 1, 0], [1.0, 2.0, 5.0], (2, 2))
        merged = coo.sum_duplicates()
        assert merged.nnz_stored == 2
        dense = merged.to_dense()
        assert dense[0, 1] == 3.0
        assert dense[0, 0] == 5.0

    def test_sum_duplicates_idempotent(self):
        merged = make_simple().sum_duplicates()
        assert merged.sum_duplicates() is merged

    def test_to_dense_sums_duplicates(self):
        coo = COOMatrix([1, 1], [0, 0], [2.0, 3.0], (2, 2))
        assert coo.to_dense()[1, 0] == 5.0

    def test_eliminate_zeros(self):
        coo = COOMatrix([0, 0, 1], [0, 0, 1], [1.0, -1.0, 2.0], (2, 2))
        cleaned = coo.eliminate_zeros()
        assert cleaned.nnz_stored == 1
        assert cleaned.to_dense()[1, 1] == 2.0


class TestConversions:
    def test_to_csr_roundtrip(self):
        coo = make_simple()
        np.testing.assert_array_equal(coo.to_csr().to_dense(), coo.to_dense())

    def test_to_csr_with_empty_rows(self):
        coo = COOMatrix([0, 3], [1, 2], [4.0, 5.0], (4, 4))
        csr = coo.to_csr()
        np.testing.assert_array_equal(csr.row_nnz(), [1, 0, 0, 1])
        np.testing.assert_array_equal(csr.to_dense(), coo.to_dense())

    def test_transpose(self):
        coo = make_simple()
        np.testing.assert_array_equal(coo.transpose().to_dense(), coo.to_dense().T)

    def test_transpose_rectangular(self):
        coo = COOMatrix([0], [2], [1.0], (2, 3))
        assert coo.transpose().shape == (3, 2)

    def test_matches_scipy(self, rng):
        import scipy.sparse as sp

        dense = rng.random((7, 5))
        dense[dense < 0.6] = 0.0
        rows, cols = np.nonzero(dense)
        coo = COOMatrix(rows, cols, dense[rows, cols], dense.shape)
        reference = sp.coo_matrix((dense[rows, cols], (rows, cols)), shape=dense.shape)
        np.testing.assert_allclose(coo.to_csr().to_dense(), reference.toarray())
