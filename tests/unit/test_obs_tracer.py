"""Unit tests for repro.obs.span / repro.obs.tracer (the modeled-clock recorder)."""

import pytest

from repro.errors import ValidationError
from repro.gpu import TESLA_C2050
from repro.gpu.device import Device
from repro.gpu.kernel import kernel
from repro.obs import NULL_TRACER, NullTracer, Span, Tracer, current_tracer

import numpy as np


@kernel("obs_probe")
def probe_kernel(ctx, arr):
    ctx.charge(flops=10.0, gmem_read=80.0)


class TestSpan:
    def test_nesting_and_walk(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("mid"):
                with tracer.span("inner"):
                    tracer.advance(1.0)
            with tracer.span("sibling"):
                tracer.advance(0.5)
        labels = [span.label for span in outer.walk()]
        assert labels == ["outer", "mid", "inner", "sibling"]
        assert outer.duration == pytest.approx(1.5)
        assert outer.children[0].children[0].duration == pytest.approx(1.0)

    def test_indices_are_creation_ordered(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        indices = [span.index for root in tracer.finish() for span in root.walk()]
        assert indices == [0, 1, 2]

    def test_self_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.advance(1.0)
            with tracer.span("inner"):
                tracer.advance(2.0)
        root = tracer.finish()[0]
        assert root.self_seconds == pytest.approx(1.0)

    def test_attribute_scalars_only(self):
        span = Span(label="x")
        span.set(dim=4, label="y", flag=True, ratio=0.5, none=None)
        with pytest.raises(ValidationError):
            span.set(bad=[1, 2])
        with pytest.raises(ValidationError):
            span.add_event({"seconds": [1]})
        with pytest.raises(ValidationError):
            span.add_event("not a dict")

    def test_annotations_excluded_from_equality_and_dict(self):
        a = Span(label="x", end=1.0)
        b = Span(label="x", end=1.0)
        a.annotate(wall_seconds=123.0)
        assert a == b
        assert "annotations" not in a.to_dict()
        assert a.to_dict(include_annotations=True)["annotations"] == {
            "wall_seconds": 123.0
        }

    def test_dict_roundtrip(self):
        tracer = Tracer()
        with tracer.span("outer", category="pipeline", dim=8) as outer:
            outer.add_event({"kind": "kernel", "name": "k", "start": 0.0, "seconds": 1.0})
            with tracer.span("inner"):
                tracer.advance(2.0)
        rebuilt = Span.from_dict(outer.to_dict())
        assert rebuilt == outer

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValidationError):
            Span.from_dict({"no_label": True})


class TestTracer:
    def test_advance_validation(self):
        tracer = Tracer()
        with pytest.raises(ValidationError):
            tracer.advance(-1.0)
        with pytest.raises(ValidationError):
            tracer.advance(float("nan"))
        with pytest.raises(ValidationError):
            tracer.advance("fast")

    def test_empty_label_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValidationError):
            with tracer.span(""):
                pass

    def test_finish_rejects_open_spans(self):
        tracer = Tracer()
        cm = tracer.span("open")
        cm.__enter__()
        with pytest.raises(ValidationError):
            tracer.finish()

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        root = tracer.finish()[0]
        assert root.end is not None

    def test_device_span_captures_events_and_advances(self):
        tracer = Tracer()
        device = Device(TESLA_C2050)
        with tracer.span("root"):
            with tracer.device_span("work", device) as span:
                arr = device.alloc(16)
                device.memcpy_htod(arr, np.zeros(16))
                device.launch(probe_kernel, grid=1, block=32, args=(arr,))
        assert tracer.clock == pytest.approx(device.modeled_seconds)
        kinds = [event["kind"] for event in span.events]
        assert kinds == ["setup", "transfer", "kernel"]
        # Events tile the span contiguously on the modeled clock.
        cursor = span.start
        for event in span.events:
            assert event["start"] == pytest.approx(cursor)
            cursor += event["seconds"]
        assert cursor == pytest.approx(span.end)

    def test_device_span_only_captures_new_events(self):
        tracer = Tracer()
        device = Device(TESLA_C2050)
        arr = device.alloc(16)
        device.launch(probe_kernel, grid=1, block=32, args=(arr,))
        before = device.modeled_seconds
        with tracer.device_span("later", device) as span:
            device.launch(probe_kernel, grid=1, block=32, args=(arr,))
        assert len(span.events) == 1
        assert tracer.clock == pytest.approx(device.modeled_seconds - before)


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not current_tracer().enabled

    def test_activate_scopes_the_tracer(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        with null.span("x", category="cli", attr=1) as span:
            span.set(a=1).annotate(b=2)
            span.add_event({"kind": "kernel"})
        null.advance(5.0)
        device = Device(TESLA_C2050)
        with null.device_span("y", device):
            pass
        # Same shared inert span object, nothing recorded anywhere.
        assert null.span("z") is null.device_span("w", device)
