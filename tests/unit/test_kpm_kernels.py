"""Unit tests for repro.kpm.kernels."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm import (
    available_kernels,
    dirichlet_kernel,
    fejer_kernel,
    get_kernel,
    jackson_kernel,
    lanczos_kernel,
    lorentz_kernel,
)


class TestJackson:
    def test_g0_is_one(self):
        assert jackson_kernel(64)[0] == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        g = jackson_kernel(128)
        assert np.all(np.diff(g) < 0)

    def test_positive(self):
        assert np.all(jackson_kernel(256) > 0)

    def test_last_coefficient_small(self):
        g = jackson_kernel(128)
        assert g[-1] < 0.001

    def test_known_small_case(self):
        # N=2: g1 = [2 cos(pi/3) + sin(pi/3) cot(pi/3)] / 3
        #         = [1 + (sqrt(3)/2)(1/sqrt(3))] / 3 = 0.5.
        g = jackson_kernel(2)
        assert g[1] == pytest.approx(0.5)

    def test_broadening_matches_theory(self):
        # Delta at x=0 reconstructs to a peak of width ~ pi/N.
        from repro.kpm.reconstruct import evaluate_series_at

        n = 128
        mu = np.ones(n)  # moments of delta(x): T_n(0)... actually delta at 0 has mu_n = T_n(0)
        mu = np.array([np.cos(n_ * np.pi / 2) for n_ in range(n)])
        damped = jackson_kernel(n) * mu
        x = np.linspace(-0.2, 0.2, 2001)
        f = evaluate_series_at(damped, x)
        half_max = f.max() / 2
        width = x[f > half_max][-1] - x[f > half_max][0]
        sigma_theory = np.pi / n
        fwhm_theory = 2.355 * sigma_theory
        assert width == pytest.approx(fwhm_theory, rel=0.25)


class TestLorentz:
    def test_g0_is_one(self):
        assert lorentz_kernel(64)[0] == pytest.approx(1.0)

    def test_resolution_parameter(self):
        tight = lorentz_kernel(64, resolution=2.0)
        loose = lorentz_kernel(64, resolution=6.0)
        # Larger lambda damps high orders harder.
        assert loose[32] < tight[32]

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValidationError):
            lorentz_kernel(64, resolution=0.0)


class TestOtherKernels:
    def test_fejer_linear(self):
        g = fejer_kernel(4)
        np.testing.assert_allclose(g, [1.0, 0.75, 0.5, 0.25])

    def test_dirichlet_all_ones(self):
        np.testing.assert_array_equal(dirichlet_kernel(8), np.ones(8))

    def test_lanczos_bounds_between(self):
        g = lanczos_kernel(64, smoothing=3)
        assert g[0] == pytest.approx(1.0)
        assert np.all(g <= 1.0)
        assert np.all(g >= 0.0)

    def test_all_kernels_shape_and_g0(self):
        for name in available_kernels():
            g = get_kernel(name, 32)
            assert g.shape == (32,)
            assert g[0] == pytest.approx(1.0)


class TestRegistry:
    def test_available_sorted(self):
        names = available_kernels()
        assert list(names) == sorted(names)
        assert "jackson" in names

    def test_unknown_kernel(self):
        with pytest.raises(ValidationError, match="unknown kernel"):
            get_kernel("bogus", 16)

    def test_kwargs_forwarded(self):
        g = get_kernel("lorentz", 16, resolution=5.0)
        np.testing.assert_allclose(g, lorentz_kernel(16, resolution=5.0))

    def test_non_string_name(self):
        with pytest.raises(ValidationError):
            get_kernel(42, 16)
