"""Unit tests for repro.sanitize.findings (codes, findings, report JSON)."""

import json

import pytest

from repro.errors import ValidationError
from repro.sanitize import (
    FINDING_CODES,
    SanitizerFinding,
    SanitizerReport,
    check_finding_code,
    load_sanitizer_report,
    write_sanitizer_report,
)


def make_report(label="test"):
    findings = [
        SanitizerFinding(
            code="SAN006",
            array="mu",
            kernel="k",
            launch_index=1,
            block=2,
            message="overlap",
        ),
        SanitizerFinding(code="SAN001", array="ws", message="uninit"),
    ]
    return SanitizerReport(
        label=label,
        workload={"n": 4},
        findings=findings,
        suppressed=[SanitizerFinding(code="SAN005", array="tmp", message="leak")],
        stats={"launches_checked": 3, "findings": 2, "suppressed": 1},
    )


class TestFindingCodes:
    def test_seven_stable_codes(self):
        assert sorted(FINDING_CODES) == [f"SAN00{i}" for i in range(1, 8)]

    def test_check_finding_code_roundtrips(self):
        assert check_finding_code("SAN003") == "SAN003"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValidationError, match="SAN999"):
            check_finding_code("SAN999")

    def test_finding_validates_its_code(self):
        with pytest.raises(ValidationError, match="SAN000"):
            SanitizerFinding(code="SAN000", array="x")


class TestSanitizerFinding:
    def test_render_names_the_context(self):
        finding = SanitizerFinding(
            code="SAN006", array="mu", kernel="k", launch_index=0, block=2, message="m"
        )
        line = finding.render()
        assert "SAN006" in line
        assert "write-write-hazard" in line
        assert "'mu'" in line
        assert "block 2" in line

    def test_host_side_finding_renders_without_kernel(self):
        line = SanitizerFinding(code="SAN004", array="a", message="m").render()
        assert "block" not in line

    def test_json_roundtrip(self):
        finding = SanitizerFinding(
            code="SAN007", array="a", kernel="k", launch_index=3, block=1, message="m"
        )
        assert SanitizerFinding.from_json(finding.to_json()) == finding


class TestSanitizerReport:
    def test_clean_flag(self):
        assert SanitizerReport(label="x").clean
        assert not make_report().clean

    def test_counts_by_code_includes_zeros(self):
        counts = make_report().counts_by_code()
        assert counts["SAN001"] == 1
        assert counts["SAN006"] == 1
        assert counts["SAN002"] == 0
        assert set(counts) == set(FINDING_CODES)

    def test_findings_serialized_sorted(self):
        data = make_report().to_dict()
        codes = [f["code"] for f in data["findings"]]
        assert codes == sorted(codes)

    def test_json_is_deterministic(self):
        assert make_report().to_json() == make_report().to_json()
        assert make_report().fingerprint() == make_report().fingerprint()

    def test_fingerprint_sees_every_field(self):
        base = make_report().fingerprint()
        assert make_report(label="other").fingerprint() != base
        relabeled = make_report()
        relabeled.stats["launches_checked"] += 1
        assert relabeled.fingerprint() != base

    def test_dict_roundtrip_preserves_fingerprint(self):
        report = make_report()
        rebuilt = SanitizerReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.fingerprint() == report.fingerprint()
        assert rebuilt.findings == sorted(report.findings)

    def test_schema_mismatch_rejected(self):
        data = make_report().to_dict()
        data["schema"] = "repro.sanitize/99"
        with pytest.raises(ValidationError, match="schema"):
            SanitizerReport.from_dict(data)

    def test_missing_label_rejected(self):
        data = make_report().to_dict()
        data["label"] = ""
        with pytest.raises(ValidationError, match="label"):
            SanitizerReport.from_dict(data)


class TestReportFiles:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "report.json"
        report = make_report()
        write_sanitizer_report(report, path)
        loaded = load_sanitizer_report(path)
        assert loaded.fingerprint() == report.fingerprint()

    def test_written_file_is_byte_stable(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_sanitizer_report(make_report(), first)
        write_sanitizer_report(make_report(), second)
        assert first.read_bytes() == second.read_bytes()
        assert first.read_bytes().endswith(b"\n")

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_sanitizer_report(tmp_path / "absent.json")

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="ascii")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_sanitizer_report(path)

    def test_write_rejects_non_report(self, tmp_path):
        with pytest.raises(ValidationError, match="SanitizerReport"):
            write_sanitizer_report({"label": "x"}, tmp_path / "x.json")
