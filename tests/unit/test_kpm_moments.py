"""Unit tests for repro.kpm.moments."""

import numpy as np
import pytest

from repro.errors import ShapeError, SpectrumError, ValidationError
from repro.kpm import (
    KPMConfig,
    MomentData,
    exact_moments,
    moments_block,
    moments_single_vector,
    rescale_operator,
    stochastic_moments,
)
from repro.lattice import chain, cubic, tight_binding_hamiltonian


@pytest.fixture
def scaled_chain():
    h = tight_binding_hamiltonian(chain(32), format="csr")
    scaled, _ = rescale_operator(h)
    return scaled


def chebyshev_reference(operator, r0, n):
    """O(N D^2) direct reference via eigendecomposition."""
    dense = operator.to_dense()
    eigenvalues, vectors = np.linalg.eigh(dense)
    coeffs = vectors.T @ r0
    return np.array(
        [np.sum(coeffs**2 * np.cos(k * np.arccos(np.clip(eigenvalues, -1, 1)))) for k in range(n)]
    )


class TestSingleVector:
    def test_matches_eigen_reference(self, scaled_chain, rng):
        r0 = rng.standard_normal(32)
        mu = moments_single_vector(scaled_chain, r0, 12)
        np.testing.assert_allclose(mu, chebyshev_reference(scaled_chain, r0, 12), atol=1e-10)

    def test_mu0_is_norm_squared(self, scaled_chain, rng):
        r0 = rng.standard_normal(32)
        mu = moments_single_vector(scaled_chain, r0, 3)
        assert mu[0] == pytest.approx(r0 @ r0)

    def test_single_moment(self, scaled_chain, rng):
        r0 = rng.standard_normal(32)
        assert moments_single_vector(scaled_chain, r0, 1).shape == (1,)

    def test_doubling_matches_plain(self, scaled_chain, rng):
        r0 = rng.standard_normal(32)
        plain = moments_single_vector(scaled_chain, r0, 17)
        doubled = moments_single_vector(scaled_chain, r0, 17, use_doubling=True)
        np.testing.assert_allclose(doubled, plain, atol=1e-10)

    def test_doubling_even_count(self, scaled_chain, rng):
        r0 = rng.standard_normal(32)
        plain = moments_single_vector(scaled_chain, r0, 16)
        doubled = moments_single_vector(scaled_chain, r0, 16, use_doubling=True)
        np.testing.assert_allclose(doubled, plain, atol=1e-10)

    def test_wrong_vector_length(self, scaled_chain):
        with pytest.raises(ShapeError):
            moments_single_vector(scaled_chain, np.ones(5), 4)

    def test_unscaled_operator_diverges(self):
        h = tight_binding_hamiltonian(chain(32), format="csr")  # spectrum [-2, 2]
        with pytest.raises(SpectrumError, match="rescale"):
            moments_single_vector(h, np.ones(32), 200)


class TestBlock:
    def test_matches_single(self, scaled_chain, rng):
        block = rng.standard_normal((32, 4))
        mu_block = moments_block(scaled_chain, block, 10)
        for k in range(4):
            np.testing.assert_allclose(
                mu_block[:, k],
                moments_single_vector(scaled_chain, block[:, k], 10),
                atol=1e-10,
            )

    def test_doubling_matches(self, scaled_chain, rng):
        block = rng.standard_normal((32, 3))
        plain = moments_block(scaled_chain, block, 9)
        doubled = moments_block(scaled_chain, block, 9, use_doubling=True)
        np.testing.assert_allclose(doubled, plain, atol=1e-10)

    def test_shape_check(self, scaled_chain):
        with pytest.raises(ShapeError):
            moments_block(scaled_chain, np.ones(32), 4)

    def test_divergence_detected(self):
        h = tight_binding_hamiltonian(chain(32), format="csr")
        with pytest.raises(SpectrumError):
            moments_block(h, np.ones((32, 2)), 200)


class TestStochastic:
    def test_mu0_exactly_one_rademacher(self, scaled_chain):
        config = KPMConfig(num_moments=4, num_random_vectors=8, num_realizations=2)
        data = stochastic_moments(scaled_chain, config)
        assert data.mu[0] == pytest.approx(1.0)

    def test_converges_to_exact(self, scaled_chain):
        config = KPMConfig(num_moments=16, num_random_vectors=64, num_realizations=4, seed=0)
        data = stochastic_moments(scaled_chain, config)
        exact = exact_moments(scaled_chain, 16)
        np.testing.assert_allclose(data.mu, exact, atol=0.05)

    def test_per_realization_shape(self, scaled_chain, small_config):
        data = stochastic_moments(scaled_chain, small_config)
        assert data.per_realization.shape == (2, 32)
        assert data.num_realizations == 2
        assert data.num_moments == 32

    def test_grand_mean_is_mean_of_realizations(self, scaled_chain, small_config):
        data = stochastic_moments(scaled_chain, small_config)
        np.testing.assert_allclose(data.mu, data.per_realization.mean(axis=0))

    def test_keep_per_vector(self, scaled_chain, small_config):
        data, per_vector = stochastic_moments(
            scaled_chain, small_config, keep_per_vector=True
        )
        assert per_vector.shape == (2, 8, 32)
        np.testing.assert_allclose(per_vector.mean(axis=1), data.per_realization)

    def test_seed_determinism(self, scaled_chain, small_config):
        a = stochastic_moments(scaled_chain, small_config)
        b = stochastic_moments(scaled_chain, small_config)
        np.testing.assert_array_equal(a.mu, b.mu)

    def test_different_seeds_differ(self, scaled_chain, small_config):
        a = stochastic_moments(scaled_chain, small_config)
        b = stochastic_moments(scaled_chain, small_config.with_updates(seed=99))
        assert not np.array_equal(a.mu, b.mu)

    def test_requires_config(self, scaled_chain):
        with pytest.raises(ValidationError):
            stochastic_moments(scaled_chain, {"num_moments": 8})

    def test_standard_error_zero_single_realization(self, scaled_chain):
        config = KPMConfig(num_moments=8, num_random_vectors=4, num_realizations=1)
        data = stochastic_moments(scaled_chain, config)
        np.testing.assert_array_equal(data.standard_error(), np.zeros(8))

    def test_standard_error_positive(self, scaled_chain):
        config = KPMConfig(num_moments=8, num_random_vectors=4, num_realizations=4)
        data = stochastic_moments(scaled_chain, config)
        assert np.any(data.standard_error() > 0)


class TestExactMoments:
    def test_matches_eigendecomposition(self):
        h = tight_binding_hamiltonian(cubic(3), format="dense")
        scaled, rescaling = rescale_operator(h)
        mu = exact_moments(scaled, 10)
        eigs = np.linalg.eigvalsh(h.to_dense())
        x = rescaling.to_scaled(eigs)
        reference = np.array(
            [np.mean(np.cos(k * np.arccos(x))) for k in range(10)]
        )
        np.testing.assert_allclose(mu, reference, atol=1e-12)

    def test_mu0_exactly_one(self):
        h = tight_binding_hamiltonian(chain(16), format="csr")
        scaled, _ = rescale_operator(h)
        assert exact_moments(scaled, 1)[0] == pytest.approx(1.0)

    def test_chunking_invariant(self):
        h = tight_binding_hamiltonian(chain(20), format="csr")
        scaled, _ = rescale_operator(h)
        np.testing.assert_allclose(
            exact_moments(scaled, 6, chunk_size=3),
            exact_moments(scaled, 6, chunk_size=64),
            atol=1e-12,
        )

    def test_bounded_peak_allocation(self):
        # Regression: the basis block used to be sliced out of a full
        # np.eye(D) — an O(D^2) allocation that defeated chunking.  Peak
        # traced memory must stay far below the dense identity.
        import tracemalloc

        dim = 1024
        h = tight_binding_hamiltonian(chain(dim), format="csr")
        scaled, _ = rescale_operator(h)
        dense_identity_bytes = dim * dim * 8
        tracemalloc.start()
        try:
            exact_moments(scaled, 4, chunk_size=8)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < dense_identity_bytes // 4


class TestDivergenceChecks:
    """Every moment order must be checked, on every recursion path.

    Regression: the doubling paths skipped all odd orders and mu_1 was
    never checked anywhere, so operators whose divergence shows first in
    an unchecked order sailed through.
    """

    # Spectrum {10, 0.5, -0.5, 0.3} with start vector e0: the order-2
    # doubled moment (199) stays under the divergence threshold while
    # order 3 (3970) trips it — only the odd-order check can catch this.
    _DIAG = (10.0, 0.5, -0.5, 0.3)

    def test_doubling_checks_odd_orders_single(self):
        op = np.diag(self._DIAG)
        r0 = np.array([1.0, 0.0, 0.0, 0.0])
        moments_single_vector(op, r0, 3, use_doubling=True)  # order 2 passes
        with pytest.raises(SpectrumError, match="order 3 "):
            moments_single_vector(op, r0, 4, use_doubling=True)

    def test_doubling_checks_odd_orders_block(self):
        op = np.diag(self._DIAG)
        block = np.zeros((4, 2))
        block[0, 0] = 1.0
        block[1, 1] = 1.0
        moments_block(op, block, 3, use_doubling=True)
        with pytest.raises(SpectrumError, match="order 3 "):
            moments_block(op, block, 4, use_doubling=True)

    def test_first_moment_checked_single(self):
        op = np.diag([2000.0, 0.0])
        with pytest.raises(SpectrumError, match="order 1 "):
            moments_single_vector(op, np.array([1.0, 0.0]), 2)

    def test_first_moment_checked_block(self):
        op = np.diag([2000.0, 0.0])
        block = np.array([[1.0], [0.0]])
        with pytest.raises(SpectrumError, match="order 1 "):
            moments_block(op, block, 2)


class TestMomentData:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            MomentData(
                mu=np.ones(4),
                per_realization=np.ones((2, 5)),
                dimension=10,
                num_vectors=2,
            )

    def test_prefix_slices_bitwise(self):
        data = MomentData(
            mu=np.arange(8.0),
            per_realization=np.arange(16.0).reshape(2, 8),
            dimension=10,
            num_vectors=2,
        )
        short = data.prefix(5)
        assert np.array_equal(short.mu, data.mu[:5])
        assert np.array_equal(short.per_realization, data.per_realization[:, :5])
        assert short.dimension == data.dimension
        assert short.num_vectors == data.num_vectors
        assert data.prefix(8) is data

    def test_prefix_rejects_longer(self):
        data = MomentData(
            mu=np.ones(4), per_realization=np.ones((1, 4)), dimension=4, num_vectors=1
        )
        with pytest.raises(ValidationError, match="exceeds"):
            data.prefix(5)


class TestResumable:
    """Checkpointed resume must be bit-identical to cold runs."""

    @pytest.mark.parametrize("use_doubling", [False, True])
    @pytest.mark.parametrize("base", [1, 2, 3, 8])
    def test_single_vector_roundtrip(self, scaled_chain, base, use_doubling):
        from repro.kpm.moments import (
            extend_moments_single_vector,
            moments_single_vector_resumable,
        )

        rng = np.random.default_rng(0)
        r0 = rng.standard_normal(32)
        cold = moments_single_vector(
            scaled_chain, r0, base, use_doubling=use_doubling
        )
        warm, checkpoint = moments_single_vector_resumable(
            scaled_chain, r0, base, use_doubling=use_doubling
        )
        assert np.array_equal(cold, warm)
        for target in (base + 1, base + 5, 2 * base + 3):
            segment, _ = extend_moments_single_vector(
                scaled_chain, checkpoint, target
            )
            full = np.concatenate([warm, segment])
            reference = moments_single_vector(
                scaled_chain, r0, target, use_doubling=use_doubling
            )
            assert np.array_equal(full, reference)

    @pytest.mark.parametrize("use_doubling", [False, True])
    def test_block_chained_extension(self, scaled_chain, use_doubling):
        from repro.kpm.moments import (
            extend_moments_block,
            moments_block_resumable,
        )

        rng = np.random.default_rng(1)
        block = rng.standard_normal((32, 3))
        warm, checkpoint = moments_block_resumable(
            scaled_chain, block, 6, use_doubling=use_doubling
        )
        seg1, checkpoint = extend_moments_block(scaled_chain, checkpoint, 9)
        seg2, checkpoint = extend_moments_block(scaled_chain, checkpoint, 21)
        full = np.vstack([warm, seg1, seg2])
        reference = moments_block(scaled_chain, block, 21, use_doubling=use_doubling)
        assert np.array_equal(full, reference)

    def test_extend_rejects_non_increasing(self, scaled_chain):
        from repro.kpm.moments import (
            extend_moments_single_vector,
            moments_single_vector_resumable,
        )

        rng = np.random.default_rng(2)
        r0 = rng.standard_normal(32)
        _, checkpoint = moments_single_vector_resumable(scaled_chain, r0, 8)
        with pytest.raises(ValidationError):
            extend_moments_single_vector(scaled_chain, checkpoint, 8)

    def test_stochastic_extension_matches_cold(self, scaled_chain):
        from repro.kpm.moments import (
            extend_stochastic_moments,
            stochastic_moments_resumable,
        )

        config = KPMConfig(
            num_moments=8, num_random_vectors=4, num_realizations=3, seed=5
        )
        cold = stochastic_moments(scaled_chain, config)
        warm, checkpoint = stochastic_moments_resumable(scaled_chain, config)
        assert np.array_equal(cold.mu, warm.mu)
        assert np.array_equal(cold.per_realization, warm.per_realization)
        bigger = config.with_updates(num_moments=19)
        extended, _ = extend_stochastic_moments(
            scaled_chain, bigger, warm, checkpoint
        )
        reference = stochastic_moments(scaled_chain, bigger)
        assert np.array_equal(extended.mu, reference.mu)
        assert np.array_equal(extended.per_realization, reference.per_realization)
