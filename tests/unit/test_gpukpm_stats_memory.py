"""Unit tests for repro.gpukpm.stats and repro.gpukpm.memory_plan."""

import pytest

from repro.errors import LaunchError, ValidationError
from repro.gpu import TESLA_C2050
from repro.gpukpm import (
    GridPlan,
    paper_memory_bytes,
    plan_grid,
    plan_memory,
    per_vector_recursion_stats,
    recursion_launch_stats,
    reduce_launch_stats,
)
from repro.kpm import KPMConfig


class TestGridPlan:
    def test_paper_configuration(self):
        # R*S = 1792, BLOCK_SIZE = 256 -> 7 blocks (paper Sec. III-A).
        plan = plan_grid(1792, 256, TESLA_C2050)
        assert plan.num_blocks == 7

    def test_ragged_last_block(self):
        plan = plan_grid(100, 32, TESLA_C2050)
        assert plan.num_blocks == 4
        assert list(plan.vectors_of(3)) == list(range(96, 100))

    def test_vectors_partition_exactly(self):
        plan = plan_grid(100, 32, TESLA_C2050)
        all_vectors = [v for b in range(plan.num_blocks) for v in plan.vectors_of(b)]
        assert all_vectors == list(range(100))

    def test_block_id_out_of_range(self):
        plan = plan_grid(64, 32, TESLA_C2050)
        with pytest.raises(ValidationError):
            plan.vectors_of(2)

    def test_block_size_over_device_limit(self):
        with pytest.raises(LaunchError):
            plan_grid(4096, 2048, TESLA_C2050)


class TestPerVectorStats:
    def test_dense_flop_count(self):
        # RNG 4D + (N-1)(2D^2 + 2D) + N*2D.
        d, n = 100, 8
        stats = per_vector_recursion_stats(d, n)
        expected = 4 * d + (n - 1) * (2 * d * d + 2 * d) + n * 2 * d
        assert stats.flops == expected

    def test_csr_flop_count(self):
        d, n, nnz = 100, 8, 700
        stats = per_vector_recursion_stats(d, n, nnz=nnz)
        expected = 4 * d + (n - 1) * (2 * nnz + 2 * d) + n * 2 * d
        assert stats.flops == expected

    def test_dense_reads_dominated_by_matrix(self):
        d, n = 1000, 128
        stats = per_vector_recursion_stats(d, n)
        matrix_bytes = (n - 1) * d * d * 8
        assert stats.gmem_read_bytes > matrix_bytes
        assert stats.gmem_read_bytes < 1.1 * matrix_bytes

    def test_single_moment_no_matvec(self):
        stats = per_vector_recursion_stats(50, 1)
        # only RNG + one dot
        assert stats.flops == 4 * 50 + 2 * 50

    def test_thread_efficiency_full_when_block_fits(self):
        stats = per_vector_recursion_stats(256, 8, block_size=128)
        assert stats.thread_efficiency == 1.0

    def test_thread_efficiency_penalizes_wide_blocks(self):
        stats = per_vector_recursion_stats(128, 8, block_size=256)
        assert stats.thread_efficiency == 0.5

    def test_coalescing_dense_vs_csr(self):
        dense = per_vector_recursion_stats(64, 4)
        sparse = per_vector_recursion_stats(64, 4, nnz=400)
        assert dense.coalescing < sparse.coalescing


class TestLaunchStats:
    def test_aggregate_scales_with_vectors(self):
        plan = plan_grid(64, 32, TESLA_C2050)
        launch = recursion_launch_stats(100, 8, plan, TESLA_C2050)
        per_vector = per_vector_recursion_stats(100, 8, block_size=32)
        assert launch.flops == pytest.approx(64 * per_vector.flops)

    def test_footprint_includes_matrix_and_workspace(self):
        plan = plan_grid(64, 32, TESLA_C2050)
        launch = recursion_launch_stats(100, 8, plan, TESLA_C2050)
        matrix = 100 * 100 * 8
        active = min(plan.num_blocks, TESLA_C2050.sm_count)
        assert launch.footprint_bytes == matrix + active * 4 * 100 * 8

    def test_reduce_stats(self):
        stats = reduce_launch_stats(16, 100)
        assert stats.flops == 1600
        assert stats.gmem_read_bytes == 1600 * 8
        assert stats.gmem_write_bytes == 16 * 8


class TestMemoryPlan:
    def test_paper_formula(self):
        # num_blocks x H_SIZE x (8N + 32).
        assert paper_memory_bytes(7, 1000, 1024) == 7 * 1000 * (8 * 1024 + 32)

    def test_actual_differs_from_paper_formula(self):
        # The paper's moment buffer over-counts by a factor ~H_SIZE.
        config = KPMConfig(num_random_vectors=128, num_realizations=14, num_moments=1024)
        plan = plan_memory(TESLA_C2050, 1000, config)
        assert plan.paper_bytes != plan.total_bytes
        assert plan.moment_table_bytes == 1792 * 1024 * 8

    def test_workspace_matches_paper_term(self):
        # The 4-vectors-per-block term is the part the paper got right.
        config = KPMConfig(num_random_vectors=128, num_realizations=14, num_moments=256)
        plan = plan_memory(TESLA_C2050, 1000, config)
        assert plan.workspace_bytes == 7 * 4 * 1000 * 8

    def test_fits_capacity(self):
        config = KPMConfig(num_random_vectors=128, num_realizations=14, num_moments=1024)
        assert plan_memory(TESLA_C2050, 4096, config).fits(TESLA_C2050)

    def test_csr_matrix_bytes(self):
        config = KPMConfig(num_random_vectors=8, num_realizations=1, num_moments=16)
        plan = plan_memory(TESLA_C2050, 100, config, nnz=700)
        assert plan.matrix_bytes == 700 * 16 + 101 * 8

    def test_summary_renders(self):
        config = KPMConfig(num_random_vectors=8, num_realizations=1)
        text = plan_memory(TESLA_C2050, 64, config).summary()
        assert "paper formula" in text
