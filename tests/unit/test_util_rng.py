"""Unit tests for repro.util.rng — the determinism contract."""

import numpy as np
import pytest

from repro.util.rng import normalize_seed, philox_stream, spawn_seeds


class TestNormalizeSeed:
    def test_none_maps_to_default(self):
        assert normalize_seed(None) == 0

    def test_passthrough(self):
        assert normalize_seed(42) == 42

    def test_rejects_negative(self):
        with pytest.raises(Exception):
            normalize_seed(-1)

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            normalize_seed(2**63)


class TestPhiloxStream:
    def test_same_key_same_stream(self):
        a = philox_stream(1, 2, 3).standard_normal(16)
        b = philox_stream(1, 2, 3).standard_normal(16)
        np.testing.assert_array_equal(a, b)

    def test_different_key_different_stream(self):
        a = philox_stream(1, 2, 3).standard_normal(16)
        b = philox_stream(1, 2, 4).standard_normal(16)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = philox_stream(1, 2).standard_normal(16)
        b = philox_stream(2, 2).standard_normal(16)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        a = philox_stream(0, 1, 2).standard_normal(8)
        b = philox_stream(0, 2, 1).standard_normal(8)
        assert not np.array_equal(a, b)

    def test_too_many_key_components(self):
        with pytest.raises(ValueError, match="at most 3"):
            philox_stream(0, 1, 2, 3, 4)

    def test_streams_do_not_interfere(self):
        # Consuming one stream must not advance another with the same key.
        first = philox_stream(5, 1)
        first.standard_normal(100)
        again = philox_stream(5, 1).standard_normal(4)
        reference = philox_stream(5, 1).standard_normal(4)
        np.testing.assert_array_equal(again, reference)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(9, 5) == spawn_seeds(9, 5)

    def test_distinct_children(self):
        children = spawn_seeds(0, 50)
        assert len(set(children)) == 50

    def test_count_zero(self):
        assert spawn_seeds(0, 0) == []

    def test_all_in_range(self):
        assert all(0 <= s < 2**63 for s in spawn_seeds(3, 20))
