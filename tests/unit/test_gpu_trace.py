"""Unit tests for the profiler's Chrome trace export."""

import json

import numpy as np
import pytest

from repro.gpu import Device, kernel, tiny_test_device
from repro.gpukpm import GpuKPM
from repro.kpm import KPMConfig, rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian


@kernel("trace_probe")
def probe_kernel(ctx, arr):
    idx = ctx.thread_range(arr.shape[0])
    arr.data[idx] += 1.0
    ctx.charge(flops=float(idx.size), gmem_read=8.0 * idx.size)


class TestChromeTrace:
    def test_valid_json_with_events(self):
        device = Device(tiny_test_device(setup_overhead_s=0.001))
        arr = device.alloc(64)
        device.memcpy_htod(arr, np.zeros(64))
        device.launch(probe_kernel, grid=2, block=32, args=(arr,))
        payload = json.loads(device.profiler.to_chrome_trace())
        events = payload["traceEvents"]
        names = [e["name"] for e in events]
        assert "setup" in names
        assert "memcpy_htod" in names
        assert "trace_probe" in names

    def test_durations_sum_to_modeled_time(self):
        device = Device(tiny_test_device(setup_overhead_s=0.0))
        arr = device.alloc(64)
        device.memcpy_htod(arr, np.zeros(64))
        device.launch(probe_kernel, grid=1, block=32, args=(arr,))
        payload = json.loads(device.profiler.to_chrome_trace())
        total_us = sum(e["dur"] for e in payload["traceEvents"])
        assert total_us == pytest.approx(device.modeled_seconds * 1e6)

    def test_events_end_to_end(self):
        device = Device(tiny_test_device(setup_overhead_s=0.0))
        arr = device.alloc(64)
        for _ in range(3):
            device.memcpy_htod(arr, np.zeros(64))
        payload = json.loads(device.profiler.to_chrome_trace())
        events = payload["traceEvents"]
        for first, second in zip(events, events[1:]):
            assert second["ts"] == pytest.approx(first["ts"] + first["dur"])

    def test_tracks_assigned(self):
        device = Device(tiny_test_device(setup_overhead_s=0.0))
        arr = device.alloc(64)
        device.memcpy_htod(arr, np.zeros(64))
        device.launch(probe_kernel, grid=1, block=32, args=(arr,))
        payload = json.loads(device.profiler.to_chrome_trace())
        tids = {e["name"]: e["tid"] for e in payload["traceEvents"]}
        assert tids["memcpy_htod"] == "PCIe"
        assert tids["trace_probe"] == "Compute"

    def test_full_pipeline_trace(self):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        scaled, _ = rescale_operator(h)
        runner = GpuKPM()
        runner.compute_moments(
            scaled,
            KPMConfig(num_moments=8, num_random_vectors=4, num_realizations=1,
                      block_size=32),
        )
        payload = json.loads(runner.last_device.profiler.to_chrome_trace())
        names = [e["name"] for e in payload["traceEvents"]]
        assert "kpm_recursion" in names
        assert "reduce_moments" in names
        kernel_event = next(
            e for e in payload["traceEvents"] if e["name"] == "kpm_recursion"
        )
        assert kernel_event["args"]["flops"] > 0
        assert kernel_event["args"]["bound"] in ("compute", "memory")
