"""Unit tests for the per-matrix kernel autotuner (repro.tune)."""

import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gpu import TESLA_C2050
from repro.kpm import KPMConfig, rescale_operator
from repro.lattice import chain, cubic, tight_binding_hamiltonian
from repro.obs import Tracer
from repro.sparse import CSRMatrix, ELLMatrix, structure_fingerprint
from repro.tune import (
    DEFAULT_BLOCK_CANDIDATES,
    Autotuner,
    TuningCache,
    TuningChoice,
    load_tuning_cache,
    tuning_key,
    write_tuning_cache,
)
from repro.tune.cache import SCHEMA_VERSION
from repro.tune.cli import main as tune_main


def make_choice(**overrides):
    base = dict(
        format="ell", block_size=128, vector_width=1, modeled_seconds=0.25
    )
    base.update(overrides)
    return TuningChoice(**base)


class TestTuningChoice:
    def test_validation(self):
        with pytest.raises(ValidationError, match="format"):
            make_choice(format="coo")
        with pytest.raises(ValidationError):
            make_choice(block_size=100)
        with pytest.raises(ValidationError):
            make_choice(vector_width=3)
        with pytest.raises(ValidationError):
            make_choice(modeled_seconds=-1.0)
        with pytest.raises(ValidationError):
            make_choice(probed="yes")

    def test_dict_round_trip(self):
        choice = make_choice(format="csr-vector", vector_width=8, probed=True)
        assert TuningChoice.from_dict(choice.as_dict()) == choice


class TestTuningCache:
    def test_put_get_contains_len(self):
        cache = TuningCache()
        assert cache.get("k") is None
        cache.put("k", make_choice())
        assert "k" in cache
        assert len(cache) == 1
        assert cache.get("k") == make_choice()

    def test_put_validates(self):
        cache = TuningCache()
        with pytest.raises(ValidationError):
            cache.put("", make_choice())
        with pytest.raises(ValidationError):
            cache.put("k", {"format": "ell"})

    def test_json_bytes_independent_of_insertion_order(self):
        a, b = TuningCache(), TuningCache()
        a.put("x", make_choice())
        a.put("y", make_choice(format="csr"))
        b.put("y", make_choice(format="csr"))
        b.put("x", make_choice())
        assert a.to_json() == b.to_json()
        assert a.fingerprint() == b.fingerprint()

    def test_keys_and_items_sorted(self):
        cache = TuningCache()
        cache.put("zz", make_choice())
        cache.put("aa", make_choice())
        assert cache.keys() == ("aa", "zz")
        assert [key for key, _ in cache.items()] == ["aa", "zz"]

    def test_schema_embedded_and_checked(self):
        cache = TuningCache()
        cache.put("k", make_choice())
        data = cache.to_dict()
        assert data["schema"] == SCHEMA_VERSION
        restored = TuningCache.from_dict(json.loads(cache.to_json()))
        assert restored.to_json() == cache.to_json()
        data["schema"] = "repro.tune/0"
        with pytest.raises(ValidationError, match="schema"):
            TuningCache.from_dict(data)

    def test_file_round_trip_is_byte_stable(self, tmp_path):
        cache = TuningCache()
        cache.put("k", make_choice(probed=True))
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_tuning_cache(cache, first)
        write_tuning_cache(load_tuning_cache(first), second)
        assert first.read_bytes() == second.read_bytes()


class TestTuningKey:
    def test_contents(self):
        csr = tight_binding_hamiltonian(chain(8), format="csr")
        digest = structure_fingerprint(csr)
        config = KPMConfig(num_moments=64, num_random_vectors=4, precision="single")
        key = tuning_key(digest, config, TESLA_C2050)
        assert digest in key
        assert TESLA_C2050.name in key
        assert "N=64" in key
        assert "V=4" in key
        assert "single" in key

    def test_block_size_does_not_fragment_the_key(self):
        digest = "d" * 64
        a = tuning_key(digest, KPMConfig(block_size=64), TESLA_C2050)
        b = tuning_key(digest, KPMConfig(block_size=512), TESLA_C2050)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValidationError):
            tuning_key("", KPMConfig(), TESLA_C2050)
        with pytest.raises(ValidationError):
            tuning_key("d", {}, TESLA_C2050)
        with pytest.raises(ValidationError):
            tuning_key("d", KPMConfig(), "tesla")


class TestAutotunerConstruction:
    def test_candidate_grid_validation(self):
        with pytest.raises(ValidationError):
            Autotuner(formats=("coo",))
        with pytest.raises(ValidationError):
            Autotuner(formats=())
        with pytest.raises(ValidationError):
            Autotuner(block_candidates=(48,))
        with pytest.raises(ValidationError):
            Autotuner(block_candidates=())
        with pytest.raises(ValidationError):
            Autotuner(vector_widths=(3,))
        with pytest.raises(ValidationError):
            Autotuner(spec="tesla")

    def test_counters_start_at_zero(self):
        assert Autotuner().counters() == {
            "tune.choose.hits": 0,
            "tune.choose.misses": 0,
            "tune.probe.runs": 0,
        }


class TestSweep:
    @pytest.fixture(scope="class")
    def hamiltonian(self):
        return tight_binding_hamiltonian(cubic(4), format="csr")

    def test_deterministic_and_sorted(self, hamiltonian):
        tuner = Autotuner()
        config = KPMConfig(num_moments=64, num_random_vectors=8)
        first = tuner.sweep(hamiltonian, config)
        second = tuner.sweep(hamiltonian, config)
        assert first == second
        seconds = [p.modeled_seconds for p in first]
        assert seconds == sorted(seconds)

    def test_covers_every_feasible_candidate(self, hamiltonian):
        tuner = Autotuner()
        points = tuner.sweep(hamiltonian, KPMConfig())
        formats = {p.format for p in points}
        assert formats == {"dense", "csr", "csr-vector", "ell"}
        blocks = {p.block_size for p in points}
        assert blocks == set(
            b
            for b in DEFAULT_BLOCK_CANDIDATES
            if b <= TESLA_C2050.max_threads_per_block
        )

    def test_sparse_beats_dense_on_lattice(self, hamiltonian):
        best = Autotuner().sweep(hamiltonian, KPMConfig(num_moments=256))[0]
        assert best.format != "dense"

    def test_config_validation(self, hamiltonian):
        with pytest.raises(ValidationError):
            Autotuner().sweep(hamiltonian, {"num_moments": 8})


class TestChoose:
    @pytest.fixture()
    def scaled(self):
        csr = tight_binding_hamiltonian(cubic(3), format="csr")
        scaled, _ = rescale_operator(csr)
        return scaled

    def test_miss_then_hit(self, scaled):
        tuner = Autotuner()
        config = KPMConfig(num_moments=32, num_random_vectors=4)
        first = tuner.choose(scaled, config)
        second = tuner.choose(scaled, config)
        assert first == second
        assert tuner.misses == 1
        assert tuner.hits == 1

    def test_same_structure_different_values_share_entry(self, scaled):
        tuner = Autotuner()
        config = KPMConfig(num_moments=32, num_random_vectors=4)
        tuner.choose(scaled, config)
        perturbed = scaled.scale_shift(0.5, 0.1)
        tuner.choose(perturbed, config)
        assert (tuner.misses, tuner.hits) == (1, 1)

    def test_workload_shape_keys_separately(self, scaled):
        tuner = Autotuner()
        tuner.choose(scaled, KPMConfig(num_moments=32))
        tuner.choose(scaled, KPMConfig(num_moments=64))
        assert tuner.misses == 2
        assert len(tuner.cache) == 2

    def test_block_size_does_not_key(self, scaled):
        tuner = Autotuner()
        tuner.choose(scaled, KPMConfig(num_moments=32, block_size=64))
        tuner.choose(scaled, KPMConfig(num_moments=32, block_size=512))
        assert (tuner.misses, tuner.hits) == (1, 1)

    def test_records_tune_spans(self, scaled):
        tracer = Tracer()
        tuner = Autotuner()
        config = KPMConfig(num_moments=32)
        with tracer.activate():
            tuner.choose(scaled, config)
            tuner.choose(scaled, config)
        spans = [s for s in tracer.roots if s.label == "tune.choose"]
        assert [s.attributes["cache"] for s in spans] == ["miss", "hit"]
        assert spans[0].attributes["format"] == spans[1].attributes["format"]

    def test_probe_verifies_and_marks_choice(self, scaled):
        tuner = Autotuner(probe=True)
        choice = tuner.choose(scaled, KPMConfig(num_moments=16))
        assert choice.probed
        assert tuner.probes == 1
        # The probe replaces the analytic score with the executed modeled
        # time; the two agree to PROBE_REL_TOL by the estimator contract.
        assert choice.modeled_seconds > 0

    def test_probe_does_not_advance_callers_clock(self, scaled):
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("caller"):
                Autotuner(probe=True).choose(scaled, KPMConfig(num_moments=16))
        # The probe executed a full pipeline, but on a private tracer:
        # the caller's modeled clock never moved.
        assert tracer.clock == 0.0


class TestPrepareOperator:
    def test_conversions(self):
        csr = tight_binding_hamiltonian(chain(6), format="csr")
        tuner = Autotuner()
        ell = tuner.prepare_operator(csr, make_choice(format="ell"))
        assert isinstance(ell, ELLMatrix)
        back = tuner.prepare_operator(ell, make_choice(format="csr"))
        assert isinstance(back, CSRMatrix)
        dense = tuner.prepare_operator(csr, make_choice(format="dense"))
        assert isinstance(dense, np.ndarray)
        np.testing.assert_array_equal(dense, csr.to_dense())

    def test_no_op_when_storage_matches(self):
        csr = tight_binding_hamiltonian(chain(6), format="csr")
        tuner = Autotuner()
        assert tuner.prepare_operator(csr, make_choice(format="csr")) is csr
        ell = csr.to_ell()
        assert tuner.prepare_operator(ell, make_choice(format="ell")) is ell

    def test_choice_validation(self):
        with pytest.raises(ValidationError):
            Autotuner().prepare_operator(np.eye(3), {"format": "ell"})


class TestTuneCli:
    def test_inspect_prints_profile_and_formats(self, capsys):
        assert tune_main(["inspect", "--lattice", "chain", "-L", "16"]) == 0
        out = capsys.readouterr().out
        assert "structure fingerprint:" in out
        assert "row_nnz_max" in out
        for fmt in ("dense", "csr", "csr-vector", "ell"):
            assert fmt in out

    def test_sweep_ranks_candidates(self, capsys):
        assert (
            tune_main(
                ["sweep", "--lattice", "cubic", "-L", "4", "--top", "3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "vs dense" in out
        # Header plus exactly --top rows.
        assert len(out.strip().splitlines()) == 4

    def test_cache_miss_then_hit_round_trip(self, tmp_path, capsys):
        cache_file = tmp_path / "tuning.json"
        argv = ["cache", "--cache", str(cache_file), "--lattice", "cubic", "-L", "3"]
        assert tune_main(argv) == 0
        first = capsys.readouterr().out
        assert first.startswith("miss:")
        bytes_after_first = cache_file.read_bytes()
        assert tune_main(argv) == 0
        second = capsys.readouterr().out
        assert second.startswith("hit:")
        # A hit rewrites the identical cache file byte-for-byte.
        assert cache_file.read_bytes() == bytes_after_first

    def test_cache_show_lists_entries(self, tmp_path, capsys):
        cache_file = tmp_path / "tuning.json"
        tune_main(["cache", "--cache", str(cache_file), "--lattice", "chain", "-L", "8"])
        capsys.readouterr()
        assert tune_main(["cache", "--cache", str(cache_file), "--show"]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "sha256" in out

    def test_registered_under_repro_cli(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["tune", "inspect", "--lattice", "chain", "-L", "8"]) == 0
        assert "structure fingerprint:" in capsys.readouterr().out

    def test_bad_argv_type_rejected(self):
        with pytest.raises(ValidationError):
            tune_main("inspect")
