"""Unit tests for repro.util.format."""

from repro.util.format import format_bytes, format_count, format_seconds


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.00 KiB"

    def test_mib(self):
        assert format_bytes(8 * 1024 * 1024) == "8.00 MiB"

    def test_gib(self):
        assert format_bytes(3 * 1024**3) == "3.00 GiB"

    def test_negative(self):
        assert format_bytes(-2048) == "-2.00 KiB"


class TestFormatSeconds:
    def test_zero(self):
        assert format_seconds(0) == "0 s"

    def test_nanoseconds(self):
        assert format_seconds(5e-9) == "5.00 ns"

    def test_microseconds(self):
        assert format_seconds(7.5e-6) == "7.50 us"

    def test_milliseconds(self):
        assert format_seconds(0.0032) == "3.20 ms"

    def test_seconds(self):
        assert format_seconds(12.5) == "12.50 s"

    def test_minutes(self):
        assert format_seconds(150) == "2m30.0s"

    def test_negative(self):
        assert format_seconds(-0.001) == "-1.00 ms"


class TestFormatCount:
    def test_small_integer(self):
        assert format_count(42) == "42"

    def test_kilo(self):
        assert format_count(20000) == "20.00 K"

    def test_giga(self):
        assert format_count(1.79e9) == "1.79 G"

    def test_fractional(self):
        assert format_count(0.5) == "0.50"
