"""Unit tests for repro.obs.metrics plus the telemetry-hardening fixes."""

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry
from repro.serve.metrics import ServiceMetrics
from repro.timing import TimingReport


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2.5)
        assert registry.counters["a"] == pytest.approx(3.5)

    def test_inc_rejects_negative_and_nonfinite(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.inc("a", -1.0)
        with pytest.raises(ValidationError):
            registry.inc("a", float("inf"))
        with pytest.raises(ValidationError):
            registry.inc("a", True)
        with pytest.raises(ValidationError):
            registry.inc("", 1.0)


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1.0)
        registry.set_gauge("g", -2.0)
        assert registry.gauges["g"] == pytest.approx(-2.0)

    def test_gauge_rejects_nonfinite(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.set_gauge("g", float("nan"))

    def test_observe_summary(self):
        registry = MetricsRegistry()
        for sample in (3.0, 1.0, 2.0):
            registry.observe("h", sample)
        hist = registry.histograms["h"]
        assert hist == {"count": 3.0, "total": 6.0, "min": 1.0, "max": 3.0}


class TestAbsorb:
    def test_timing_report_drops_wall(self):
        report = TimingReport(
            backend="gpu-sim",
            modeled_seconds=2.0,
            wall_seconds=99.0,
            breakdown={"spmv": 1.5, "transfer": 0.5},
        )
        registry = MetricsRegistry()
        registry.absorb_timing_report(report)
        assert registry.gauges["timing.gpu-sim.modeled_seconds"] == pytest.approx(2.0)
        assert registry.gauges["timing.gpu-sim.phase.spmv_seconds"] == pytest.approx(1.5)
        assert not any("wall" in name for name in registry.gauges)

    def test_timing_report_without_model(self):
        registry = MetricsRegistry()
        registry.absorb_timing_report(
            TimingReport(backend="numpy", wall_seconds=1.0), prefix="ref"
        )
        assert "ref.modeled_seconds" not in registry.gauges

    def test_service_metrics(self):
        metrics = ServiceMetrics(
            requests_total=8,
            responses_total=8,
            batches_total=2,
            coalesced_requests=3,
            cache_hits=4,
            cache_misses=4,
            cache_size=4,
            queue_peak_depth=5,
            engine_dispatches=2,
            modeled_served_seconds=1.0,
            modeled_naive_seconds=4.0,
            wall_seconds=77.0,
            modeled_seconds_by_engine={"gpu-sim": 1.0},
        )
        registry = MetricsRegistry()
        registry.absorb_service_metrics(metrics)
        assert registry.counters["serve.requests_total"] == pytest.approx(8.0)
        assert registry.gauges["serve.cache_hit_rate"] == pytest.approx(0.5)
        assert registry.gauges["serve.modeled_speedup"] == pytest.approx(4.0)
        assert registry.gauges["serve.engine.gpu-sim.modeled_seconds"] == pytest.approx(1.0)
        all_names = set(registry.counters) | set(registry.gauges)
        assert not any("wall" in name for name in all_names)

    def test_sanitizer_report(self):
        from repro.sanitize import FINDING_CODES, SanitizerFinding, SanitizerReport

        report = SanitizerReport(
            label="unit",
            findings=[
                SanitizerFinding(code="SAN006", array="mu", message="overlap"),
                SanitizerFinding(code="SAN006", array="ws", message="overlap"),
            ],
            suppressed=[SanitizerFinding(code="SAN005", array="tmp", message="leak")],
            stats={"launches_checked": 3, "findings": 2, "suppressed": 1},
        )
        registry = MetricsRegistry()
        registry.absorb_sanitizer_report(report)
        assert registry.counters["sanitize.findings.SAN006"] == pytest.approx(2.0)
        assert registry.counters["sanitize.findings.SAN001"] == pytest.approx(0.0)
        assert registry.counters["sanitize.findings_total"] == pytest.approx(2.0)
        assert registry.counters["sanitize.suppressed_total"] == pytest.approx(1.0)
        assert registry.gauges["sanitize.launches_checked"] == pytest.approx(3.0)
        # The full counter family exists even for codes never seen.
        for code in FINDING_CODES:
            assert f"sanitize.findings.{code}" in registry.counters

    def test_sanitizer_report_clean_run_still_writes_counters(self):
        from repro.sanitize import SanitizerReport

        registry = MetricsRegistry()
        registry.absorb_sanitizer_report(
            SanitizerReport(label="clean", stats={"blocks_checked": 4}),
            prefix="san",
        )
        assert registry.counters["san.findings_total"] == pytest.approx(0.0)
        assert registry.gauges["san.blocks_checked"] == pytest.approx(4.0)


class TestRoundtrip:
    def test_dict_roundtrip_is_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z.count", 2)
        registry.inc("a.count", 1)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 2.0)
        data = registry.to_dict()
        assert list(data["counters"]) == ["a.count", "z.count"]
        rebuilt = MetricsRegistry.from_dict(data)
        assert rebuilt.to_dict() == data

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValidationError):
            MetricsRegistry.from_dict([1, 2])
        with pytest.raises(ValidationError):
            MetricsRegistry.from_dict({"counters": {"a": float("nan")}})


class TestTimingHardening:
    """phase_fraction must degrade gracefully instead of poisoning ratios."""

    def test_empty_breakdown(self):
        assert TimingReport(backend="x").phase_fraction("spmv") == 0.0

    def test_zero_total(self):
        report = TimingReport(backend="x", breakdown={"a": 0.0, "b": 0.0})
        assert report.phase_fraction("a") == 0.0

    def test_nonfinite_total(self):
        report = TimingReport(backend="x", breakdown={"a": float("inf"), "b": 1.0})
        assert report.phase_fraction("b") == 0.0

    def test_nonfinite_share(self):
        report = TimingReport(backend="x", breakdown={"a": float("nan"), "b": 1.0})
        assert report.phase_fraction("a") == 0.0

    def test_normal_fraction(self):
        report = TimingReport(backend="x", breakdown={"a": 1.0, "b": 3.0})
        assert report.phase_fraction("a") == pytest.approx(0.25)


class TestServiceMetricsHardening:
    def test_cache_hit_rate_no_lookups(self):
        assert ServiceMetrics().cache_hit_rate() == 0.0

    def test_modeled_speedup_neutral_on_zero_served(self):
        assert ServiceMetrics(modeled_naive_seconds=3.0).modeled_speedup() == 1.0

    def test_modeled_speedup_neutral_on_nonfinite(self):
        bad = ServiceMetrics(
            modeled_served_seconds=float("nan"), modeled_naive_seconds=2.0
        )
        assert bad.modeled_speedup() == 1.0
        bad = ServiceMetrics(
            modeled_served_seconds=1.0, modeled_naive_seconds=float("inf")
        )
        assert bad.modeled_speedup() == 1.0

    def test_modeled_speedup_normal(self):
        metrics = ServiceMetrics(modeled_served_seconds=2.0, modeled_naive_seconds=6.0)
        assert metrics.modeled_speedup() == pytest.approx(3.0)
