"""Unit tests for repro.sparse.DenseOperator."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.sparse import DenseOperator


class TestConstruction:
    def test_basic(self):
        op = DenseOperator(np.eye(3))
        assert op.shape == (3, 3)
        assert op.nnz_stored == 9

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            DenseOperator(np.ones(3))

    def test_rejects_complex(self):
        with pytest.raises(ValidationError):
            DenseOperator(np.eye(2, dtype=complex))

    def test_converts_dtype(self):
        op = DenseOperator(np.eye(2, dtype=np.int32))
        assert op.array.dtype == np.float64


class TestLinearAlgebra:
    def test_matvec(self, rng):
        a = rng.standard_normal((4, 4))
        x = rng.standard_normal(4)
        np.testing.assert_allclose(DenseOperator(a).matvec(x), a @ x)

    def test_matvec_shape_check(self):
        with pytest.raises(ShapeError):
            DenseOperator(np.eye(3)).matvec(np.ones(2))

    def test_matmat(self, rng):
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 2))
        np.testing.assert_allclose(DenseOperator(a).matmat(b), a @ b)

    def test_dot_dispatch(self, rng):
        a = rng.standard_normal((3, 3))
        op = DenseOperator(a)
        np.testing.assert_allclose(op @ np.ones(3), a @ np.ones(3))
        with pytest.raises(ShapeError):
            op.dot(np.ones((2, 2, 2)))


class TestTransforms:
    def test_scale_shift(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        result = DenseOperator(a).scale_shift(2.0, -1.0)
        np.testing.assert_allclose(result.to_dense(), 2 * a - np.eye(2))

    def test_scale_shift_does_not_mutate_original(self):
        a = np.eye(2)
        op = DenseOperator(a.copy())
        op.scale_shift(3.0, 1.0)
        np.testing.assert_array_equal(op.to_dense(), np.eye(2))

    def test_transpose(self, rng):
        a = rng.standard_normal((3, 3))
        np.testing.assert_array_equal(DenseOperator(a).transpose().to_dense(), a.T)

    def test_to_csr(self):
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        csr = DenseOperator(a).to_csr()
        assert csr.nnz_stored == 1
        np.testing.assert_array_equal(csr.to_dense(), a)


class TestSpectralHelpers:
    def test_diagonal(self):
        a = np.diag([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(DenseOperator(a).diagonal(), [1, 2, 3])

    def test_offdiag_abs_row_sums(self):
        a = np.array([[1.0, -2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(
            DenseOperator(a).offdiag_abs_row_sums(), [2.0, 3.0]
        )

    def test_is_symmetric(self):
        assert DenseOperator(np.eye(2)).is_symmetric()
        assert not DenseOperator(np.array([[0.0, 1.0], [0.0, 0.0]])).is_symmetric()
