"""Unit tests for repro.sparse.ops (protocol coercion)."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.sparse import COOMatrix, CSRMatrix, DenseOperator, as_operator, is_operator


class TestAsOperator:
    def test_ndarray_wraps_dense(self):
        op = as_operator(np.eye(3))
        assert isinstance(op, DenseOperator)

    def test_csr_passthrough(self):
        csr = CSRMatrix.identity(3)
        assert as_operator(csr) is csr

    def test_dense_passthrough(self):
        dense = DenseOperator(np.eye(2))
        assert as_operator(dense) is dense

    def test_coo_converted_to_csr(self):
        coo = COOMatrix([0], [0], [1.0], (2, 2))
        op = as_operator(coo)
        assert isinstance(op, CSRMatrix)

    def test_list_input(self):
        op = as_operator([[1.0, 0.0], [0.0, 1.0]])
        assert op.shape == (2, 2)

    def test_rejects_nonsquare_by_default(self):
        with pytest.raises(ShapeError):
            as_operator(np.ones((2, 3)))

    def test_allows_nonsquare_when_asked(self):
        op = as_operator(np.ones((2, 3)), require_square=False)
        assert op.shape == (2, 3)

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            as_operator("not a matrix")


class TestIsOperator:
    def test_true_for_library_types(self):
        assert is_operator(CSRMatrix.identity(2))
        assert is_operator(DenseOperator(np.eye(2)))

    def test_false_for_ndarray(self):
        assert not is_operator(np.eye(2))
