"""Unit tests for repro.kpm.estimator and repro.kpm.engines."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm import (
    KPMConfig,
    available_backends,
    exact_moments,
    get_engine,
    jackson_resolution,
    moment_convergence_study,
    register_engine,
    required_moments_for_resolution,
    rescale_operator,
)
from repro.kpm.engines import NumpyEngine
from repro.lattice import chain, tight_binding_hamiltonian


class TestResolutionHelpers:
    def test_jackson_resolution_value(self):
        assert jackson_resolution(100, 2.0) == pytest.approx(np.pi * 2.0 / 100)

    def test_required_moments_inverts(self):
        n = required_moments_for_resolution(0.05, scale=2.0)
        assert jackson_resolution(n, 2.0) <= 0.05
        assert jackson_resolution(n - 1, 2.0) > 0.05

    def test_validation(self):
        with pytest.raises(ValidationError):
            jackson_resolution(0)
        with pytest.raises(ValidationError):
            required_moments_for_resolution(-1.0)


class TestConvergenceStudy:
    @pytest.fixture
    def scaled(self):
        h = tight_binding_hamiltonian(chain(64), format="csr")
        scaled, _ = rescale_operator(h)
        return scaled

    def test_error_decreases_with_r(self, scaled):
        points = moment_convergence_study(
            scaled, [1, 16, 256], num_moments=16, seed=0
        )
        errors = [p.moment_rms_error for p in points]
        assert errors[2] < errors[0]

    def test_rows_in_input_order(self, scaled):
        points = moment_convergence_study(scaled, [8, 2], num_moments=8)
        assert [p.num_random_vectors for p in points] == [8, 2]

    def test_explicit_reference(self, scaled):
        reference = exact_moments(scaled, 8)
        points = moment_convergence_study(
            scaled, [4], num_moments=8, reference_moments=reference
        )
        assert points[0].moment_rms_error >= 0

    def test_reference_length_mismatch(self, scaled):
        with pytest.raises(ValidationError):
            moment_convergence_study(
                scaled, [4], num_moments=8, reference_moments=np.ones(5)
            )

    def test_empty_r_values(self, scaled):
        with pytest.raises(ValidationError):
            moment_convergence_study(scaled, [], num_moments=8)


class TestEngineRegistry:
    def test_builtins_registered(self):
        assert {"numpy", "cpu-model", "gpu-sim"} <= set(available_backends())

    def test_get_numpy_engine(self):
        engine = get_engine("numpy")
        assert engine.name == "numpy"

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            get_engine("quantum")

    def test_register_custom_engine(self):
        class Custom:
            name = "custom-test"

            def compute_moments(self, operator, config):
                return NumpyEngine().compute_moments(operator, config)

        register_engine("custom-test", Custom)
        try:
            assert get_engine("custom-test").name == "custom-test"
        finally:
            from repro.kpm.engines import _FACTORIES

            _FACTORIES.pop("custom-test")

    def test_register_rejects_bad_name(self):
        with pytest.raises(ValidationError):
            register_engine("", NumpyEngine)

    def test_register_rejects_non_callable(self):
        with pytest.raises(ValidationError):
            register_engine("x", 42)

    def test_factory_must_return_engine(self):
        register_engine("broken-test", lambda: object())
        try:
            with pytest.raises(ValidationError, match="compute_moments"):
                get_engine("broken-test")
        finally:
            from repro.kpm.engines import _FACTORIES

            _FACTORIES.pop("broken-test")

    def test_numpy_engine_timing_report(self, chain_csr, small_config):
        scaled, _ = rescale_operator(chain_csr)
        data, report = NumpyEngine().compute_moments(scaled, small_config)
        assert report.modeled_seconds is None
        assert report.wall_seconds > 0
        assert data.num_moments == small_config.num_moments


class TestEngineUnification:
    """GpuKPM/MultiGpuKPM as first-class MomentEngine backends."""

    def test_cluster_backend_registered(self):
        assert "cluster" in available_backends()
        engine = get_engine("cluster")
        assert engine.name == "cluster"

    def test_gpu_sim_is_gpukpm(self):
        from repro.gpukpm import GpuKPM

        assert isinstance(get_engine("gpu-sim"), GpuKPM)

    def test_engine_instance_passthrough(self):
        engine = NumpyEngine()
        assert get_engine(engine) is engine

    def test_compute_dos_accepts_instance(self, chain_csr, small_config):
        from repro.kpm import compute_dos

        by_name = compute_dos(chain_csr, small_config, backend="numpy")
        by_instance = compute_dos(chain_csr, small_config, backend=NumpyEngine())
        assert np.array_equal(by_name.density, by_instance.density)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValidationError, match="available names"):
            get_engine("warp-drive")

    def test_non_engine_object_rejected(self):
        with pytest.raises(ValidationError, match="MomentEngine instance"):
            get_engine(42)

    def test_protocol_satisfied(self):
        from repro.cluster import MultiGpuKPM
        from repro.gpukpm import GpuKPM
        from repro.kpm.engines import MomentEngine

        assert isinstance(GpuKPM(), MomentEngine)
        assert isinstance(MultiGpuKPM(2), MomentEngine)

    def test_gpukpm_run_shim_removed(self):
        # GpuKPM.run completed its deprecation cycle in PR 8; the only
        # entry point is the MomentEngine protocol method.
        from repro.gpukpm import GpuKPM

        assert not hasattr(GpuKPM, "run")

    def test_multigpu_run_shim_deprecated(self, chain_csr, small_config):
        from repro.cluster import MultiGpuKPM

        scaled, _ = rescale_operator(chain_csr)
        driver = MultiGpuKPM(2)
        with pytest.warns(DeprecationWarning, match="compute_moments"):
            shim_data, _ = driver.run(scaled, small_config)
        direct_data, _ = MultiGpuKPM(2).compute_moments(scaled, small_config)
        assert np.array_equal(shim_data.mu, direct_data.mu)

    def test_cluster_backend_computes(self, chain_csr, small_config):
        from repro.kpm import compute_dos

        result = compute_dos(chain_csr, small_config, backend="cluster")
        # The engine registers as "cluster"; its timing report keeps the
        # more informative per-run label.
        assert result.timing.backend.startswith("multi-gpu-sim")
        assert result.integrate() == pytest.approx(1.0, abs=0.05)
