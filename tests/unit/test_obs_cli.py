"""Unit tests for the obs CLI (python -m repro.obs / repro obs / --trace-out)."""

import json

import pytest

from repro.cli import main as repro_main
from repro.obs import load_run_record
from repro.obs.cli import main as obs_main


class TestRecord:
    def test_smoke_record_writes_everything(self, tmp_path, capsys):
        out = tmp_path / "record.json"
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "spans.jsonl"
        code = obs_main([
            "record", "--smoke", "--out", str(out),
            "--chrome", str(chrome), "--jsonl", str(jsonl), "--tree",
        ])
        assert code == 0
        record = load_run_record(out)
        assert record.label == "smoke"
        labels = {span.label for root in record.spans for span in root.walk()}
        assert {"workload.gpu", "workload.cluster", "workload.serve"} <= labels
        trace = json.loads(chrome.read_text(encoding="ascii"))
        assert trace["traceEvents"]
        assert jsonl.read_text(encoding="ascii").count("\n") >= 2
        captured = capsys.readouterr()
        assert "run 'smoke'" in captured.out
        assert "fingerprint" in captured.err

    def test_smoke_record_is_reproducible(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert obs_main(["record", "--smoke", "--out", str(first)]) == 0
        assert obs_main(["record", "--smoke", "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_custom_label(self, tmp_path):
        out = tmp_path / "record.json"
        assert obs_main(["record", "--smoke", "--label", "pr4", "--out", str(out)]) == 0
        assert load_run_record(out).label == "pr4"


class TestCompare:
    def test_self_compare_passes(self, tmp_path, capsys):
        out = tmp_path / "baseline.json"
        assert obs_main(["record", "--smoke", "--out", str(out)]) == 0
        code = obs_main([
            "compare", "--baseline", str(out), "--current", str(out),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_inflated_span_fails(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        assert obs_main(["record", "--smoke", "--out", str(baseline_path)]) == 0
        data = json.loads(baseline_path.read_text(encoding="ascii"))

        def inflate(span):
            if span["label"] == "gpu.moments":
                span["end"] = span["end"] + (span["end"] - span["start"]) * 0.5
            for child in span["children"]:
                inflate(child)

        for span in data["spans"]:
            inflate(span)
        current_path.write_text(json.dumps(data), encoding="ascii")
        code = obs_main([
            "compare", "--baseline", str(baseline_path), "--current", str(current_path),
        ])
        assert code == 1
        summary = capsys.readouterr().out
        assert "FAIL" in summary
        assert "gpu.moments" in summary

    def test_band_override_rescues_regression(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        assert obs_main(["record", "--smoke", "--out", str(baseline_path)]) == 0
        data = json.loads(baseline_path.read_text(encoding="ascii"))
        data["metrics"]["gauges"]["serve.modeled_served_seconds"] *= 1.2
        current_path.write_text(json.dumps(data), encoding="ascii")
        argv = ["compare", "--baseline", str(baseline_path), "--current", str(current_path)]
        assert obs_main(argv) == 1
        assert obs_main(argv + ["--band", "serve.*=0.5"]) == 0
        assert obs_main(argv + ["--ignore", "serve.*"]) == 0

    def test_bad_band_syntax_errors(self, tmp_path, capsys):
        out = tmp_path / "baseline.json"
        assert obs_main(["record", "--smoke", "--out", str(out)]) == 0
        code = obs_main([
            "compare", "--baseline", str(out), "--current", str(out), "--band", "oops",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_baseline_errors(self, tmp_path, capsys):
        code = obs_main(["compare", "--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestReproCliIntegration:
    def test_obs_subcommand_reachable(self, tmp_path, capsys):
        out = tmp_path / "record.json"
        code = repro_main(["obs", "record", "--smoke", "--out", str(out)])
        assert code == 0
        assert load_run_record(out).label == "smoke"

    def test_dos_trace_out(self, tmp_path, capsys):
        trace_out = tmp_path / "trace.json"
        code = repro_main([
            "dos", "--lattice", "chain:32", "-N", "16", "-R", "2",
            "--backend", "gpu-sim", "--trace-out", str(trace_out),
        ])
        assert code == 0
        record = load_run_record(trace_out)
        assert record.label == "cli-dos"
        assert record.workload == {"command": "dos"}
        labels = [span.label for root in record.spans for span in root.walk()]
        assert labels[0] == "cli.dos"
        assert "kpm.compute_dos" in labels
        assert "gpu.pipeline" in labels

    def test_trace_out_is_deterministic(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code = repro_main([
                "dos", "--lattice", "chain:32", "-N", "16", "-R", "2",
                "--backend", "gpu-sim", "--trace-out", str(path),
            ])
            assert code == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()
