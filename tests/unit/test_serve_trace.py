"""Unit tests for repro.serve.trace and the serve-sim CLI subcommand."""

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.serve import DoSRequest, GreenRequest, LDoSRequest, synthetic_trace


class TestSyntheticTrace:
    def test_deterministic(self):
        first = synthetic_trace(50, seed=3)
        second = synthetic_trace(50, seed=3)
        assert [r.tag for r in first] == [r.tag for r in second]
        assert [type(r) for r in first] == [type(r) for r in second]

    def test_seed_changes_trace(self):
        assert [r.tag for r in synthetic_trace(50, seed=0)] != [
            r.tag for r in synthetic_trace(50, seed=1)
        ]

    def test_repeat_bias_creates_repeats(self):
        trace = synthetic_trace(80, seed=0, repeat_bias=0.9)
        workloads = {r.tag.rsplit("/", 2)[0] for r in trace}
        assert len(workloads) < len(trace) / 4

    def test_kind_mix(self):
        trace = synthetic_trace(200, seed=0, green_fraction=0.3, ldos_fraction=0.2)
        kinds = {kind: sum(isinstance(r, cls) for r in trace)
                 for kind, cls in [("dos", DoSRequest), ("green", GreenRequest),
                                   ("ldos", LDoSRequest)]}
        assert kinds["dos"] > 0 and kinds["green"] > 0 and kinds["ldos"] > 0
        assert sum(kinds.values()) == 200

    def test_pure_dos_trace(self):
        trace = synthetic_trace(20, seed=0, green_fraction=0.0, ldos_fraction=0.0)
        assert all(isinstance(r, DoSRequest) for r in trace)

    def test_validation(self):
        with pytest.raises(ValidationError):
            synthetic_trace(0)
        with pytest.raises(ValidationError):
            synthetic_trace(10, repeat_bias=1.5)
        with pytest.raises(ValidationError):
            synthetic_trace(10, green_fraction=0.7, ldos_fraction=0.7)


class TestServeSimCli:
    def test_runs_and_reports(self, capsys):
        code = main([
            "serve-sim", "-n", "30", "--window", "10",
            "--backends", "gpu-sim",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "modeled speedup" in out
        assert "replayed 30 requests" in out

    def test_multi_backend_pool(self, capsys):
        code = main([
            "serve-sim", "-n", "12", "--window", "0",
            "--backends", "gpu-sim,numpy",
        ])
        assert code == 0
        assert "gpu-sim, numpy" in capsys.readouterr().out

    def test_bad_backend_is_reported(self, capsys):
        code = main(["serve-sim", "-n", "5", "--backends", "warp-drive"])
        assert code == 2
        assert "unknown backend" in capsys.readouterr().err
