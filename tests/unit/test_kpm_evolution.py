"""Unit tests for repro.kpm.evolution — against dense matrix exponentials."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.errors import ValidationError
from repro.kpm import evolution_coefficients, evolution_order, evolve_state
from repro.lattice import chain, cubic, tight_binding_hamiltonian


def dense_reference(hamiltonian, state, time):
    dense = hamiltonian.to_dense()
    return expm(-1j * dense * time) @ state


@pytest.fixture(scope="module")
def small_chain():
    return tight_binding_hamiltonian(chain(24), format="csr")


class TestCoefficients:
    def test_zero_time_is_identity(self):
        coefficients = evolution_coefficients(0.0, 8)
        np.testing.assert_allclose(coefficients, np.eye(8)[0], atol=1e-15)

    def test_decay_beyond_tau(self):
        coefficients = evolution_coefficients(5.0, evolution_order(5.0))
        assert abs(coefficients[-1]) < 1e-10

    def test_order_grows_with_time(self):
        assert evolution_order(100.0) > evolution_order(1.0)

    def test_order_sufficient(self):
        for tau in (0.5, 10.0, 80.0):
            n = evolution_order(tau)
            coefficients = evolution_coefficients(tau, n)
            assert abs(coefficients[-1]) < 1e-10


class TestEvolveState:
    def test_matches_expm_real_state(self, small_chain, rng):
        psi0 = rng.standard_normal(24)
        psi0 /= np.linalg.norm(psi0)
        for time in (0.1, 1.0, 7.5):
            evolved = evolve_state(small_chain, psi0, time)
            reference = dense_reference(small_chain, psi0, time)
            np.testing.assert_allclose(evolved, reference, atol=1e-10)

    def test_matches_expm_complex_state(self, small_chain, rng):
        psi0 = rng.standard_normal(24) + 1j * rng.standard_normal(24)
        psi0 /= np.linalg.norm(psi0)
        evolved = evolve_state(small_chain, psi0, 2.0)
        reference = dense_reference(small_chain, psi0, 2.0)
        np.testing.assert_allclose(evolved, reference, atol=1e-10)

    def test_norm_conserved(self, small_chain, rng):
        psi0 = rng.standard_normal(24)
        psi0 /= np.linalg.norm(psi0)
        evolved = evolve_state(small_chain, psi0, 25.0)
        assert np.linalg.norm(evolved) == pytest.approx(1.0, abs=1e-10)

    def test_zero_time_identity(self, small_chain, rng):
        psi0 = rng.standard_normal(24)
        evolved = evolve_state(small_chain, psi0, 0.0)
        np.testing.assert_allclose(evolved, psi0.astype(complex), atol=1e-12)

    def test_composition(self, small_chain, rng):
        psi0 = rng.standard_normal(24)
        psi0 /= np.linalg.norm(psi0)
        one_shot = evolve_state(small_chain, psi0, 3.0)
        two_step = evolve_state(small_chain, evolve_state(small_chain, psi0, 1.2), 1.8)
        np.testing.assert_allclose(two_step, one_shot, atol=1e-9)

    def test_backward_evolution_inverts(self, small_chain, rng):
        psi0 = rng.standard_normal(24)
        roundtrip = evolve_state(small_chain, evolve_state(small_chain, psi0, 4.0), -4.0)
        np.testing.assert_allclose(roundtrip, psi0.astype(complex), atol=1e-9)

    def test_eigenstate_picks_up_phase(self):
        h = tight_binding_hamiltonian(chain(16), format="dense")
        eigenvalues, vectors = np.linalg.eigh(h.to_dense())
        k = 5
        evolved = evolve_state(h, vectors[:, k], 2.5)
        expected = np.exp(-1j * eigenvalues[k] * 2.5) * vectors[:, k]
        np.testing.assert_allclose(evolved, expected, atol=1e-10)

    def test_energy_conserved(self, rng):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        psi0 = rng.standard_normal(27)
        psi0 /= np.linalg.norm(psi0)
        evolved = evolve_state(h, psi0, 6.0)
        energy0 = psi0 @ h.matvec(psi0)
        h_psi = h.matvec(evolved.real) + 1j * h.matvec(evolved.imag)
        energy_t = np.vdot(evolved, h_psi).real
        assert energy_t == pytest.approx(energy0, abs=1e-9)

    def test_explicit_order(self, small_chain, rng):
        psi0 = rng.standard_normal(24)
        evolved = evolve_state(small_chain, psi0, 1.0, num_terms=64)
        reference = dense_reference(small_chain, psi0, 1.0)
        np.testing.assert_allclose(evolved, reference, atol=1e-10)

    def test_wrong_state_length(self, small_chain):
        with pytest.raises(ValidationError):
            evolve_state(small_chain, np.ones(5), 1.0)

    def test_wavepacket_spreads(self):
        # A localized state on a chain spreads ballistically.
        h = tight_binding_hamiltonian(chain(128), format="csr")
        psi0 = np.zeros(128)
        psi0[64] = 1.0
        evolved = evolve_state(h, psi0, 10.0)
        probabilities = np.abs(evolved) ** 2
        assert probabilities[64] < 0.1
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-10)
        spread = np.sqrt(np.sum(probabilities * (np.arange(128) - 64) ** 2))
        assert spread > 5.0
