"""Unit tests for repro.timing."""

import time

from repro.timing import TimingReport, WallTimer


class TestWallTimer:
    def test_measures_elapsed(self):
        with WallTimer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_zero_before_use(self):
        assert WallTimer().seconds == 0.0


class TestTimingReport:
    def test_summary_with_model(self):
        report = TimingReport(
            backend="gpu-sim",
            device="Tesla",
            modeled_seconds=1.5,
            wall_seconds=0.25,
        )
        text = report.summary()
        assert "backend=gpu-sim" in text
        assert "modeled=1.50 s" in text
        assert "wall=250.00 ms" in text

    def test_summary_without_model(self):
        report = TimingReport(backend="numpy", wall_seconds=0.001)
        text = report.summary()
        assert "modeled" not in text
        assert "device" not in text

    def test_breakdown_default_empty(self):
        assert TimingReport(backend="x").breakdown == {}
