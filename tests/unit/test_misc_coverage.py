"""Edge-path tests: IO symmetric arrays, dense-input variants, CLI bench."""

import io

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm import (
    KPMConfig,
    current_operator_from_edges,
    evolve_state,
    kubo_greenwood_conductivity,
)
from repro.lattice import chain, tight_binding_hamiltonian
from repro.sparse import DenseOperator, read_matrix_market


class TestMatrixMarketSymmetricArray:
    def test_symmetric_array_form_expanded(self):
        text = (
            "%%MatrixMarket matrix array real symmetric\n"
            "2 2\n"
            "1.0\n"
            "3.0\n"
            "0.0\n"
            "2.0\n"
        )
        out = read_matrix_market(io.StringIO(text), format="dense")
        np.testing.assert_array_equal(
            out.to_dense(), np.array([[1.0, 3.0], [3.0, 2.0]])
        )

    def test_comment_lines_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "2 2 1\n"
            "1 2 5.0\n"
        )
        out = read_matrix_market(io.StringIO(text))
        assert out.to_dense()[0, 1] == 5.0

    def test_array_body_wrong_length(self):
        text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n"
        with pytest.raises(ValidationError):
            read_matrix_market(io.StringIO(text), format="dense")


class TestDenseInputVariants:
    def test_evolution_accepts_raw_ndarray(self, rng):
        dense = tight_binding_hamiltonian(chain(12), format="dense").to_dense()
        psi0 = rng.standard_normal(12)
        evolved = evolve_state(dense, psi0, 1.0)
        assert abs(np.linalg.norm(evolved) - np.linalg.norm(psi0)) < 1e-9

    def test_conductivity_dense_current(self):
        lattice_h = tight_binding_hamiltonian(chain(24), format="csr")
        current = current_operator_from_edges(
            24,
            np.arange(24),
            (np.arange(24) + 1) % 24,
            np.ones(24),
            format="dense",
        )
        assert isinstance(current, DenseOperator)
        config = KPMConfig(num_moments=8, num_random_vectors=4, seed=0)
        sigma = kubo_greenwood_conductivity(
            lattice_h, current, np.array([0.0]), config
        )
        assert sigma[0] > 0

    def test_current_operator_bad_format(self):
        with pytest.raises(ValidationError):
            current_operator_from_edges(4, [0], [1], [1.0], format="csc")


class TestCliBenchCsv:
    def test_bench_with_csv_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "fig5", "--no-plots", "--csv-dir", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig5.csv").exists()


class TestDosResultEdges:
    def test_evaluate_rejects_out_of_band(self, chain_csr, small_config):
        from repro.kpm import compute_dos

        result = compute_dos(chain_csr, small_config)
        with pytest.raises(ValidationError):
            result.evaluate(np.array([50.0]))

    def test_lorentz_kernel_kwargs_through_dos(self, chain_csr):
        from repro.kpm import dos_from_moments, exact_moments, rescale_operator

        scaled, rescaling = rescale_operator(chain_csr)
        mu = exact_moments(scaled, 32)
        _, tight = dos_from_moments(
            mu, rescaling, kernel="lorentz", num_points=128, resolution=2.0
        )
        _, loose = dos_from_moments(
            mu, rescaling, kernel="lorentz", num_points=128, resolution=6.0
        )
        assert not np.allclose(tight, loose)
