"""Unit tests for repro.serve.gateway (admission → EDF → degrade) and
the repro.serve.equivalence checker."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm import KPMConfig, compute_dos
from repro.lattice import chain, tight_binding_hamiltonian
from repro.serve import (
    DoSRequest,
    EdfCoalesceScheduler,
    FifoCoalesceScheduler,
    Gateway,
    TenantPolicy,
    TimedArrival,
    check_equivalence,
    timed_trace,
)

H = tight_binding_hamiltonian(chain(32))
CONFIG = KPMConfig(num_moments=16, num_random_vectors=2, seed=3)


def gateway(**kwargs):
    kwargs.setdefault("template", ("gpu-sim",))
    return Gateway(**kwargs)


class TestOffer:
    def test_admitted_request_is_queued(self):
        gw = gateway()
        seq, response = gw.offer(DoSRequest(H, CONFIG))
        assert seq == 0 and response is None
        assert gw.scheduler.depth == 1
        [served] = gw.pump().values()
        assert served.outcome == "served" and served.final

    def test_rejection_is_immediate_and_terminal(self):
        gw = gateway(default_policy=TenantPolicy(rate=1e-9, burst=1e-9))
        seq, response = gw.offer(DoSRequest(H, CONFIG, tenant="broke"))
        assert response is not None
        assert response.outcome == "rejected"
        assert response.reason == "admission:rate"
        assert response.tenant == "broke"
        assert response.values is None
        assert gw.scheduler.depth == 0

    def test_quota_denial_reason(self):
        gw = gateway(default_policy=TenantPolicy(rate=100.0, burst=100.0,
                                                 quota=1e-9))
        _, response = gw.offer(DoSRequest(H, CONFIG))
        assert response.outcome == "rejected"
        assert response.reason == "admission:quota"

    def test_seq_assigned_to_every_offer(self):
        gw = gateway(default_policy=TenantPolicy(rate=1e-9, burst=1e-9))
        first, _ = gw.offer(DoSRequest(H, CONFIG))
        second, _ = gw.offer(DoSRequest(H, CONFIG))
        assert (first, second) == (0, 1)

    def test_now_advances_monotone_clock(self):
        gw = gateway()
        gw.offer(DoSRequest(H, CONFIG), now=4.0)
        assert gw.clock == 4.0
        gw.offer(DoSRequest(H, CONFIG), now=1.0)  # stale stamp: no rewind
        assert gw.clock == 4.0
        with pytest.raises(ValidationError):
            gw.offer(DoSRequest(H, CONFIG), now=-1.0)

    def test_malformed_request_raises(self):
        with pytest.raises(ValidationError):
            gateway().offer(DoSRequest(H, CONFIG, tenant=""))


class TestCancel:
    def test_cancel_refunds_and_records(self):
        gw = gateway()
        seq, _ = gw.offer(DoSRequest(H, CONFIG, tenant="acme"))
        charged = gw.admission.consumed("acme")
        assert charged > 0.0
        response = gw.cancel(seq)
        assert response.outcome == "cancelled"
        assert gw.admission.consumed("acme") == 0.0
        assert gw.scheduler.depth == 0
        assert gw.pump() == {}
        assert gw.gateway_metrics().cancelled == 1

    def test_cancel_after_dispatch_is_noop(self):
        gw = gateway()
        seq, _ = gw.offer(DoSRequest(H, CONFIG))
        gw.pump()
        assert gw.cancel(seq) is None
        assert gw.cancel(999) is None


class TestDegradation:
    def warm(self, gw, num_moments=16):
        gw.offer(DoSRequest(H, CONFIG.with_updates(num_moments=num_moments)))
        gw.pump()

    def test_hopeless_deadline_served_from_prefix(self):
        gw = gateway()
        self.warm(gw)
        high = CONFIG.with_updates(num_moments=64)
        seq, _ = gw.offer(DoSRequest(H, high, deadline=gw.clock))
        [response] = gw.pump().values()
        assert response.outcome == "degraded"
        assert not response.final
        assert response.source == "cache"
        assert response.num_moments_served == 16
        assert response.modeled_seconds == 0.0
        assert "deadline" in response.reason

    def test_degraded_prefix_is_bit_identical(self):
        gw = gateway()
        self.warm(gw)
        seq, _ = gw.offer(
            DoSRequest(H, CONFIG.with_updates(num_moments=64), deadline=gw.clock)
        )
        [response] = gw.pump().values()
        direct = compute_dos(H, CONFIG, backend="gpu-sim")
        assert np.array_equal(response.moments.mu, direct.moments.mu)
        assert np.array_equal(response.values, direct.density)

    def test_no_prefix_means_late_full_service(self):
        gw = gateway()
        seq, _ = gw.offer(DoSRequest(H, CONFIG, deadline=gw.clock))
        [response] = gw.pump().values()
        assert response.outcome == "served" and response.final
        assert response.deadline_missed
        assert gw.gateway_metrics().deadline_misses == 1

    def test_degrade_false_always_serves_full(self):
        gw = gateway(degrade=False)
        self.warm(gw)
        seq, _ = gw.offer(
            DoSRequest(H, CONFIG.with_updates(num_moments=64), deadline=gw.clock)
        )
        [response] = gw.pump().values()
        assert response.outcome == "served"
        assert response.num_moments_served == 64
        assert response.deadline_missed

    def test_generous_deadline_not_degraded(self):
        gw = gateway()
        self.warm(gw)
        seq, _ = gw.offer(
            DoSRequest(H, CONFIG.with_updates(num_moments=64), deadline=1e6)
        )
        [response] = gw.pump().values()
        assert response.outcome == "served"
        assert response.num_moments_served == 64


class TestSchedulerKnob:
    def test_edf_default_fifo_optional(self):
        assert isinstance(gateway().scheduler, EdfCoalesceScheduler)
        fifo = gateway(edf=False).scheduler
        assert isinstance(fifo, FifoCoalesceScheduler)
        assert not isinstance(fifo, EdfCoalesceScheduler)


class TestRunTrace:
    def test_every_offer_answered_in_order(self):
        arrivals = timed_trace(30, seed=4, duration=10.0, deadline_slack=1.0)
        gw = gateway(template=("gpu-sim", "cpu-model"))
        responses = gw.run_trace(arrivals)
        assert len(responses) == 30
        metrics = gw.gateway_metrics()
        assert metrics.offered == 30
        assert (
            metrics.served + metrics.degraded + metrics.rejected
            + metrics.cancelled
        ) == 30
        outcomes = {r.outcome for r in responses}
        assert outcomes <= {"served", "degraded", "rejected", "cancelled"}

    def test_replay_is_deterministic(self):
        arrivals = timed_trace(25, seed=5, duration=8.0, deadline_slack=0.5)

        def run():
            gw = gateway(template=("gpu-sim", "cpu-model"),
                         default_policy=TenantPolicy(rate=0.5, burst=1.0))
            responses = gw.run_trace(arrivals)
            digest = []
            for r in responses:
                values = None if r.values is None else r.values.tobytes()
                digest.append((r.outcome, r.tenant, r.deadline_missed, values))
            return digest, gw.gateway_metrics().summary()

        assert run() == run()

    def test_validation(self):
        gw = gateway()
        with pytest.raises(ValidationError):
            gw.run_trace([DoSRequest(H, CONFIG)])
        descending = [
            TimedArrival(at=2.0, request=DoSRequest(H, CONFIG)),
            TimedArrival(at=1.0, request=DoSRequest(H, CONFIG)),
        ]
        with pytest.raises(ValidationError):
            gw.run_trace(descending)
        with pytest.raises(ValidationError):
            gw.run_trace([], flush_interval=0.0)


class TestGatewayMetrics:
    def test_per_tenant_counters_flow_through(self):
        arrivals = timed_trace(20, seed=6, tenants=2, duration=5.0)
        gw = gateway()
        gw.run_trace(arrivals)
        metrics = gw.gateway_metrics()
        assert set(metrics.per_tenant) <= {"tenant-0", "tenant-1"}
        total = sum(
            t["admitted"] + t["rejected"] for t in metrics.per_tenant.values()
        )
        assert total == metrics.offered
        assert 0.0 <= metrics.goodput_ratio <= 1.0
        assert "goodput=" in metrics.summary()

    def test_elastic_pool_reacts_to_load(self):
        arrivals = timed_trace(
            60, seed=7, duration=4.0, flash_crowds=2, flash_multiplier=8.0
        )
        gw = gateway(template=("gpu-sim", "cpu-model"), max_active=3)
        gw.run_trace(arrivals, flush_interval=0.5)
        metrics = gw.gateway_metrics()
        assert metrics.peak_active_engines >= metrics.active_engines
        assert metrics.scale_ups >= metrics.peak_active_engines - 1


class TestEquivalence:
    def test_calm_trace_matches_fifo_reference(self):
        arrivals = timed_trace(16, seed=8, duration=4.0, deadline_slack=50.0)
        report = check_equivalence(arrivals, backend="gpu-sim")
        assert report.ok
        assert report.total == 16
        assert report.mismatches == ()
        assert "equivalent" in report.summary()

    def test_overloaded_trace_still_equivalent(self):
        arrivals = timed_trace(
            30, seed=9, duration=3.0, deadline_slack=0.3, flash_crowds=2,
            flash_multiplier=8.0,
        )
        report = check_equivalence(
            arrivals,
            backend="gpu-sim",
            default_policy=TenantPolicy(rate=0.5, burst=1.0),
        )
        assert report.ok
        # The levers must actually have engaged for this to mean much.
        assert report.degraded + report.rejected > 0
