"""Unit tests for repro.ed (dense ED + Lanczos)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ed import (
    broadened_dos,
    exact_dos_histogram,
    exact_eigenvalues,
    lanczos_extremal_eigenvalues,
    lanczos_tridiagonal,
)
from repro.lattice import chain, cubic, tight_binding_hamiltonian


class TestExactEigenvalues:
    def test_chain_analytic(self):
        h = tight_binding_hamiltonian(chain(8), format="csr")
        eigs = exact_eigenvalues(h)
        expected = np.sort(-2 * np.cos(2 * np.pi * np.arange(8) / 8))
        np.testing.assert_allclose(eigs, expected, atol=1e-12)

    def test_ascending(self):
        h = tight_binding_hamiltonian(cubic(3), format="dense")
        eigs = exact_eigenvalues(h)
        assert np.all(np.diff(eigs) >= -1e-12)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError):
            exact_eigenvalues(np.array([[0.0, 1.0], [0.0, 0.0]]))


class TestHistogram:
    def test_normalized(self):
        eigs = np.linspace(-2, 2, 100)
        centers, density = exact_dos_histogram(eigs, num_bins=20)
        width = centers[1] - centers[0]
        assert np.sum(density) * width == pytest.approx(1.0)

    def test_span_argument(self):
        centers, _ = exact_dos_histogram(np.zeros(5), num_bins=4, span=(-1, 1))
        assert centers[0] > -1 and centers[-1] < 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            exact_dos_histogram(np.empty(0))


class TestBroadenedDos:
    def test_gaussian_integral_one(self):
        eigs = np.array([-1.0, 0.0, 1.0])
        energies = np.linspace(-5, 5, 4001)
        dos = broadened_dos(eigs, energies, width=0.2, profile="gaussian")
        assert np.trapezoid(dos, energies) == pytest.approx(1.0, abs=1e-6)

    def test_lorentzian_peak_height(self):
        dos = broadened_dos([0.0], [0.0], width=0.5, profile="lorentzian")
        assert dos[0] == pytest.approx(1.0 / (np.pi * 0.5))

    def test_gaussian_peak_height(self):
        dos = broadened_dos([0.0], [0.0], width=0.5, profile="gaussian")
        assert dos[0] == pytest.approx(1.0 / (0.5 * np.sqrt(2 * np.pi)))

    def test_unknown_profile(self):
        with pytest.raises(ValidationError):
            broadened_dos([0.0], [0.0], 0.1, profile="boxcar")


class TestLanczos:
    def test_tridiagonal_exact_on_small_matrix(self):
        # With k = D and full reorthogonalization, the Ritz values are
        # exact.  The open chain has a non-degenerate spectrum (a single
        # Krylov run cannot resolve degenerate pairs).
        h = tight_binding_hamiltonian(chain(12, periodic=False), format="dense")
        alphas, betas = lanczos_tridiagonal(h, 12, seed=0)
        tri = np.diag(alphas) + np.diag(betas, 1) + np.diag(betas, -1)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(tri),
            np.linalg.eigvalsh(h.to_dense()),
            atol=1e-8,
        )

    def test_extremal_values_inside_spectrum(self):
        h = tight_binding_hamiltonian(cubic(3), format="csr")
        lo, hi = lanczos_extremal_eigenvalues(h, iterations=20, seed=0)
        eigs = exact_eigenvalues(h)
        assert lo >= eigs[0] - 1e-9
        assert hi <= eigs[-1] + 1e-9

    def test_extremal_values_converge(self):
        h = tight_binding_hamiltonian(chain(64), format="csr")
        lo, hi = lanczos_extremal_eigenvalues(h, iterations=40, seed=0)
        eigs = exact_eigenvalues(h)
        assert lo == pytest.approx(eigs[0], abs=1e-4)
        assert hi == pytest.approx(eigs[-1], abs=1e-4)

    def test_breakdown_handled(self):
        # Identity matrix: Krylov space is 1-dimensional.
        alphas, betas = lanczos_tridiagonal(np.eye(6), 6, seed=0)
        assert alphas.shape[0] == 1
        assert alphas[0] == pytest.approx(1.0)

    def test_identity_extremal(self):
        lo, hi = lanczos_extremal_eigenvalues(np.eye(6), iterations=6)
        assert lo == pytest.approx(1.0)
        assert hi == pytest.approx(1.0)

    def test_explicit_start_vector(self):
        h = tight_binding_hamiltonian(chain(16), format="dense")
        start = np.zeros(16)
        start[0] = 1.0
        alphas, _ = lanczos_tridiagonal(h, 4, start_vector=start)
        assert alphas.shape[0] == 4

    def test_zero_start_vector_rejected(self):
        with pytest.raises(ValidationError):
            lanczos_tridiagonal(np.eye(4), 3, start_vector=np.zeros(4))

    def test_wrong_start_length(self):
        with pytest.raises(ValidationError):
            lanczos_tridiagonal(np.eye(4), 3, start_vector=np.ones(5))

    def test_iterations_capped_at_dimension(self):
        alphas, _ = lanczos_tridiagonal(np.diag([1.0, 2.0]), 50, seed=1)
        assert alphas.shape[0] <= 2
