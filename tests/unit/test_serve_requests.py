"""Unit tests for the v2 request/response surface (repro.serve.requests)."""

import math

import pytest

from repro.errors import ValidationError
from repro.kpm import KPMConfig
from repro.lattice import chain, tight_binding_hamiltonian
from repro.serve import (
    REQUEST_API_VERSION,
    RESPONSE_OUTCOMES,
    DoSRequest,
    GreenRequest,
    LDoSRequest,
    SpectralRequest,
    SpectralResponse,
)

H = tight_binding_hamiltonian(chain(8))


class TestRequestVersioning:
    def test_api_version_is_two(self):
        assert REQUEST_API_VERSION == 2
        assert SpectralRequest.api_version == 2
        assert DoSRequest(H).api_version == 2

    def test_all_kinds_subclass_the_versioned_base(self):
        assert isinstance(DoSRequest(H), SpectralRequest)
        assert isinstance(LDoSRequest(H, site=0), SpectralRequest)
        assert isinstance(GreenRequest(H, energies=(0.0,)), SpectralRequest)


class TestTenancyFields:
    def test_v1_defaults_preserved(self):
        request = DoSRequest(H)
        assert request.tenant == "default"
        assert request.deadline is None
        assert request.priority == 0
        assert request.effective_deadline == math.inf

    def test_v2_fields_round_trip(self):
        request = LDoSRequest(
            H, site=3, tenant="acme", deadline=12.5, priority=2
        )
        assert request.tenant == "acme"
        assert request.deadline == 12.5
        assert request.effective_deadline == 12.5
        assert request.priority == 2

    def test_deadline_coerced_to_float(self):
        assert DoSRequest(H, deadline=5).deadline == 5.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant": ""},
            {"tenant": 7},
            {"deadline": -1.0},
            {"deadline": math.inf},
            {"deadline": "soon"},
            {"priority": 1.5},
            {"priority": True},
            {"config": "not-a-config"},
            {"tag": 3},
        ],
    )
    def test_malformed_fields_raise(self, kwargs):
        defaults = {"config": KPMConfig()}
        defaults.update(kwargs)
        with pytest.raises(ValidationError):
            DoSRequest(H, **defaults)

    def test_validation_shared_across_kinds(self):
        with pytest.raises(ValidationError):
            LDoSRequest(H, site=0, tenant="")
        with pytest.raises(ValidationError):
            GreenRequest(H, energies=(0.0,), deadline=-2.0)


class TestResponseOutcomes:
    def test_taxonomy(self):
        assert RESPONSE_OUTCOMES == ("served", "degraded", "rejected", "cancelled")

    def test_invalid_outcome_raises(self):
        with pytest.raises(ValidationError):
            SpectralResponse(
                kind="dos",
                tag="",
                energies=None,
                values=None,
                moments=None,
                rescaling=None,
                config=KPMConfig(),
                source="gateway",
                engine="",
                batch_id=-1,
                modeled_seconds=0.0,
                outcome="exploded",
            )

    def test_unserved_echoes_request_identity(self):
        request = DoSRequest(H, tag="t0", tenant="acme", deadline=3.0)
        response = SpectralResponse.unserved(
            request, outcome="rejected", reason="admission:rate"
        )
        assert response.outcome == "rejected"
        assert response.reason == "admission:rate"
        assert response.kind == "dos"
        assert response.tag == "t0"
        assert response.tenant == "acme"
        assert response.deadline == 3.0
        assert response.values is None and response.moments is None
        assert response.batch_id == -1
        assert not response.answered

    def test_unserved_rejects_answered_outcomes(self):
        request = DoSRequest(H)
        for outcome in ("served", "degraded"):
            with pytest.raises(ValidationError):
                SpectralResponse.unserved(request, outcome=outcome, reason="")
        with pytest.raises(ValidationError):
            SpectralResponse.unserved("not-a-request", outcome="rejected", reason="")

    def test_answered_property(self):
        request = DoSRequest(H)
        cancelled = SpectralResponse.unserved(
            request, outcome="cancelled", reason="withdrawn"
        )
        assert not cancelled.answered
        served = SpectralResponse(
            kind="dos",
            tag="",
            energies=None,
            values=None,
            moments=None,
            rescaling=None,
            config=KPMConfig(),
            source="computed",
            engine="numpy",
            batch_id=0,
            modeled_seconds=0.0,
        )
        assert served.answered and served.outcome == "served"
