"""Unit tests for repro.kpm.rescale."""

import numpy as np
import pytest

from repro.errors import SpectrumError, ValidationError
from repro.kpm import (
    Rescaling,
    SpectralBounds,
    exact_bounds,
    gerschgorin_bounds,
    lanczos_bounds,
    rescale_operator,
)
from repro.lattice import chain, cubic, tight_binding_hamiltonian


class TestSpectralBounds:
    def test_center_half_width(self):
        bounds = SpectralBounds(-2.0, 6.0)
        assert bounds.center == 2.0
        assert bounds.half_width == 4.0

    def test_rejects_inverted(self):
        with pytest.raises(ValidationError):
            SpectralBounds(1.0, -1.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValidationError):
            SpectralBounds(-np.inf, 0.0)


class TestGerschgorin:
    def test_contains_true_spectrum(self):
        h = tight_binding_hamiltonian(cubic(4), format="dense")
        eigs = np.linalg.eigvalsh(h.to_dense())
        bounds = gerschgorin_bounds(h)
        assert bounds.lower <= eigs[0]
        assert bounds.upper >= eigs[-1]

    def test_cubic_lattice_bounds_exact_value(self):
        # 6 off-diagonal -1s per row, zero diagonal -> [-6, 6].
        h = tight_binding_hamiltonian(cubic(4), format="csr")
        bounds = gerschgorin_bounds(h)
        assert bounds.lower == -6.0
        assert bounds.upper == 6.0

    def test_diagonal_matrix(self):
        bounds = gerschgorin_bounds(np.diag([1.0, -3.0, 5.0]))
        assert bounds.lower == -3.0
        assert bounds.upper == 5.0


class TestLanczosBounds:
    def test_close_to_exact_for_chain(self):
        h = tight_binding_hamiltonian(chain(128), format="csr")
        bounds = lanczos_bounds(h, iterations=40, seed=0)
        exact = exact_bounds(h)
        assert bounds.lower <= exact.lower + 1e-6
        assert bounds.upper >= exact.upper - 1e-6
        # and much tighter than a 100% over-estimate
        assert bounds.upper - bounds.lower < 1.2 * (exact.upper - exact.lower)

    def test_tighter_than_gerschgorin_for_disorder(self):
        from repro.lattice import anderson_onsite_energies

        lattice = chain(128)
        eps = anderson_onsite_energies(lattice, 4.0, seed=1)
        h = tight_binding_hamiltonian(lattice, onsite=eps, format="csr")
        lz = lanczos_bounds(h, iterations=60, seed=0)
        gg = gerschgorin_bounds(h)
        assert (lz.upper - lz.lower) < (gg.upper - gg.lower)


class TestExactBounds:
    def test_matches_eigvalsh(self):
        h = tight_binding_hamiltonian(chain(32), format="dense")
        eigs = np.linalg.eigvalsh(h.to_dense())
        bounds = exact_bounds(h)
        assert bounds.lower == pytest.approx(eigs[0])
        assert bounds.upper == pytest.approx(eigs[-1])


class TestRescaling:
    def test_roundtrip(self):
        rescaling = Rescaling(scale=3.0, shift=-1.0)
        omega = np.array([-4.0, -1.0, 2.0])
        np.testing.assert_allclose(
            rescaling.to_original(rescaling.to_scaled(omega)), omega
        )

    def test_density_jacobian(self):
        assert Rescaling(scale=4.0, shift=0.0).density_jacobian == 0.25

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValidationError):
            Rescaling(scale=0.0, shift=0.0)

    def test_apply_moves_spectrum_inside(self):
        h = tight_binding_hamiltonian(cubic(3), format="dense")
        scaled, rescaling = rescale_operator(h, epsilon=0.05)
        eigs = np.linalg.eigvalsh(scaled.to_dense())
        assert eigs[0] > -1.0
        assert eigs[-1] < 1.0

    def test_epsilon_margin_exact(self):
        h = np.diag([-1.0, 1.0])
        scaled, _ = rescale_operator(h, method="exact", epsilon=0.25)
        eigs = np.linalg.eigvalsh(scaled.to_dense())
        np.testing.assert_allclose(eigs, [-0.8, 0.8])

    def test_explicit_bounds_skip_estimation(self):
        h = np.diag([0.0, 1.0])
        _, rescaling = rescale_operator(h, bounds=SpectralBounds(-10.0, 10.0))
        assert rescaling.shift == 0.0
        assert rescaling.scale == pytest.approx(10.0 * 1.01)

    def test_identity_matrix_rejected(self):
        with pytest.raises(SpectrumError):
            rescale_operator(np.eye(4))

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            rescale_operator(np.diag([0.0, 1.0]), method="guess")

    def test_csr_stays_csr(self):
        from repro.sparse import CSRMatrix

        h = tight_binding_hamiltonian(chain(16), format="csr")
        scaled, _ = rescale_operator(h)
        assert isinstance(scaled, CSRMatrix)

    def test_scaled_eigs_match_transformed(self):
        h = tight_binding_hamiltonian(chain(16), format="dense")
        scaled, rescaling = rescale_operator(h)
        eigs = np.linalg.eigvalsh(h.to_dense())
        scaled_eigs = np.linalg.eigvalsh(scaled.to_dense())
        np.testing.assert_allclose(scaled_eigs, rescaling.to_scaled(eigs), atol=1e-12)


class TestExactBoundsUnderflowRegression:
    """eigvalsh misreports extremal eigenvalues when an entry's square
    underflows; exact_bounds must flush such spectrally-irrelevant
    couplings (hypothesis-found counterexample)."""

    def test_tiny_coupling_does_not_narrow_bounds(self):
        matrix = np.zeros((5, 5))
        matrix[0, 1] = matrix[1, 0] = 1.16535886e-161
        matrix[1, 3] = matrix[3, 1] = 2.4375
        matrix[2, 2] = -3.0
        bounds = exact_bounds(matrix)
        assert bounds.upper == pytest.approx(2.4375, abs=1e-12)
        assert bounds.lower == pytest.approx(-3.0, abs=1e-12)

    def test_rescaled_spectrum_stays_inside(self):
        matrix = np.zeros((5, 5))
        matrix[0, 1] = matrix[1, 0] = 1.16535886e-161
        matrix[1, 3] = matrix[3, 1] = 2.4375
        matrix[2, 2] = -3.0
        scaled, _ = rescale_operator(matrix, method="exact", epsilon=0.02)
        eigs = np.linalg.eigvalsh(scaled.to_dense())
        assert eigs[0] >= -1.0
        assert eigs[-1] <= 1.0
