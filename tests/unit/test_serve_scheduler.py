"""Unit tests for repro.serve.scheduler (FIFO/EDF + coalesce + cancel)."""

from dataclasses import dataclass

import pytest

from repro.errors import ValidationError
from repro.serve import EdfCoalesceScheduler, FifoCoalesceScheduler, QueuedRequest


def queued(seq: int, key: str) -> QueuedRequest:
    return QueuedRequest(seq=seq, request=None, operator=None, key=(key,))


@dataclass(frozen=True)
class FakeRequest:
    """Just the scheduling-relevant surface of a v2 request."""

    effective_deadline: float = float("inf")
    priority: int = 0


def timed(seq: int, key: str, deadline=float("inf"), priority=0) -> QueuedRequest:
    return QueuedRequest(
        seq=seq,
        request=FakeRequest(effective_deadline=deadline, priority=priority),
        operator=None,
        key=(key,),
    )


class TestFifoCoalesceScheduler:
    def test_coalesces_by_key(self):
        sched = FifoCoalesceScheduler()
        for seq, key in enumerate(["a", "b", "a", "a", "b"]):
            sched.enqueue(queued(seq, key))
        batches = sched.drain()
        assert [b.key for b in batches] == [("a",), ("b",)]
        assert [[q.seq for q in b.entries] for b in batches] == [[0, 2, 3], [1, 4]]
        assert sched.depth == 0

    def test_first_arrival_order(self):
        # A late burst of "b" repeats must not jump ahead of older "a".
        sched = FifoCoalesceScheduler()
        for seq, key in enumerate(["b", "a", "b", "b", "b"]):
            sched.enqueue(queued(seq, key))
        assert [b.key for b in sched.drain()] == [("b",), ("a",)]

    def test_max_batch_size_splits(self):
        sched = FifoCoalesceScheduler(max_batch_size=2)
        for seq in range(5):
            sched.enqueue(queued(seq, "a"))
        batches = sched.drain()
        assert [b.size for b in batches] == [2, 2, 1]
        assert [b.batch_id for b in batches] == [0, 1, 2]

    def test_batch_ids_increase_across_drains(self):
        sched = FifoCoalesceScheduler()
        sched.enqueue(queued(0, "a"))
        first = sched.drain()
        sched.enqueue(queued(1, "a"))
        second = sched.drain()
        assert first[0].batch_id == 0
        assert second[0].batch_id == 1

    def test_depth_and_peak(self):
        sched = FifoCoalesceScheduler()
        for seq in range(3):
            sched.enqueue(queued(seq, "a"))
        assert sched.depth == 3
        sched.drain()
        assert sched.depth == 0
        assert sched.peak_depth == 3
        assert sched.enqueued_total == 3

    def test_replay_determinism(self):
        trace = ["a", "b", "a", "c", "b", "c", "c"]

        def run():
            sched = FifoCoalesceScheduler(max_batch_size=2)
            for seq, key in enumerate(trace):
                sched.enqueue(queued(seq, key))
            return [(b.batch_id, b.key, [q.seq for q in b.entries])
                    for b in sched.drain()]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValidationError):
            FifoCoalesceScheduler(max_batch_size=0)
        with pytest.raises(ValidationError):
            FifoCoalesceScheduler().enqueue("not-a-request")


class TestCancellation:
    def test_cancel_removes_before_drain(self):
        sched = FifoCoalesceScheduler()
        for seq, key in enumerate(["a", "b", "a"]):
            sched.enqueue(queued(seq, key))
        removed = sched.cancel(1)
        assert removed is not None and removed.seq == 1
        assert sched.cancelled_total == 1
        batches = sched.drain()
        assert [b.key for b in batches] == [("a",)]
        assert [q.seq for q in batches[0].entries] == [0, 2]

    def test_cancel_unknown_is_noop(self):
        sched = FifoCoalesceScheduler()
        sched.enqueue(queued(0, "a"))
        assert sched.cancel(99) is None
        sched.drain()
        # Already drained: cancelling served work is a no-op, not an error.
        assert sched.cancel(0) is None
        assert sched.cancelled_total == 0

    def test_cancel_works_on_edf_too(self):
        sched = EdfCoalesceScheduler()
        sched.enqueue(timed(0, "a", deadline=5.0))
        sched.enqueue(timed(1, "b", deadline=1.0))
        assert sched.cancel(1).seq == 1
        assert [b.key for b in sched.drain()] == [("a",)]


class TestEdfCoalesceScheduler:
    def test_tightest_deadline_first(self):
        sched = EdfCoalesceScheduler()
        sched.enqueue(timed(0, "late", deadline=9.0))
        sched.enqueue(timed(1, "tight", deadline=2.0))
        sched.enqueue(timed(2, "mid", deadline=5.0))
        assert [b.key for b in sched.drain()] == [("tight",), ("mid",), ("late",)]

    def test_group_deadline_is_earliest_member(self):
        # A late repeat with a tight deadline pulls its whole group forward.
        sched = EdfCoalesceScheduler()
        sched.enqueue(timed(0, "a", deadline=8.0))
        sched.enqueue(timed(1, "b", deadline=4.0))
        sched.enqueue(timed(2, "a", deadline=1.0))
        batches = sched.drain()
        assert [b.key for b in batches] == [("a",), ("b",)]
        assert batches[0].earliest_deadline == 1.0

    def test_no_deadline_sorts_last(self):
        sched = EdfCoalesceScheduler()
        sched.enqueue(timed(0, "none"))
        sched.enqueue(timed(1, "dated", deadline=100.0))
        assert [b.key for b in sched.drain()] == [("dated",), ("none",)]

    def test_priority_breaks_deadline_ties(self):
        sched = EdfCoalesceScheduler()
        sched.enqueue(timed(0, "low", deadline=3.0, priority=0))
        sched.enqueue(timed(1, "high", deadline=3.0, priority=2))
        assert [b.key for b in sched.drain()] == [("high",), ("low",)]

    def test_seq_breaks_remaining_ties(self):
        sched = EdfCoalesceScheduler()
        sched.enqueue(timed(0, "first", deadline=3.0, priority=1))
        sched.enqueue(timed(1, "second", deadline=3.0, priority=1))
        assert [b.key for b in sched.drain()] == [("first",), ("second",)]

    def test_membership_identical_to_fifo(self):
        # Only batch *order* may differ from FIFO — never the grouping or
        # the within-group member order (the equivalence property's crux).
        entries = [
            timed(0, "a", deadline=9.0),
            timed(1, "b", deadline=2.0),
            timed(2, "a", deadline=7.0),
            timed(3, "c"),
            timed(4, "b", deadline=3.0),
        ]
        fifo, edf = FifoCoalesceScheduler(), EdfCoalesceScheduler()
        for item in entries:
            fifo.enqueue(item)
            edf.enqueue(item)
        by_key_fifo = {b.key: [q.seq for q in b.entries] for b in fifo.drain()}
        by_key_edf = {b.key: [q.seq for q in b.entries] for b in edf.drain()}
        assert by_key_fifo == by_key_edf

    def test_max_batch_size_siblings_stay_adjacent(self):
        sched = EdfCoalesceScheduler(max_batch_size=2)
        for seq in range(3):
            sched.enqueue(timed(seq, "big", deadline=1.0))
        sched.enqueue(timed(3, "small", deadline=50.0))
        batches = sched.drain()
        assert [b.key for b in batches] == [("big",), ("big",), ("small",)]
        assert [b.size for b in batches] == [2, 1, 1]

    def test_legacy_requests_schedule_fine(self):
        # QueuedRequest with request=None (no deadline/priority attrs)
        # must still drain — getattr defaults keep v1 traffic valid.
        sched = EdfCoalesceScheduler()
        sched.enqueue(queued(0, "legacy"))
        sched.enqueue(timed(1, "dated", deadline=1.0))
        assert [b.key for b in sched.drain()] == [("dated",), ("legacy",)]
