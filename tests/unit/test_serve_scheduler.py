"""Unit tests for repro.serve.scheduler (FIFO + coalesce)."""

import pytest

from repro.errors import ValidationError
from repro.serve import FifoCoalesceScheduler, QueuedRequest


def queued(seq: int, key: str) -> QueuedRequest:
    return QueuedRequest(seq=seq, request=None, operator=None, key=(key,))


class TestFifoCoalesceScheduler:
    def test_coalesces_by_key(self):
        sched = FifoCoalesceScheduler()
        for seq, key in enumerate(["a", "b", "a", "a", "b"]):
            sched.enqueue(queued(seq, key))
        batches = sched.drain()
        assert [b.key for b in batches] == [("a",), ("b",)]
        assert [[q.seq for q in b.entries] for b in batches] == [[0, 2, 3], [1, 4]]
        assert sched.depth == 0

    def test_first_arrival_order(self):
        # A late burst of "b" repeats must not jump ahead of older "a".
        sched = FifoCoalesceScheduler()
        for seq, key in enumerate(["b", "a", "b", "b", "b"]):
            sched.enqueue(queued(seq, key))
        assert [b.key for b in sched.drain()] == [("b",), ("a",)]

    def test_max_batch_size_splits(self):
        sched = FifoCoalesceScheduler(max_batch_size=2)
        for seq in range(5):
            sched.enqueue(queued(seq, "a"))
        batches = sched.drain()
        assert [b.size for b in batches] == [2, 2, 1]
        assert [b.batch_id for b in batches] == [0, 1, 2]

    def test_batch_ids_increase_across_drains(self):
        sched = FifoCoalesceScheduler()
        sched.enqueue(queued(0, "a"))
        first = sched.drain()
        sched.enqueue(queued(1, "a"))
        second = sched.drain()
        assert first[0].batch_id == 0
        assert second[0].batch_id == 1

    def test_depth_and_peak(self):
        sched = FifoCoalesceScheduler()
        for seq in range(3):
            sched.enqueue(queued(seq, "a"))
        assert sched.depth == 3
        sched.drain()
        assert sched.depth == 0
        assert sched.peak_depth == 3
        assert sched.enqueued_total == 3

    def test_replay_determinism(self):
        trace = ["a", "b", "a", "c", "b", "c", "c"]

        def run():
            sched = FifoCoalesceScheduler(max_batch_size=2)
            for seq, key in enumerate(trace):
                sched.enqueue(queued(seq, key))
            return [(b.batch_id, b.key, [q.seq for q in b.entries])
                    for b in sched.drain()]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValidationError):
            FifoCoalesceScheduler(max_batch_size=0)
        with pytest.raises(ValidationError):
            FifoCoalesceScheduler().enqueue("not-a-request")
