"""Unit tests for repro.cpu (spec, cost model, backend)."""

import numpy as np
import pytest

from repro.cpu import (
    CORE_I7_930,
    CacheLevel,
    CpuModelEngine,
    CpuSpec,
    bandwidth_for_footprint,
    cpu_kpm_breakdown,
    estimate_cpu_kpm_seconds,
    phase_time,
    tiny_test_cpu,
)
from repro.errors import ValidationError
from repro.kpm import KPMConfig, rescale_operator, stochastic_moments
from repro.lattice import chain, tight_binding_hamiltonian

from repro.cpu.backend import cpu_kpm_breakdown as breakdown_fn


class TestCpuSpec:
    def test_i7_peak(self):
        # 2.8 GHz x 2 flops x 0.9 efficiency.
        assert CORE_I7_930.peak_flops == pytest.approx(2.8e9 * 2 * 0.9)

    def test_cache_ordering_enforced(self):
        with pytest.raises(ValidationError):
            CpuSpec(
                name="bad",
                clock_ghz=1.0,
                flops_per_cycle=1.0,
                cache_levels=(
                    CacheLevel("L2", 1024, 1e9),
                    CacheLevel("L1", 512, 2e9),
                ),
                dram_bandwidth_bytes_per_s=1e9,
            )

    def test_cache_level_validation(self):
        with pytest.raises(ValidationError):
            CacheLevel("L1", 0, 1e9)

    def test_with_updates(self):
        spec = CORE_I7_930.with_updates(clock_ghz=3.0)
        assert spec.clock_ghz == 3.0


class TestBandwidthForFootprint:
    def test_picks_innermost_level(self):
        spec = tiny_test_cpu()
        assert bandwidth_for_footprint(spec, 512) == 4e9  # fits L1
        assert bandwidth_for_footprint(spec, 8 * 1024) == 2e9  # fits L2
        assert bandwidth_for_footprint(spec, 1024 * 1024) == 1e9  # DRAM

    def test_boundary_inclusive(self):
        spec = tiny_test_cpu()
        assert bandwidth_for_footprint(spec, 1024) == 4e9

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            bandwidth_for_footprint(tiny_test_cpu(), -1)


class TestPhaseTime:
    def test_compute_bound(self):
        spec = tiny_test_cpu()  # 1 GFLOP/s peak
        seconds = phase_time(spec, flops=2e9, bytes_moved=8, footprint_bytes=8)
        assert seconds == pytest.approx(2.0)

    def test_memory_bound(self):
        spec = tiny_test_cpu()
        seconds = phase_time(spec, flops=1.0, bytes_moved=2e9)  # DRAM at 1 GB/s
        assert seconds == pytest.approx(2.0)

    def test_footprint_selects_bandwidth(self):
        spec = tiny_test_cpu()
        fast = phase_time(spec, flops=0.0, bytes_moved=4e9, footprint_bytes=512)
        slow = phase_time(spec, flops=0.0, bytes_moved=4e9, footprint_bytes=10**6)
        assert fast < slow

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            phase_time(tiny_test_cpu(), flops=-1, bytes_moved=0)


class TestKpmBreakdown:
    def test_phases_present(self):
        config = KPMConfig(num_moments=64, num_random_vectors=4)
        breakdown = cpu_kpm_breakdown(CORE_I7_930, 256, config)
        assert set(breakdown) == {"random", "matvec", "axpy", "dot"}
        assert all(v > 0 for v in breakdown.values())

    def test_matvec_dominates_dense(self):
        config = KPMConfig(num_moments=64, num_random_vectors=4)
        breakdown = cpu_kpm_breakdown(CORE_I7_930, 1024, config)
        assert breakdown["matvec"] > 10 * breakdown["dot"]

    def test_linear_in_n(self):
        base = KPMConfig(num_moments=128, num_random_vectors=4)
        t1 = estimate_cpu_kpm_seconds(CORE_I7_930, 256, base)
        t2 = estimate_cpu_kpm_seconds(CORE_I7_930, 256, base.with_updates(num_moments=256))
        assert t2 == pytest.approx(2 * t1, rel=0.05)

    def test_linear_in_vectors(self):
        base = KPMConfig(num_moments=64, num_random_vectors=4)
        t1 = estimate_cpu_kpm_seconds(CORE_I7_930, 256, base)
        t2 = estimate_cpu_kpm_seconds(
            CORE_I7_930, 256, base.with_updates(num_random_vectors=8)
        )
        assert t2 == pytest.approx(2 * t1, rel=0.05)

    def test_cache_cliff_superquadratic(self):
        # D=512 (2 MiB matrix) streams from L3; D=2048 (32 MiB) from DRAM.
        # Pure O(D^2) would be a 16x ratio; the bandwidth cliff adds more.
        config = KPMConfig(num_moments=64, num_random_vectors=4)
        t_512 = estimate_cpu_kpm_seconds(CORE_I7_930, 512, config)
        t_2048 = estimate_cpu_kpm_seconds(CORE_I7_930, 2048, config)
        assert t_2048 > 17.0 * t_512

    def test_csr_much_cheaper(self):
        config = KPMConfig(num_moments=64, num_random_vectors=4)
        dense = estimate_cpu_kpm_seconds(CORE_I7_930, 1000, config)
        sparse = estimate_cpu_kpm_seconds(CORE_I7_930, 1000, config, nnz=7000)
        assert sparse < dense / 10

    def test_requires_spec(self):
        with pytest.raises(ValidationError):
            cpu_kpm_breakdown("cpu", 100, KPMConfig())


class TestCpuModelEngine:
    def test_numerics_match_numpy_backend(self, chain_csr, small_config):
        scaled, _ = rescale_operator(chain_csr)
        engine_data, report = CpuModelEngine().compute_moments(scaled, small_config)
        reference = stochastic_moments(scaled, small_config)
        np.testing.assert_array_equal(engine_data.mu, reference.mu)
        assert report.backend == "cpu-model"

    def test_modeled_time_matches_estimate(self, chain_csr, small_config):
        scaled, _ = rescale_operator(chain_csr)
        _, report = CpuModelEngine().compute_moments(scaled, small_config)
        expected = estimate_cpu_kpm_seconds(
            CORE_I7_930, chain_csr.shape[0], small_config, nnz=chain_csr.nnz_stored
        )
        assert report.modeled_seconds == pytest.approx(expected)

    def test_dense_operator_priced_dense(self, chain_dense, small_config):
        scaled, _ = rescale_operator(chain_dense)
        _, report = CpuModelEngine().compute_moments(scaled, small_config)
        expected = estimate_cpu_kpm_seconds(CORE_I7_930, 64, small_config)
        assert report.modeled_seconds == pytest.approx(expected)

    def test_breakdown_sums_to_total(self, chain_csr, small_config):
        scaled, _ = rescale_operator(chain_csr)
        _, report = CpuModelEngine().compute_moments(scaled, small_config)
        assert sum(report.breakdown.values()) == pytest.approx(report.modeled_seconds)
