"""Unit tests for the figure-regeneration functions (shape-level checks).

These use small/default parameters; the band assertions against the
paper live in ``tests/integration/test_figures_end_to_end.py``.
"""

import numpy as np
import pytest

from repro.bench import (
    block_size_ablation,
    crs_vs_dense_ablation,
    fig5,
    fig6,
    fig7,
    fig8,
    kernel_comparison_ablation,
    multigpu_ablation,
)


class TestFig5:
    def test_columns_and_rows(self):
        result = fig5()
        assert result.columns == ("N", "cpu_seconds", "gpu_seconds", "speedup")
        assert result.column("N") == [128, 256, 512, 1024]

    def test_custom_sweep(self):
        result = fig5(n_values=(64, 128))
        assert len(result.rows) == 2

    def test_times_positive_and_increasing(self):
        result = fig5()
        cpu = result.column("cpu_seconds")
        assert all(t > 0 for t in cpu)
        assert cpu == sorted(cpu)


class TestFig6:
    def test_dos_columns(self):
        result = fig6(side=5, n_values=(32, 64), num_random_vectors=4,
                      num_realizations=1, num_energy_points=128)
        assert result.columns == ("energy", "dos_N32", "dos_N64")
        assert len(result.rows) == 128

    def test_energies_ascending(self):
        result = fig6(side=4, n_values=(16,), num_random_vectors=2,
                      num_realizations=1, num_energy_points=64)
        energies = result.column("energy")
        assert energies == sorted(energies)

    def test_both_curves_normalized(self):
        result = fig6(side=5, n_values=(32, 64), num_random_vectors=8,
                      num_realizations=1, num_energy_points=256)
        energies = np.array(result.column("energy"))
        for name in ("dos_N32", "dos_N64"):
            integral = np.trapezoid(np.array(result.column(name)), energies)
            assert integral == pytest.approx(1.0, abs=0.03)


class TestFig7Fig8:
    def test_fig7_shape(self):
        result = fig7(n_values=(128, 256))
        assert len(result.rows) == 2
        assert all(s > 1 for s in result.column("speedup"))

    def test_fig8_shape(self):
        result = fig8(h_sizes=(256, 512))
        assert result.column("H_SIZE") == [256, 512]


class TestAblations:
    def test_blocksize_columns(self):
        result = block_size_ablation(num_moments=64)
        assert "seconds_D128" in result.columns
        assert len(result.rows) >= 8

    def test_crs_ablation_csr_always_wins(self):
        result = crs_vs_dense_ablation(sides=(6, 8), num_moments=64)
        assert all(r > 1 for r in result.column("gpu_dense_over_csr"))

    def test_crs_advantage_grows(self):
        result = crs_vs_dense_ablation(sides=(6, 10), num_moments=64)
        ratios = result.column("gpu_dense_over_csr")
        assert ratios[1] > ratios[0]

    def test_multigpu_tuned_scales_better(self):
        result = multigpu_ablation(device_counts=(1, 8), num_moments=64)
        assert result.column("scaling_tuned")[1] >= result.column("scaling_bs256")[1]

    def test_kernel_ablation_dirichlet_rings(self):
        result = kernel_comparison_ablation(side=6, num_moments=64)
        rows = {row[0]: row for row in result.rows}
        assert rows["dirichlet"][2] > 10 * max(rows["jackson"][2], 1e-9)

    def test_kernel_ablation_integrals_one(self):
        result = kernel_comparison_ablation(side=6, num_moments=64)
        for row in result.rows:
            assert row[1] == pytest.approx(1.0, abs=0.05)
