"""Unit tests for repro.lattice.hamiltonian — including the paper's matrix facts."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.lattice import (
    TightBindingModel,
    chain,
    cubic,
    hamiltonian_from_edges,
    honeycomb_edges,
    paper_cubic_hamiltonian,
    tight_binding_hamiltonian,
)
from repro.sparse import COOMatrix, CSRMatrix, DenseOperator


class TestPaperMatrixFacts:
    """Pin the Sec. IV-A characterization of the workload matrix."""

    def test_dimension_1000(self):
        h = paper_cubic_hamiltonian(10, format="csr")
        assert h.shape == (1000, 1000)

    def test_seven_stored_elements_per_row(self):
        h = paper_cubic_hamiltonian(5, format="csr")
        np.testing.assert_array_equal(h.row_nnz(), np.full(125, 7))

    def test_diagonal_all_zero(self):
        h = paper_cubic_hamiltonian(5, format="csr")
        np.testing.assert_array_equal(h.diagonal(), np.zeros(125))

    def test_offdiagonal_entries_minus_one(self):
        h = paper_cubic_hamiltonian(4, format="csr")
        off = h.data[h.data != 0.0]
        np.testing.assert_array_equal(off, np.full(off.size, -1.0))

    def test_symmetric(self):
        assert paper_cubic_hamiltonian(4, format="csr").is_symmetric()

    def test_default_format_dense(self):
        assert isinstance(paper_cubic_hamiltonian(3), DenseOperator)

    def test_spectrum_in_minus6_6(self):
        h = paper_cubic_hamiltonian(4, format="dense")
        eigs = np.linalg.eigvalsh(h.to_dense())
        assert eigs[0] >= -6.0 - 1e-9
        assert eigs[-1] <= 6.0 + 1e-9


class TestHamiltonianFromEdges:
    def test_hermitian_partner_added(self):
        h = hamiltonian_from_edges(3, [0], [1], hopping=-2.0, format="dense")
        dense = h.to_dense()
        assert dense[0, 1] == -2.0
        assert dense[1, 0] == -2.0

    def test_per_bond_hoppings(self):
        h = hamiltonian_from_edges(
            3, [0, 1], [1, 2], hopping=[-1.0, -3.0], format="dense"
        )
        assert h.to_dense()[1, 2] == -3.0

    def test_per_site_onsite(self):
        h = hamiltonian_from_edges(
            2, [0], [1], onsite=[0.5, -0.5], format="dense"
        )
        np.testing.assert_array_equal(np.diag(h.to_dense()), [0.5, -0.5])

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError, match="self-loop"):
            hamiltonian_from_edges(2, [0], [0])

    def test_endpoint_out_of_range(self):
        with pytest.raises(ValidationError):
            hamiltonian_from_edges(2, [0], [5])

    def test_store_diagonal_false_drops_zero_diagonal(self):
        h = hamiltonian_from_edges(3, [0], [1], store_diagonal=False, format="csr")
        assert h.nnz_stored == 2

    def test_store_diagonal_false_keeps_nonzero_onsite(self):
        h = hamiltonian_from_edges(
            3, [0], [1], onsite=[0.0, 1.0, 0.0], store_diagonal=False, format="csr"
        )
        assert h.nnz_stored == 3

    def test_format_coo(self):
        h = hamiltonian_from_edges(2, [0], [1], format="coo")
        assert isinstance(h, COOMatrix)

    def test_unknown_format(self):
        with pytest.raises(ValidationError):
            hamiltonian_from_edges(2, [0], [1], format="csc")

    def test_wrong_hopping_length(self):
        with pytest.raises(ShapeError):
            hamiltonian_from_edges(3, [0, 1], [1, 2], hopping=[1.0])

    def test_duplicate_bond_amplitudes_sum(self):
        h = hamiltonian_from_edges(2, [0, 0], [1, 1], hopping=-1.0, format="dense")
        assert h.to_dense()[0, 1] == -2.0


class TestTightBindingModel:
    def test_formats_agree(self):
        model = TightBindingModel(chain(8))
        np.testing.assert_array_equal(
            model.build("csr").to_dense(), model.build("dense").to_dense()
        )

    def test_chain_matrix_structure(self):
        h = tight_binding_hamiltonian(chain(4, periodic=False), format="dense")
        expected = np.array(
            [
                [0.0, -1.0, 0.0, 0.0],
                [-1.0, 0.0, -1.0, 0.0],
                [0.0, -1.0, 0.0, -1.0],
                [0.0, 0.0, -1.0, 0.0],
            ]
        )
        np.testing.assert_array_equal(h.to_dense(), expected)

    def test_chain_eigenvalues_analytic(self):
        # Periodic chain: E_k = -2 cos(2 pi k / L) for hopping -1.
        h = tight_binding_hamiltonian(chain(12), format="dense")
        eigs = np.sort(np.linalg.eigvalsh(h.to_dense()))
        k = np.arange(12)
        expected = np.sort(-2.0 * np.cos(2.0 * np.pi * k / 12))
        np.testing.assert_allclose(eigs, expected, atol=1e-12)

    def test_rejects_non_lattice(self):
        with pytest.raises(ValidationError):
            tight_binding_hamiltonian(np.eye(3))

    def test_num_sites(self):
        assert TightBindingModel(cubic(3)).num_sites() == 27

    def test_honeycomb_edges_feed_builder(self):
        num_sites, i, j = honeycomb_edges(3, 3, periodic=True)
        h = hamiltonian_from_edges(num_sites, i, j, format="csr")
        assert h.is_symmetric()
        # Graphene spectrum is symmetric about zero (bipartite lattice).
        eigs = np.linalg.eigvalsh(h.to_dense())
        np.testing.assert_allclose(eigs, -eigs[::-1], atol=1e-10)
