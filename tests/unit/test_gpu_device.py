"""Unit tests for repro.gpu.device and repro.gpu.kernel execution."""

import numpy as np
import pytest

from repro.errors import DeviceError, LaunchError, ValidationError
from repro.gpu import Device, KernelStats, TESLA_C2050, kernel, tiny_test_device


@kernel("copy")
def copy_kernel(ctx, src, dst):
    idx = ctx.thread_range(src.shape[0])
    dst.data[idx] = src.data[idx]
    ctx.charge(flops=0.0, gmem_read=8.0 * idx.size, gmem_write=8.0 * idx.size)


@kernel("shared_hog")
def shared_hog_kernel(ctx):
    ctx.shared_alloc(ctx.shared_limit_bytes + 1)


@kernel("tree_reduce", pow2_block=True)
def tree_reduce_kernel(ctx, src, dst):
    idx = ctx.thread_range(src.shape[0])
    dst.data[idx] = src.data[idx]
    ctx.charge(flops=0.0, gmem_read=8.0 * idx.size, gmem_write=8.0 * idx.size)


def plain_function(ctx):
    pass


class TestLaunchValidation:
    @pytest.fixture
    def device(self):
        return Device(tiny_test_device())

    def test_requires_kernel_decorator(self, device):
        with pytest.raises(LaunchError, match="@repro.gpu.kernel"):
            device.launch(plain_function, grid=1, block=32)

    def test_block_too_large(self, device):
        with pytest.raises(LaunchError):
            device.launch(copy_kernel, grid=1, block=4096, args=())

    def test_freed_argument_rejected(self, device):
        arr = device.alloc(8)
        arr.free()
        with pytest.raises(DeviceError):
            device.launch(copy_kernel, grid=1, block=32, args=(arr, arr))

    def test_shared_overflow_inside_kernel(self, device):
        with pytest.raises(LaunchError, match="shared memory overflow"):
            device.launch(shared_hog_kernel, grid=1, block=32)

    def test_kernel_called_outside_launch(self):
        with pytest.raises(DeviceError, match="Device.launch"):
            copy_kernel("not a context")

    def test_requires_spec(self):
        with pytest.raises(ValidationError):
            Device("gpu")

    def test_pow2_block_kernel_rejects_non_power_of_two(self, device):
        src = device.alloc(8 * 16)
        dst = device.alloc(8 * 16)
        with pytest.raises(ValidationError, match="power of two"):
            device.launch(tree_reduce_kernel, grid=1, block=24, args=(src, dst))

    def test_pow2_block_kernel_accepts_power_of_two(self, device):
        src = device.alloc(8 * 16)
        dst = device.alloc(8 * 16)
        device.launch(tree_reduce_kernel, grid=1, block=16, args=(src, dst))

    def test_pow2_block_attribute(self):
        assert tree_reduce_kernel.pow2_block is True
        assert copy_kernel.pow2_block is False


class TestExecution:
    @pytest.fixture
    def device(self):
        return Device(tiny_test_device())

    def test_functional_result(self, device, rng):
        host = rng.standard_normal(100)
        src = device.alloc(100)
        dst = device.alloc(100)
        device.memcpy_htod(src, host)
        device.launch(copy_kernel, grid=4, block=32, args=(src, dst))
        out = np.empty(100)
        device.memcpy_dtoh(out, dst)
        np.testing.assert_array_equal(out, host)

    def test_grid_stride_covers_all_items(self, device, rng):
        # Fewer threads than items: the grid-stride loop must still cover.
        host = rng.standard_normal(100)
        src = device.alloc(100)
        dst = device.alloc(100)
        device.memcpy_htod(src, host)
        device.launch(copy_kernel, grid=1, block=16, args=(src, dst))
        np.testing.assert_array_equal(dst.data, host)

    def test_event_records_stats(self, device):
        src = device.alloc(64)
        dst = device.alloc(64)
        event = device.launch(copy_kernel, grid=2, block=32, args=(src, dst))
        assert event.stats.gmem_read_bytes == 8 * 64
        assert event.stats.gmem_write_bytes == 8 * 64
        assert event.seconds > 0

    def test_modeled_time_accumulates(self, device):
        src = device.alloc(64)
        dst = device.alloc(64)
        device.launch(copy_kernel, grid=1, block=32, args=(src, dst))
        t1 = device.modeled_seconds
        device.launch(copy_kernel, grid=1, block=32, args=(src, dst))
        assert device.modeled_seconds > t1

    def test_setup_charged_once(self):
        spec = tiny_test_device(setup_overhead_s=0.5)
        device = Device(spec)
        device.alloc(4)
        device.alloc(4)
        assert device.profiler.setup_seconds == 0.5

    def test_reset_clears_state(self, device):
        src = device.alloc(64)
        dst = device.alloc(64)
        device.launch(copy_kernel, grid=1, block=32, args=(src, dst))
        device.reset()
        assert device.modeled_seconds == 0.0
        assert device.memory.used_bytes == 0

    def test_synchronize_noop(self, device):
        device.synchronize()


class TestProfiler:
    def test_seconds_by_kernel(self):
        device = Device(tiny_test_device())
        src = device.alloc(64)
        dst = device.alloc(64)
        device.launch(copy_kernel, grid=1, block=32, args=(src, dst))
        device.launch(copy_kernel, grid=1, block=32, args=(src, dst))
        totals = device.profiler.seconds_by_kernel()
        assert set(totals) == {"copy"}
        assert totals["copy"] == pytest.approx(device.profiler.kernel_seconds)

    def test_launch_count(self):
        device = Device(tiny_test_device())
        src = device.alloc(64)
        dst = device.alloc(64)
        device.launch(copy_kernel, grid=1, block=32, args=(src, dst))
        assert device.profiler.launch_count() == 1
        assert device.profiler.launch_count("copy") == 1
        assert device.profiler.launch_count("other") == 0

    def test_timeline_renders(self):
        device = Device(tiny_test_device())
        src = device.alloc(8)
        device.memcpy_htod(src, np.zeros(8))
        dst = device.alloc(8)
        device.launch(copy_kernel, grid=1, block=32, args=(src, dst))
        text = device.profiler.timeline()
        assert "memcpy_htod" in text
        assert "copy<<<" in text

    def test_timeline_limit(self):
        device = Device(tiny_test_device())
        src = device.alloc(8)
        for _ in range(5):
            device.memcpy_htod(src, np.zeros(8))
        text = device.profiler.timeline(limit=2)
        assert "earlier events" in text
