"""Unit tests for repro.kpm.random_vectors."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm import available_vector_kinds, random_block, random_vector


class TestRandomVector:
    def test_rademacher_values(self):
        v = random_vector(1000, "rademacher", seed=0)
        assert set(np.unique(v)) <= {-1.0, 1.0}

    def test_rademacher_norm_exact(self):
        v = random_vector(500, "rademacher", seed=1)
        assert v @ v == pytest.approx(500.0)

    def test_gaussian_moments(self):
        v = random_vector(100000, "gaussian", seed=2)
        assert abs(v.mean()) < 0.02
        assert v.std() == pytest.approx(1.0, abs=0.02)

    def test_deterministic(self):
        a = random_vector(64, seed=5, realization=2, vector_index=3)
        b = random_vector(64, seed=5, realization=2, vector_index=3)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent_of_each_other(self):
        a = random_vector(64, seed=5, realization=0, vector_index=0)
        b = random_vector(64, seed=5, realization=0, vector_index=1)
        c = random_vector(64, seed=5, realization=1, vector_index=0)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown vector kind"):
            random_vector(10, "cauchy")

    def test_kinds_registry(self):
        assert set(available_vector_kinds()) == {"rademacher", "gaussian"}


class TestRandomBlock:
    def test_columns_match_single_vectors(self):
        block = random_block(32, 5, seed=9, realization=1)
        for k in range(5):
            np.testing.assert_array_equal(
                block[:, k],
                random_vector(32, seed=9, realization=1, vector_index=k),
            )

    def test_first_vector_offset(self):
        block = random_block(16, 3, seed=0, first_vector=10)
        np.testing.assert_array_equal(
            block[:, 0], random_vector(16, seed=0, vector_index=10)
        )

    def test_contiguous(self):
        assert random_block(8, 4).flags["C_CONTIGUOUS"]

    def test_trace_estimator_unbiased_for_identity(self):
        # <r|I|r>/D must equal 1 exactly for rademacher vectors.
        block = random_block(64, 10, "rademacher", seed=3)
        norms = np.einsum("ij,ij->j", block, block) / 64
        np.testing.assert_allclose(norms, np.ones(10))
