"""Unit tests for the command-line interface."""

import io

import numpy as np
import pytest

from repro.cli import main


class TestDosCommand:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "dos.csv"
        code = main([
            "dos", "--lattice", "chain:64", "-N", "32", "-R", "4",
            "-o", str(out),
        ])
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "energy,density"
        assert len(lines) == 1 + 1024

    def test_stdout_csv(self, capsys):
        code = main(["dos", "--lattice", "chain:32", "-N", "16", "-R", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("energy,density")
        assert "integral=" in captured.err

    def test_gpu_backend(self, capsys):
        code = main([
            "dos", "--lattice", "cubic:3", "-N", "16", "-R", "4",
            "--backend", "gpu-sim", "--block-size", "32",
        ])
        assert code == 0
        assert "modeled" in capsys.readouterr().err

    def test_matrix_file_input(self, tmp_path, capsys):
        from repro.lattice import cubic, tight_binding_hamiltonian
        from repro.sparse import write_matrix_market

        path = tmp_path / "h.mtx"
        write_matrix_market(
            tight_binding_hamiltonian(cubic(3), format="csr"), str(path)
        )
        code = main(["dos", "--matrix", str(path), "-N", "16", "-R", "2"])
        assert code == 0

    def test_unknown_lattice_kind(self, capsys):
        code = main(["dos", "--lattice", "pyrochlore:4"])
        assert code == 2
        assert "unknown lattice kind" in capsys.readouterr().err


class TestTimeCommand:
    def test_paper_workload(self, capsys):
        code = main([
            "time", "--lattice", "cubic:10", "--storage", "dense",
            "-N", "512", "-R", "128", "-S", "14",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "D=1000" in out
        assert "speedup" in out

    def test_precision_flag(self, capsys):
        code = main([
            "time", "--lattice", "cubic:5", "--precision", "single",
        ])
        assert code == 0
        assert "precision=single" in capsys.readouterr().out


class TestBenchCommand:
    def test_single_figure(self, capsys):
        code = main(["bench", "fig5", "--no-plots"])
        assert code == 0
        assert "fig5" in capsys.readouterr().out


class TestSanitizeCommand:
    def test_dos_workload_is_clean(self, capsys):
        code = main(["sanitize", "--workload", "dos"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "SAN001" in out  # the full counter table prints every code
        assert "launches_checked" in out

    def test_out_writes_a_loadable_report(self, tmp_path, capsys):
        from repro.sanitize import load_sanitizer_report

        path = tmp_path / "report.json"
        code = main(["sanitize", "--workload", "dos", "--out", str(path)])
        assert code == 0
        report = load_sanitizer_report(path)
        assert report.clean
        assert report.workload["workloads"] == ["dos"]
        assert report.stats["launches_checked"] > 0

    def test_check_baseline_matches_itself(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert main(["sanitize", "--workload", "dos", "--out", str(path)]) == 0
        code = main(
            ["sanitize", "--workload", "dos", "--check-baseline", str(path)]
        )
        assert code == 0
        assert "matches baseline" in capsys.readouterr().err

    def test_check_baseline_detects_drift(self, tmp_path, capsys):
        from repro.sanitize import load_sanitizer_report, write_sanitizer_report

        path = tmp_path / "baseline.json"
        assert main(["sanitize", "--workload", "dos", "--out", str(path)]) == 0
        doctored = load_sanitizer_report(path)
        doctored.stats["launches_checked"] += 1
        write_sanitizer_report(doctored, path)
        code = main(
            ["sanitize", "--workload", "dos", "--check-baseline", str(path)]
        )
        assert code == 1
        assert "drifted from baseline" in capsys.readouterr().err

    def test_unknown_suppress_code_is_usage_error(self, capsys):
        code = main(["sanitize", "--workload", "dos", "--suppress", "SAN042"])
        assert code == 2
        assert "unknown sanitizer finding code" in capsys.readouterr().err


class TestArgumentValidation:
    def test_lattice_and_matrix_exclusive(self):
        with pytest.raises(SystemExit):
            main(["dos", "--lattice", "chain:8", "--matrix", "x.mtx"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
