"""Unit tests for repro.gpukpm.pipeline, estimator, and blocksize."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gpu import Device, TESLA_C2050, tiny_test_device
from repro.gpukpm import (
    GpuKPM,
    GpuSimEngine,
    estimate_gpu_kpm_seconds,
    gpu_kpm_breakdown,
    plan_memory,
    tune_block_size,
)
from repro.kpm import KPMConfig, rescale_operator, stochastic_moments
from repro.lattice import chain, cubic, tight_binding_hamiltonian


@pytest.fixture
def scaled_cube():
    h = tight_binding_hamiltonian(cubic(4), format="csr")
    scaled, _ = rescale_operator(h)
    return scaled


@pytest.fixture
def scaled_cube_dense():
    h = tight_binding_hamiltonian(cubic(4), format="dense")
    scaled, _ = rescale_operator(h)
    return scaled


class TestFunctionalParity:
    def test_csr_moments_match_numpy(self, scaled_cube, small_config):
        gpu_data, _ = GpuKPM().compute_moments(scaled_cube, small_config)
        reference = stochastic_moments(scaled_cube, small_config)
        np.testing.assert_allclose(gpu_data.mu, reference.mu, atol=1e-13)

    def test_dense_moments_match_numpy(self, scaled_cube_dense, small_config):
        gpu_data, _ = GpuKPM().compute_moments(scaled_cube_dense, small_config)
        reference = stochastic_moments(scaled_cube_dense, small_config)
        np.testing.assert_allclose(gpu_data.mu, reference.mu, atol=1e-13)

    def test_per_realization_match(self, scaled_cube, small_config):
        gpu_data, _ = GpuKPM().compute_moments(scaled_cube, small_config)
        reference = stochastic_moments(scaled_cube, small_config)
        np.testing.assert_allclose(
            gpu_data.per_realization, reference.per_realization, atol=1e-13
        )

    def test_block_size_does_not_change_numerics(self, scaled_cube, small_config):
        a, _ = GpuKPM().compute_moments(scaled_cube, small_config)
        b, _ = GpuKPM().compute_moments(scaled_cube, small_config.with_updates(block_size=16))
        np.testing.assert_allclose(a.mu, b.mu, atol=1e-15)

    def test_reduce_kernel_mean_matches_table(self, scaled_cube, small_config):
        data, _ = GpuKPM().compute_moments(scaled_cube, small_config)
        np.testing.assert_allclose(
            data.mu, data.per_realization.mean(axis=0), atol=1e-13
        )


class TestTimingAndResources:
    def test_estimator_matches_run_csr(self, scaled_cube, small_config):
        runner = GpuKPM()
        _, report = runner.compute_moments(scaled_cube, small_config)
        estimate = estimate_gpu_kpm_seconds(
            TESLA_C2050,
            scaled_cube.shape[0],
            small_config,
            nnz=scaled_cube.nnz_stored,
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)

    def test_estimator_matches_run_dense(self, scaled_cube_dense, small_config):
        runner = GpuKPM()
        _, report = runner.compute_moments(scaled_cube_dense, small_config)
        estimate = estimate_gpu_kpm_seconds(
            TESLA_C2050, scaled_cube_dense.shape[0], small_config
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)

    def test_breakdown_keys_match(self, scaled_cube, small_config):
        runner = GpuKPM()
        _, report = runner.compute_moments(scaled_cube, small_config)
        analytic = gpu_kpm_breakdown(
            TESLA_C2050, scaled_cube.shape[0], small_config, nnz=scaled_cube.nnz_stored
        )
        assert set(report.breakdown) == set(analytic)
        for key, value in analytic.items():
            assert report.breakdown[key] == pytest.approx(value, rel=1e-12)

    def test_memory_plan_matches_pool_peak(self, scaled_cube_dense, small_config):
        runner = GpuKPM()
        runner.compute_moments(scaled_cube_dense, small_config)
        plan = plan_memory(TESLA_C2050, scaled_cube_dense.shape[0], small_config)
        assert runner.last_device.memory.peak_bytes == plan.total_bytes

    def test_two_kernel_launches(self, scaled_cube, small_config):
        runner = GpuKPM()
        runner.compute_moments(scaled_cube, small_config)
        assert runner.last_device.profiler.launch_count("kpm_recursion") == 1
        assert runner.last_device.profiler.launch_count("reduce_moments") == 1

    def test_oom_on_tiny_device(self, small_config):
        h = tight_binding_hamiltonian(cubic(7), format="dense")  # 343^2 * 8 = 919 KiB
        scaled, _ = rescale_operator(h)
        runner = GpuKPM(tiny_test_device(global_mem_bytes=512 * 1024))
        from repro.errors import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            runner.compute_moments(scaled, small_config.with_updates(num_moments=256, block_size=64))

    def test_requires_config(self, scaled_cube):
        with pytest.raises(ValidationError):
            GpuKPM().compute_moments(scaled_cube, None)

    def test_requires_spec(self):
        with pytest.raises(ValidationError):
            GpuKPM("gpu")


class TestRunPartition:
    def test_partition_streams_match_full(self, scaled_cube, small_config):
        runner = GpuKPM()
        full_table, _, _ = runner.run_partition(
            scaled_cube, small_config, first_vector=0, num_vectors=16
        )
        part_a, _, _ = runner.run_partition(
            scaled_cube, small_config, first_vector=0, num_vectors=6
        )
        part_b, _, _ = runner.run_partition(
            scaled_cube, small_config, first_vector=6, num_vectors=10
        )
        np.testing.assert_allclose(
            np.concatenate([part_a, part_b], axis=0), full_table, atol=1e-15
        )

    def test_invalid_partition(self, scaled_cube, small_config):
        with pytest.raises(ValidationError):
            GpuKPM().run_partition(
                scaled_cube, small_config, first_vector=-1, num_vectors=4
            )


class TestEngine:
    def test_registered_backend_runs(self, scaled_cube, small_config):
        engine = GpuSimEngine()
        data, report = engine.compute_moments(scaled_cube, small_config)
        assert report.backend == "gpu-sim"
        assert report.device == "NVIDIA Tesla C2050"
        assert data.dimension == scaled_cube.shape[0]


class TestTuneBlockSize:
    def test_returns_best_and_sweep(self):
        config = KPMConfig(num_random_vectors=64, num_realizations=1, num_moments=32)
        best, points = tune_block_size(TESLA_C2050, 128, config)
        assert best in points
        assert best.modeled_seconds == min(p.modeled_seconds for p in points)

    def test_oversized_candidates_skipped(self):
        config = KPMConfig(num_random_vectors=8, num_realizations=1, num_moments=8)
        _, points = tune_block_size(
            TESLA_C2050, 64, config, candidates=(128, 4096)
        )
        assert [p.block_size for p in points] == [128]

    def test_no_feasible_candidates(self):
        config = KPMConfig(num_random_vectors=8, num_realizations=1)
        with pytest.raises(ValidationError):
            tune_block_size(TESLA_C2050, 64, config, candidates=(99999,))

    def test_wide_blocks_penalized_for_small_vectors(self):
        # D=128: BLOCK_SIZE=512 idles 3/4 of each block.
        config = KPMConfig(num_random_vectors=1792, num_realizations=1, num_moments=64)
        _, points = tune_block_size(
            TESLA_C2050, 128, config, candidates=(128, 512)
        )
        by_bs = {p.block_size: p.modeled_seconds for p in points}
        assert by_bs[512] > 2.0 * by_bs[128]


class TestResumableGpu:
    """Checkpoint capture + resume on the simulated device."""

    def test_resumable_matches_plain(self, scaled_cube, small_config):
        plain, _ = GpuKPM().compute_moments(scaled_cube, small_config)
        warm, _, state = GpuKPM().compute_moments_resumable(
            scaled_cube, small_config
        )
        assert np.array_equal(plain.mu, warm.mu)
        assert np.array_equal(plain.per_realization, warm.per_realization)
        assert state is not None
        assert state.num_moments == small_config.num_moments

    def test_capture_costs_more_than_plain(self, scaled_cube, small_config):
        _, plain_report = GpuKPM().compute_moments(scaled_cube, small_config)
        _, warm_report, _ = GpuKPM().compute_moments_resumable(
            scaled_cube, small_config
        )
        assert warm_report.modeled_seconds > plain_report.modeled_seconds

    @pytest.mark.parametrize("fmt", ["csr", "dense"])
    def test_extension_bitwise_matches_cold(self, fmt, small_config):
        h = tight_binding_hamiltonian(cubic(4), format=fmt)
        scaled, _ = rescale_operator(h)
        engine = GpuKPM()
        warm, _, state = engine.compute_moments_resumable(scaled, small_config)
        bigger = small_config.with_updates(
            num_moments=2 * small_config.num_moments + 3
        )
        extended, report, new_state = engine.extend_moments(
            scaled, bigger, warm, state
        )
        cold, _ = engine.compute_moments(scaled, bigger)
        assert np.array_equal(extended.mu, cold.mu)
        assert np.array_equal(extended.per_realization, cold.per_realization)
        assert new_state.num_moments == bigger.num_moments
        # Resuming is cheaper than a cold run at the target order.
        assert report.modeled_seconds < engine.estimate_modeled_seconds(
            scaled, bigger
        )

    def test_extension_validates_state(self, scaled_cube, small_config):
        engine = GpuKPM()
        warm, _, state = engine.compute_moments_resumable(
            scaled_cube, small_config
        )
        with pytest.raises(ValidationError, match="exceed"):
            engine.extend_moments(scaled_cube, small_config, warm, state)
        mismatched = small_config.with_updates(
            num_moments=small_config.num_moments * 2,
            num_random_vectors=small_config.num_random_vectors + 1,
        )
        with pytest.raises(ValidationError, match="vectors"):
            engine.extend_moments(scaled_cube, mismatched, warm, state)

    def test_estimator_capability_matches_execution(
        self, scaled_cube, small_config
    ):
        engine = GpuKPM()
        _, report = engine.compute_moments(scaled_cube, small_config)
        estimate = engine.estimate_modeled_seconds(scaled_cube, small_config)
        np.testing.assert_allclose(report.modeled_seconds, estimate, rtol=1e-12)

    def test_resume_rejected_in_checkpoint_mode(self, scaled_cube, small_config):
        engine = GpuKPM()
        _, _, state = engine.compute_moments_resumable(scaled_cube, small_config)
        bigger = small_config.with_updates(
            num_moments=small_config.num_moments + 4
        )
        with pytest.raises(ValidationError, match="incompatible"):
            engine.run_partition(
                scaled_cube,
                bigger,
                first_vector=0,
                num_vectors=bigger.total_vectors,
                start_moment=state.num_moments,
                resume_state=state.data,
                checkpoint_every=2,
            )
