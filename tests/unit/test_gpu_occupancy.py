"""Unit tests for repro.gpu.occupancy."""

import pytest

from repro.errors import LaunchError, ValidationError
from repro.gpu import TESLA_C2050, compute_occupancy


class TestLimits:
    def test_block_too_large(self):
        with pytest.raises(LaunchError, match="exceeds the device limit"):
            compute_occupancy(TESLA_C2050, 2048)

    def test_shared_memory_too_large(self):
        with pytest.raises(LaunchError, match="shared memory"):
            compute_occupancy(TESLA_C2050, 128, shared_bytes_per_block=64 * 1024)

    def test_registers_too_large(self):
        with pytest.raises(LaunchError, match="registers"):
            compute_occupancy(TESLA_C2050, 1024, registers_per_thread=64)

    def test_requires_spec(self):
        with pytest.raises(ValidationError):
            compute_occupancy("gpu", 128)


class TestResidency:
    def test_thread_limited(self):
        # 1536 threads/SM / 256 = 6 blocks; block-slot limit is 8.
        result = compute_occupancy(TESLA_C2050, 256)
        assert result.blocks_per_sm == 6
        assert result.limiter == "threads"

    def test_block_slot_limited(self):
        # 64-thread blocks: thread limit would allow 24, slots cap at 8.
        result = compute_occupancy(TESLA_C2050, 64)
        assert result.blocks_per_sm == 8
        assert result.limiter == "blocks"

    def test_shared_limited(self):
        result = compute_occupancy(
            TESLA_C2050, 64, shared_bytes_per_block=16 * 1024
        )
        assert result.blocks_per_sm == 3
        assert result.limiter == "shared"

    def test_register_limited(self):
        result = compute_occupancy(TESLA_C2050, 256, registers_per_thread=63)
        assert result.limiter == "registers"
        assert result.blocks_per_sm == 2

    def test_full_occupancy_case(self):
        # 6 x 256 = 1536 threads = all 48 warps.
        result = compute_occupancy(TESLA_C2050, 256)
        assert result.occupancy == pytest.approx(1.0)

    def test_single_large_block(self):
        result = compute_occupancy(TESLA_C2050, 1024)
        assert result.blocks_per_sm == 1
        assert result.occupancy == pytest.approx(32 / 48)

    def test_warp_quantization(self):
        # 33 threads occupy 2 warps each.
        result = compute_occupancy(TESLA_C2050, 33)
        warps_per_block = 2
        assert result.warps_per_sm == result.blocks_per_sm * warps_per_block
