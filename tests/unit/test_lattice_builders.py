"""Unit tests for repro.lattice.builders."""

import numpy as np
import pytest

from repro.lattice import chain, cubic, honeycomb_edges, square


class TestChain:
    def test_sites(self):
        assert chain(16).num_sites == 16

    def test_open(self):
        assert chain(16, periodic=False).periodic == (False,)


class TestSquare:
    def test_square_default_height(self):
        assert square(5).dims == (5, 5)

    def test_rectangular(self):
        assert square(5, 3).dims == (5, 3)


class TestCubic:
    def test_paper_default(self):
        lattice = cubic()
        assert lattice.dims == (10, 10, 10)
        assert lattice.num_sites == 1000
        assert lattice.periodic == (True, True, True)

    def test_anisotropic(self):
        assert cubic(4, 5, 6).num_sites == 120

    def test_single_arg_cubes(self):
        assert cubic(4).dims == (4, 4, 4)


class TestHoneycomb:
    def test_site_count(self):
        num_sites, i, j = honeycomb_edges(3, 4)
        assert num_sites == 24

    def test_periodic_bond_count(self):
        # 3 bonds per unit cell.
        num_sites, i, j = honeycomb_edges(3, 4, periodic=True)
        assert len(i) == 3 * 12

    def test_periodic_coordination_three(self):
        num_sites, i, j = honeycomb_edges(4, 4, periodic=True)
        counts = np.zeros(num_sites, dtype=int)
        np.add.at(counts, i, 1)
        np.add.at(counts, j, 1)
        np.testing.assert_array_equal(counts, np.full(num_sites, 3))

    def test_bipartite(self):
        # Every bond connects sublattice 0 to sublattice 1.
        _, i, j = honeycomb_edges(3, 3, periodic=True)
        assert np.all(i % 2 == 0)
        assert np.all(j % 2 == 1)

    def test_open_has_fewer_bonds(self):
        _, i_per, _ = honeycomb_edges(3, 3, periodic=True)
        _, i_open, _ = honeycomb_edges(3, 3, periodic=False)
        assert len(i_open) < len(i_per)

    def test_periodic_needs_two_cells(self):
        with pytest.raises(ValueError):
            honeycomb_edges(1, 3, periodic=True)
