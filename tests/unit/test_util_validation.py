"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.util.validation import (
    as_float64_array,
    check_choice,
    check_in_range,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_power_of_two,
    check_square_2d,
    check_vector,
)


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(3), "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="must be positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="must be positive"):
            check_positive_int(-2, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="must be an integer"):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="must be an integer"):
            check_positive_int(2.5, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValidationError, match="num_moments"):
            check_positive_int(-1, "num_moments")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative_int(-1, "x")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 8, 256, 1024, 2**20])
    def test_accepts_powers_of_two(self, value):
        assert check_power_of_two(value, "x") == value

    def test_accepts_numpy_int(self):
        assert check_power_of_two(np.int64(64), "x") == 64

    @pytest.mark.parametrize("value", [3, 6, 96, 192, 768, 1000])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValidationError, match="power of two"):
            check_power_of_two(value, "x")

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValidationError, match="must be positive"):
            check_power_of_two(0, "x")
        with pytest.raises(ValidationError, match="must be positive"):
            check_power_of_two(-4, "x")

    def test_rejects_non_integer(self):
        with pytest.raises(ValidationError, match="must be an integer"):
            check_power_of_two(4.0, "x")

    def test_error_names_argument(self):
        with pytest.raises(ValidationError, match="BLOCK_SIZE"):
            check_power_of_two(96, "BLOCK_SIZE")

    def test_is_validation_and_value_error(self):
        with pytest.raises(ValueError):
            check_power_of_two(12, "x")


class TestCheckPositiveFloat:
    def test_accepts_int_input(self):
        assert check_positive_float(2, "x") == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_float(0.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive_float(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive_float(float("inf"), "x")

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_positive_float("abc", "x")


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            check_in_range(1.5, "x", 0.0, 1.0)


class TestCheckChoice:
    def test_accepts_member(self):
        assert check_choice("a", "x", ("a", "b")) == "a"

    def test_rejects_non_member_and_lists_options(self):
        with pytest.raises(ValidationError, match="'a', 'b'"):
            check_choice("c", "x", ("a", "b"))


class TestArrayChecks:
    def test_square_2d_accepts_square(self):
        arr = check_square_2d(np.eye(3), "m")
        assert arr.shape == (3, 3)

    def test_square_2d_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            check_square_2d(np.ones((2, 3)), "m")

    def test_square_2d_rejects_1d(self):
        with pytest.raises(ShapeError):
            check_square_2d(np.ones(4), "m")

    def test_vector_length_check(self):
        with pytest.raises(ShapeError, match="length 5"):
            check_vector(np.ones(4), "v", length=5)

    def test_vector_accepts(self):
        assert check_vector([1, 2, 3], "v", length=3).shape == (3,)

    def test_as_float64_converts(self):
        out = as_float64_array([1, 2], "a")
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_as_float64_rejects_complex(self):
        with pytest.raises(ValidationError, match="real-valued"):
            as_float64_array(np.array([1j]), "a")
