"""Unit tests for the fault-tolerant cluster driver.

Covers the fault model (repro.cluster.faults), the retry policy
(repro.cluster.policy), and the resilient execution path of
MultiGpuKPM, including the headline guarantee: a faulty run recovers
the *bit-identical* moments of a fault-free run while charging its
overhead to the "recovery"/"rebalance" phases.
"""

import numpy as np
import pytest

from repro.cluster import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    MultiGpuKPM,
    RetryPolicy,
)
from repro.errors import FaultError, ValidationError
from repro.gpukpm import CheckpointChunk, GpuKPM
from repro.kpm import rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian


@pytest.fixture
def scaled_cube():
    h = tight_binding_hamiltonian(cubic(4), format="csr")
    scaled, _ = rescale_operator(h)
    return scaled


class TestFaultEvent:
    def test_kinds_constant(self):
        assert FAULT_KINDS == ("crash", "straggler", "transfer")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown fault kind"):
            FaultEvent("meltdown", 0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValidationError):
            FaultEvent("crash", -1)

    def test_fast_straggler_rejected(self):
        with pytest.raises(ValidationError, match="slowdown"):
            FaultEvent("straggler", 0, slowdown=0.5)

    def test_zero_count_rejected(self):
        with pytest.raises(ValidationError):
            FaultEvent("transfer", 0, count=0)

    def test_frozen(self):
        event = FaultEvent("crash", 1, completed_chunks=2)
        with pytest.raises(AttributeError):
            event.node = 3


class TestFaultSchedule:
    def test_duplicate_crash_rejected(self):
        with pytest.raises(ValidationError, match="one crash per node"):
            FaultSchedule([FaultEvent("crash", 0), FaultEvent("crash", 0)])

    def test_duplicate_straggler_rejected(self):
        with pytest.raises(ValidationError, match="straggler"):
            FaultSchedule(
                [FaultEvent("straggler", 1), FaultEvent("straggler", 1)]
            )

    def test_duplicate_transfer_rejected(self):
        with pytest.raises(ValidationError, match="transfer"):
            FaultSchedule([FaultEvent("transfer", 2), FaultEvent("transfer", 2)])

    def test_non_event_rejected(self):
        with pytest.raises(ValidationError, match="FaultEvent"):
            FaultSchedule(["crash"])

    def test_accessors(self):
        crash = FaultEvent("crash", 0, round=1)
        slow = FaultEvent("straggler", 1, slowdown=3.0)
        xfer = FaultEvent("transfer", 2, count=4)
        schedule = FaultSchedule([crash, slow, xfer])
        assert schedule.crash_for(0, 1) is crash
        assert schedule.crash_for(0, 0) is None
        assert schedule.straggler_for(1, 0) is slow
        assert schedule.straggler_for(1, 1) is None
        assert schedule.transfer_for(2) is xfer
        assert schedule.transfer_for(0) is None
        assert schedule.max_node() == 2
        assert len(schedule) == 3
        assert schedule.num_faults == 6  # transfer count expands

    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.max_node() == -1
        assert schedule.num_faults == 0
        assert list(schedule) == []


class TestSample:
    def test_deterministic(self):
        a = FaultSchedule.sample(
            42, 8, crash_rate=0.4, straggler_rate=0.4, transfer_rate=0.4
        )
        b = FaultSchedule.sample(
            42, 8, crash_rate=0.4, straggler_rate=0.4, transfer_rate=0.4
        )
        assert a.events == b.events

    def test_seed_sensitivity(self):
        a = FaultSchedule.sample(1, 16, crash_rate=0.5)
        b = FaultSchedule.sample(2, 16, crash_rate=0.5)
        assert a.events != b.events

    def test_zero_rates_empty(self):
        assert len(FaultSchedule.sample(0, 8)) == 0

    def test_rate_validation(self):
        with pytest.raises(ValidationError, match="crash_rate"):
            FaultSchedule.sample(0, 4, crash_rate=1.5)

    def test_never_kills_whole_cluster(self):
        schedule = FaultSchedule.sample(0, 6, crash_rate=1.0)
        crashes = [e for e in schedule if e.kind == "crash"]
        assert len(crashes) == 5  # one node always spared


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError, match="backoff_base_s"):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValidationError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_geometric(self):
        policy = RetryPolicy(backoff_base_s=1e-3, backoff_factor=2.0)
        assert policy.backoff_seconds(0) == pytest.approx(1e-3)
        assert policy.backoff_seconds(3) == pytest.approx(8e-3)

    def test_budget_exhaustion_raises_fault_error(self):
        budget = RetryPolicy(max_retries=2).budget()
        budget.spend("a")
        budget.spend("b")
        assert budget.remaining == 0
        with pytest.raises(FaultError, match="retry budget exhausted"):
            budget.spend("c")

    def test_zero_budget(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_retries=0).budget().spend("anything")


class TestResilientRun:
    def test_checkpointing_alone_is_bit_identical(self, scaled_cube, small_config):
        baseline, _ = MultiGpuKPM(4).compute_moments(scaled_cube, small_config)
        chk, report = MultiGpuKPM(4, checkpoint_every=2).compute_moments(
            scaled_cube, small_config
        )
        assert np.array_equal(chk.mu, baseline.mu)
        assert np.array_equal(chk.per_realization, baseline.per_realization)
        assert report.breakdown["recovery"] == 0.0
        assert report.breakdown["rebalance"] == 0.0

    def test_crash_and_transfer_recover_bit_identical(
        self, scaled_cube, small_config
    ):
        # The PR's acceptance scenario: >=1 node crash plus >=1 transient
        # transfer fault must recover bit-identical moments with a
        # nonzero "recovery" phase.
        baseline, base_report = MultiGpuKPM(4).compute_moments(scaled_cube, small_config)
        schedule = FaultSchedule(
            [
                FaultEvent("crash", 1, completed_chunks=1),
                FaultEvent("transfer", 2, count=2),
            ]
        )
        data, report = MultiGpuKPM(
            4, fault_schedule=schedule, checkpoint_every=2
        ).compute_moments(scaled_cube, small_config)
        assert np.array_equal(data.mu, baseline.mu)
        assert np.array_equal(data.per_realization, baseline.per_realization)
        assert report.breakdown["recovery"] > 0.0
        assert report.breakdown["rebalance"] > 0.0
        assert report.modeled_seconds > base_report.modeled_seconds

    def test_resilient_breakdown_keys_and_total(self, scaled_cube, small_config):
        schedule = FaultSchedule([FaultEvent("straggler", 0, slowdown=2.0)])
        _, report = MultiGpuKPM(2, fault_schedule=schedule).compute_moments(
            scaled_cube, small_config
        )
        assert set(report.breakdown) == {
            "broadcast",
            "compute",
            "rebalance",
            "recovery",
            "allreduce",
        }
        assert report.modeled_seconds == pytest.approx(
            sum(report.breakdown.values())
        )
        assert report.backend.endswith(",resilient)")

    def test_straggler_costs_time_not_correctness(self, scaled_cube, small_config):
        baseline, _ = MultiGpuKPM(2).compute_moments(scaled_cube, small_config)
        schedule = FaultSchedule([FaultEvent("straggler", 1, slowdown=3.0)])
        data, report = MultiGpuKPM(2, fault_schedule=schedule).compute_moments(
            scaled_cube, small_config
        )
        assert np.array_equal(data.mu, baseline.mu)
        assert report.breakdown["recovery"] > 0.0

    def test_sampled_campaign_recovers(self, scaled_cube, small_config):
        baseline, _ = MultiGpuKPM(4).compute_moments(scaled_cube, small_config)
        schedule = FaultSchedule.sample(
            3, 4, crash_rate=0.3, straggler_rate=0.3, transfer_rate=0.3
        )
        assert schedule.num_faults > 0  # seed chosen to actually fault
        data, _ = MultiGpuKPM(
            4, fault_schedule=schedule, checkpoint_every=2
        ).compute_moments(scaled_cube, small_config)
        assert np.array_equal(data.mu, baseline.mu)

    def test_all_nodes_crashing_raises(self, scaled_cube, small_config):
        schedule = FaultSchedule(
            [FaultEvent("crash", n, completed_chunks=0) for n in range(2)]
        )
        with pytest.raises(FaultError, match="all cluster nodes crashed"):
            MultiGpuKPM(2, fault_schedule=schedule).compute_moments(scaled_cube, small_config)

    def test_rebalance_budget_exhaustion(self, scaled_cube, small_config):
        schedule = FaultSchedule([FaultEvent("crash", 0, completed_chunks=0)])
        driver = MultiGpuKPM(
            2, fault_schedule=schedule, policy=RetryPolicy(max_retries=0)
        )
        with pytest.raises(FaultError, match="rebalance round 1"):
            driver.compute_moments(scaled_cube, small_config)

    def test_retransmission_budget_exhaustion(self, scaled_cube, small_config):
        schedule = FaultSchedule([FaultEvent("transfer", 0, count=3)])
        driver = MultiGpuKPM(
            2, fault_schedule=schedule, policy=RetryPolicy(max_retries=2)
        )
        with pytest.raises(FaultError, match="retransmission"):
            driver.compute_moments(scaled_cube, small_config)

    def test_schedule_node_out_of_range(self, scaled_cube, small_config):
        schedule = FaultSchedule([FaultEvent("crash", 5)])
        with pytest.raises(ValidationError, match="references node 5"):
            MultiGpuKPM(2, fault_schedule=schedule).compute_moments(scaled_cube, small_config)

    def test_constructor_type_validation(self):
        with pytest.raises(ValidationError, match="FaultSchedule"):
            MultiGpuKPM(2, fault_schedule="crash")
        with pytest.raises(ValidationError, match="RetryPolicy"):
            MultiGpuKPM(2, policy="retry")
        with pytest.raises(ValidationError):
            MultiGpuKPM(2, checkpoint_every=0)

    def test_resilient_property(self):
        assert not MultiGpuKPM(2).resilient
        assert MultiGpuKPM(2, checkpoint_every=4).resilient
        assert MultiGpuKPM(2, fault_schedule=FaultSchedule()).resilient


class TestChunkedPartition:
    def test_chunked_rows_bit_identical(self, scaled_cube, small_config):
        runner = GpuKPM()
        plain, plain_mu, _ = runner.run_partition(
            scaled_cube, small_config, first_vector=3, num_vectors=7
        )
        chunks = []
        chunked, chunked_mu, _ = runner.run_partition(
            scaled_cube,
            small_config,
            first_vector=3,
            num_vectors=7,
            checkpoint_every=2,
            on_chunk=chunks.append,
        )
        assert np.array_equal(chunked, plain)
        assert np.array_equal(chunked_mu, plain_mu)
        # 7 vectors in chunks of 2 -> sizes 2, 2, 2, 1 starting at 3.
        assert [c.first_vector for c in chunks] == [3, 5, 7, 9]
        assert [c.num_vectors for c in chunks] == [2, 2, 2, 1]
        assert all(isinstance(c, CheckpointChunk) for c in chunks)
        reassembled = np.concatenate([c.rows for c in chunks], axis=0)
        assert np.array_equal(reassembled, plain)

    def test_chunking_costs_extra_downloads(self, scaled_cube, small_config):
        runner = GpuKPM()
        runner.run_partition(
            scaled_cube, small_config, first_vector=0, num_vectors=8
        )
        plain_seconds = runner.last_device.modeled_seconds
        runner.run_partition(
            scaled_cube,
            small_config,
            first_vector=0,
            num_vectors=8,
            checkpoint_every=1,
        )
        assert runner.last_device.modeled_seconds > plain_seconds

    def test_chunk_seconds_sum_below_device_total(self, scaled_cube, small_config):
        runner = GpuKPM()
        chunks = []
        runner.run_partition(
            scaled_cube,
            small_config,
            first_vector=0,
            num_vectors=8,
            checkpoint_every=2,
            on_chunk=chunks.append,
        )
        chunk_total = sum(c.modeled_seconds for c in chunks)
        assert 0.0 < chunk_total < runner.last_device.modeled_seconds
