"""Unit tests for repro.serve.service (SpectralService end-to-end)."""

import numpy as np
import pytest

from repro.errors import FaultError, LaunchError, OutOfMemoryError, ValidationError
from repro.kpm import KPMConfig, compute_dos, local_dos
from repro.kpm.green import greens_function
from repro.serve import (
    DoSRequest,
    GreenRequest,
    LDoSRequest,
    SpectralService,
)


class FlakyEngine:
    """Engine that fails ``failures`` times, then delegates to numpy."""

    name = "flaky"

    def __init__(self, failures: int, exc=LaunchError):
        from repro.kpm.engines import NumpyEngine

        self.remaining = failures
        self.exc = exc
        self.delegate = NumpyEngine()
        self.calls = 0

    def compute_moments(self, scaled_operator, config):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc("injected fault")
        return self.delegate.compute_moments(scaled_operator, config)


class TestBitIdentity:
    def test_dos_matches_compute_dos(self, chain_csr, small_config):
        service = SpectralService(backends=("numpy",))
        [response] = service.serve([DoSRequest(chain_csr, small_config)])
        direct = compute_dos(chain_csr, small_config, backend="numpy")
        assert np.array_equal(response.values, direct.density)
        assert np.array_equal(response.energies, direct.energies)
        assert np.array_equal(response.moments.mu, direct.moments.mu)

    def test_coalesced_matches_computed(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        responses = service.serve(
            [DoSRequest(chain_csr, small_config) for _ in range(3)]
        )
        assert [r.source for r in responses] == ["computed", "coalesced", "coalesced"]
        direct = compute_dos(chain_csr, small_config, backend="gpu-sim")
        for response in responses:
            assert np.array_equal(response.values, direct.density)
        assert service.metrics().engine_dispatches == 1

    def test_cache_hit_matches_fresh(self, cube4_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        [first] = service.serve([DoSRequest(cube4_csr, small_config)])
        [replay] = service.serve([DoSRequest(cube4_csr, small_config)])
        assert replay.source == "cache"
        assert np.array_equal(replay.values, first.values)
        direct = compute_dos(cube4_csr, small_config, backend="gpu-sim")
        assert np.array_equal(replay.values, direct.density)
        assert replay.modeled_seconds == 0.0

    def test_green_shares_dos_moments(self, chain_csr, small_config):
        energies = (-0.5, 0.0, 0.5)
        service = SpectralService(backends=("numpy",))
        responses = service.serve([
            DoSRequest(chain_csr, small_config),
            GreenRequest(chain_csr, energies=energies, config=small_config),
        ])
        assert service.metrics().batches_total == 1
        direct = compute_dos(chain_csr, small_config, backend="numpy")
        expected = greens_function(
            direct.moments, direct.rescaling, np.asarray(energies)
        )
        assert np.array_equal(responses[1].values, expected)

    def test_ldos_matches_local_dos(self, chain_csr, small_config):
        service = SpectralService(backends=("numpy",))
        [response] = service.serve([LDoSRequest(chain_csr, site=5, config=small_config)])
        energies, density = local_dos(chain_csr, 5, small_config)
        assert np.array_equal(response.values, density)
        assert np.array_equal(response.energies, energies)
        assert response.engine == "host"

    def test_to_dos_result_roundtrip(self, chain_csr, small_config):
        service = SpectralService(backends=("numpy",))
        [response] = service.serve([DoSRequest(chain_csr, small_config)])
        result = response.to_dos_result()
        assert np.array_equal(result.density, response.values)
        assert result.integrate() == pytest.approx(1.0, abs=0.05)


class TestSchedulingAndMetrics:
    def test_responses_in_submission_order(self, chain_csr, cube4_csr, small_config):
        service = SpectralService(backends=("numpy",))
        tags = ["a", "b", "c", "d"]
        requests = [
            DoSRequest(chain_csr, small_config, tag="a"),
            DoSRequest(cube4_csr, small_config, tag="b"),
            DoSRequest(chain_csr, small_config, tag="c"),
            DoSRequest(cube4_csr, small_config, tag="d"),
        ]
        responses = service.serve(requests)
        assert [r.tag for r in responses] == tags
        # ...even though execution coalesced them into two batches.
        assert service.metrics().batches_total == 2

    def test_metrics_counters(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        service.serve([DoSRequest(chain_csr, small_config)] * 2)
        service.serve([DoSRequest(chain_csr, small_config)])
        metrics = service.metrics()
        assert metrics.requests_total == 3
        assert metrics.responses_total == 3
        assert metrics.batches_total == 2
        assert metrics.coalesced_requests == 1
        assert (metrics.cache_hits, metrics.cache_misses) == (1, 1)
        assert metrics.cache_size == 1
        assert metrics.queue_peak_depth == 2
        assert metrics.engine_dispatches == 1
        assert metrics.cache_hit_rate() == pytest.approx(0.5)
        # naive = 3 plain modeled runs, served = 1 resumable run (which
        # pays a small checkpoint-capture surcharge the plain runs do
        # not) — so the speedup sits just below the ideal 3x.
        assert 2.9 < metrics.modeled_speedup() <= 3.0
        report = metrics.timing_report()
        assert report.backend == "serve"
        assert report.breakdown["saved"] == pytest.approx(
            metrics.modeled_naive_seconds - metrics.modeled_served_seconds
        )
        assert "speedup" in metrics.summary()

    def test_max_batch_size_first_computes_rest_hit_cache(
        self, chain_csr, small_config
    ):
        service = SpectralService(backends=("gpu-sim",), max_batch_size=2)
        responses = service.serve([DoSRequest(chain_csr, small_config)] * 5)
        assert [r.source for r in responses] == [
            "computed", "coalesced", "cache", "cache", "cache",
        ]
        assert service.metrics().engine_dispatches == 1

    def test_flush_on_empty_queue(self):
        service = SpectralService(backends=("numpy",))
        assert service.flush() == []


class TestHealthIntegration:
    def test_failover_and_ejection(self, chain_csr, small_config):
        flaky = FlakyEngine(failures=100)
        service = SpectralService(backends=(flaky, "numpy"), eject_after=1)
        [response] = service.serve([DoSRequest(chain_csr, small_config)])
        assert response.engine == "numpy"
        direct = compute_dos(chain_csr, small_config, backend="numpy")
        assert np.array_equal(response.values, direct.density)
        metrics = service.metrics()
        assert metrics.engine_failures == 1
        assert metrics.engine_ejections == 1

    def test_oom_counts_as_device_fault(self, chain_csr, small_config):
        flaky = FlakyEngine(failures=1, exc=OutOfMemoryError)
        service = SpectralService(backends=(flaky, "numpy"), eject_after=1)
        service.serve([DoSRequest(chain_csr, small_config)])
        assert service.metrics().engine_ejections == 1

    def test_all_engines_sick_raises_fault(self, chain_csr, small_config):
        service = SpectralService(backends=(FlakyEngine(failures=100),))
        with pytest.raises(FaultError, match="no healthy engine"):
            service.serve([DoSRequest(chain_csr, small_config)])

    def test_recovered_engine_serves_again(self, chain_csr, small_config):
        flaky = FlakyEngine(failures=1)
        # Cache disabled so the replayed key reaches the pool again.
        service = SpectralService(
            backends=(flaky, "numpy"),
            cache_capacity=0,
            eject_after=1,
            readmit_after=1,
        )
        [first] = service.serve([DoSRequest(chain_csr, small_config)])
        assert first.engine == "numpy"  # failed over after the injected fault
        [second] = service.serve([DoSRequest(chain_csr, small_config)])
        assert second.engine == "flaky"  # readmitted, now healthy
        assert service.metrics().engine_readmissions == 1


class TestValidation:
    def test_rejects_non_request(self):
        with pytest.raises(ValidationError, match="DoSRequest"):
            SpectralService().submit("not a request")

    def test_rejects_asymmetric_operator(self, small_config):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValidationError):
            SpectralService().submit(DoSRequest(bad, small_config))

    def test_rejects_out_of_range_site(self, chain_csr, small_config):
        with pytest.raises(ValidationError, match="out of range"):
            SpectralService().submit(
                LDoSRequest(chain_csr, site=64, config=small_config)
            )

    def test_request_error_does_not_penalize_engine(self, chain_csr, small_config):
        service = SpectralService(backends=("numpy",))
        with pytest.raises(ValidationError):
            service.submit("garbage")
        [response] = service.serve([DoSRequest(chain_csr, small_config)])
        assert response.source == "computed"
        assert service.metrics().engine_failures == 0


class TestPrefixServing:
    """The tentpole: order-free keys, prefix hits, in-place extensions."""

    def test_lower_order_repeat_is_prefix_hit(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        service.serve([DoSRequest(chain_csr, small_config)])  # N=32
        low = small_config.with_updates(num_moments=16)
        [response] = service.serve([DoSRequest(chain_csr, low)])
        assert response.source == "cache"
        assert response.num_moments_served == 16
        direct = compute_dos(chain_csr, low, backend="gpu-sim")
        assert np.array_equal(response.moments.mu, direct.moments.mu)
        assert np.array_equal(response.values, direct.density)
        metrics = service.metrics()
        assert metrics.cache_prefix_hits == 1
        assert metrics.engine_dispatches == 1  # the repeat never ran an engine

    def test_higher_order_repeat_extends_in_place(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        service.serve([DoSRequest(chain_csr, small_config)])  # N=32
        high = small_config.with_updates(num_moments=48)
        [response] = service.serve([DoSRequest(chain_csr, high)])
        assert response.source == "extended"
        assert response.num_moments_served == 48
        direct = compute_dos(chain_csr, high, backend="gpu-sim")
        assert np.array_equal(response.moments.mu, direct.moments.mu)
        assert np.array_equal(
            response.moments.per_realization, direct.moments.per_realization
        )
        assert np.array_equal(response.values, direct.density)
        # The resume only pays for the new orders.
        assert response.modeled_seconds < direct.timing.modeled_seconds
        assert service.metrics().cache_extensions == 1

    def test_mixed_orders_coalesce_into_one_run(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        orders = [16, 32, 24]
        responses = service.serve(
            [
                DoSRequest(chain_csr, small_config.with_updates(num_moments=n))
                for n in orders
            ]
        )
        assert service.metrics().engine_dispatches == 1
        assert service.metrics().batches_total == 1
        for response, n in zip(responses, orders):
            assert response.num_moments_served == n
            direct = compute_dos(
                chain_csr,
                small_config.with_updates(num_moments=n),
                backend="gpu-sim",
            )
            assert np.array_equal(response.moments.mu, direct.moments.mu)
            assert np.array_equal(response.values, direct.density)

    def test_ldos_extends_on_host(self, chain_csr, small_config):
        service = SpectralService(backends=("numpy",))
        service.serve([LDoSRequest(chain_csr, site=3, config=small_config)])
        high = small_config.with_updates(num_moments=48)
        [response] = service.serve(
            [LDoSRequest(chain_csr, site=3, config=high)]
        )
        assert response.source == "extended"
        energies, density = local_dos(chain_csr, 3, high)
        assert np.array_equal(response.values, density)
        assert np.array_equal(response.energies, energies)

    def test_exact_mode_knob_disables_prefix_serving(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",), prefix_cache=False)
        service.serve([DoSRequest(chain_csr, small_config)])
        low = small_config.with_updates(num_moments=16)
        [response] = service.serve([DoSRequest(chain_csr, low)])
        assert response.source == "computed"
        assert service.metrics().cache_prefix_hits == 0
        assert service.metrics().engine_dispatches == 2


class TestRefinement:
    def test_flush_refined_streams_tiers(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        low = small_config.with_updates(num_moments=8)
        service.serve([DoSRequest(chain_csr, low)])
        tiers = []
        high = small_config.with_updates(num_moments=32)
        [response] = service.serve_refined(
            [DoSRequest(chain_csr, high)], on_tier=tiers.append
        )
        # growth=2 from the cached N=8 prefix: tiers at 8 and 16, final 32.
        assert [t[0].num_moments_served for t in tiers] == [8, 16]
        assert all(not t[0].final for t in tiers)
        assert [t[0].tier for t in tiers] == [0, 1]
        assert response.final and response.tier == 2
        assert response.num_moments_served == 32
        # Every tier is bit-identical to a one-shot run at its order.
        for tier in tiers:
            order = tier[0].num_moments_served
            direct = compute_dos(
                chain_csr,
                small_config.with_updates(num_moments=order),
                backend="gpu-sim",
            )
            assert np.array_equal(tier[0].values, direct.density)
        direct = compute_dos(chain_csr, high, backend="gpu-sim")
        assert np.array_equal(response.values, direct.density)
        metrics = service.metrics()
        assert metrics.refined_tiers == 2
        assert metrics.early_stops == 0

    def test_flush_refined_early_stop(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        low = small_config.with_updates(num_moments=8)
        service.serve([DoSRequest(chain_csr, low)])
        high = small_config.with_updates(num_moments=64)
        [response] = service.serve_refined(
            [DoSRequest(chain_csr, high)], tolerance=1e3
        )
        # The huge tolerance converges at tier 0: served straight from
        # the cached prefix, bit-identical to a one-shot N=8 run.
        assert response.final and response.tier == 0
        assert response.num_moments_served == 8
        direct = compute_dos(chain_csr, low, backend="gpu-sim")
        assert np.array_equal(response.values, direct.density)
        metrics = service.metrics()
        assert metrics.early_stops == 1
        assert metrics.engine_dispatches == 1  # nothing recomputed

    def test_flush_refined_cold_key_falls_back(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        [response] = service.serve_refined([DoSRequest(chain_csr, small_config)])
        assert response.source == "computed"
        assert response.final and response.tier == 0
        direct = compute_dos(chain_csr, small_config, backend="gpu-sim")
        assert np.array_equal(response.values, direct.density)

    def test_flush_refined_validation(self):
        service = SpectralService(backends=("numpy",))
        with pytest.raises(ValidationError, match="growth"):
            service.flush_refined(growth=1.0)
        with pytest.raises(ValidationError, match="tolerance"):
            service.flush_refined(tolerance=0.0)


class TestCapacityZeroForwarding:
    """Satellite: split-oversized siblings must not silently recompute."""

    def test_split_batches_forward_without_cache(self, chain_csr, small_config):
        service = SpectralService(
            backends=("gpu-sim",), cache_capacity=0, max_batch_size=2
        )
        responses = service.serve([DoSRequest(chain_csr, small_config)] * 5)
        assert [r.source for r in responses] == [
            "computed", "coalesced", "forwarded", "forwarded", "forwarded",
        ]
        assert service.metrics().engine_dispatches == 1
        assert service.metrics().cache_forwards == 2  # two sibling batches
        direct = compute_dos(chain_csr, small_config, backend="gpu-sim")
        for response in responses:
            assert np.array_equal(response.values, direct.density)
        assert responses[2].modeled_seconds == 0.0

    def test_forwarding_is_flush_local(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",), cache_capacity=0)
        service.serve([DoSRequest(chain_csr, small_config)])
        [replay] = service.serve([DoSRequest(chain_csr, small_config)])
        # A later flush has no cache and no forward table: honest recompute.
        assert replay.source == "computed"
        assert service.metrics().engine_dispatches == 2


class TestFreshServiceMetrics:
    """Satellite: rate/speedup guards on a service that served nothing."""

    def test_fresh_service_summary_never_raises(self):
        metrics = SpectralService(backends=("numpy",)).metrics()
        assert metrics.cache_hit_rate() == 0.0
        assert metrics.modeled_speedup() == 1.0
        text = metrics.summary()
        assert "nan" not in text and "inf" not in text

    def test_unmodeled_backend_summary_is_finite(self, chain_csr, small_config):
        service = SpectralService(backends=("numpy",))
        service.serve([DoSRequest(chain_csr, small_config)] * 2)
        metrics = service.metrics()
        # numpy has no hardware model: naive/served stay zero, the ratio
        # degrades to neutral 1.0 and the summary omits the modeled part.
        assert metrics.modeled_speedup() == 1.0
        text = metrics.summary()
        assert "nan" not in text and "inf" not in text
        assert "speedup" not in text


class TestResponseAliasing:
    """Satellite: responses share the cached arrays — mutation fails loudly."""

    def test_mutating_a_response_cannot_poison_the_cache(
        self, chain_csr, small_config
    ):
        service = SpectralService(backends=("gpu-sim",))
        [first] = service.serve([DoSRequest(chain_csr, small_config)])
        with pytest.raises(ValueError, match="read-only"):
            first.moments.mu[:] = 0.0
        with pytest.raises(ValueError, match="read-only"):
            first.moments.per_realization[:] = 0.0
        [replay] = service.serve([DoSRequest(chain_csr, small_config)])
        direct = compute_dos(chain_csr, small_config, backend="gpu-sim")
        assert np.array_equal(replay.moments.mu, direct.moments.mu)
        assert np.array_equal(replay.values, direct.density)

    def test_prefix_slice_response_is_read_only(self, chain_csr, small_config):
        service = SpectralService(backends=("gpu-sim",))
        service.serve([DoSRequest(chain_csr, small_config)])
        low = small_config.with_updates(num_moments=16)
        [response] = service.serve([DoSRequest(chain_csr, low)])
        with pytest.raises(ValueError, match="read-only"):
            response.moments.mu[0] = 99.0
