"""Unit tests for repro.kpm.observables — against exact eigen-sums."""

import numpy as np
import pytest

from repro.ed import exact_eigenvalues
from repro.errors import ConvergenceError, ValidationError
from repro.kpm import (
    chemical_potential,
    electron_count,
    exact_moments,
    fermi_dirac,
    internal_energy,
    rescale_operator,
    spectral_integral,
)
from repro.lattice import chain, cubic, tight_binding_hamiltonian


@pytest.fixture(scope="module")
def system():
    """Exact moments + rescaling + eigenvalues of a dense-spectrum chain.

    The periodic chain's spectrum is dense (spacing ~0.05), so the
    broadened integrated DoS is smooth and strictly monotone — the
    regime where electron counting and its inversion are well posed.
    """
    h = tight_binding_hamiltonian(chain(256), format="csr")
    scaled, rescaling = rescale_operator(h)
    mu = exact_moments(scaled, 512)
    eigenvalues = exact_eigenvalues(h)
    return mu, rescaling, eigenvalues


class TestFermiDirac:
    def test_zero_temperature_step(self):
        occ = fermi_dirac(np.array([-1.0, 0.0, 1.0]), 0.0, 0.0)
        np.testing.assert_array_equal(occ, [1.0, 0.5, 0.0])

    def test_half_at_mu(self):
        assert fermi_dirac(2.0, 2.0, 0.5) == pytest.approx(0.5)

    def test_limits(self):
        assert fermi_dirac(-1e6, 0.0, 1.0) == pytest.approx(1.0)
        assert fermi_dirac(1e6, 0.0, 1.0) == pytest.approx(0.0)

    def test_no_overflow(self):
        # Huge arguments must not warn or produce NaN.
        occ = fermi_dirac(np.array([1e9, -1e9]), 0.0, 1e-6)
        assert np.all(np.isfinite(occ))

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValidationError):
            fermi_dirac(0.0, 0.0, -1.0)

    def test_particle_hole_symmetry(self):
        energies = np.linspace(-3, 3, 11)
        occ = fermi_dirac(energies, 0.0, 0.7)
        np.testing.assert_allclose(occ + occ[::-1], np.ones(11))


class TestSpectralIntegral:
    def test_constant_function_gives_mu0(self, system):
        mu, rescaling, _ = system
        value = spectral_integral(mu, rescaling, lambda e: np.ones_like(e))
        assert value == pytest.approx(1.0, abs=1e-10)

    def test_identity_gives_mean_energy(self, system):
        mu, rescaling, eigenvalues = system
        value = spectral_integral(mu, rescaling, lambda e: e)
        assert value == pytest.approx(eigenvalues.mean(), abs=1e-6)

    def test_quadratic_moment_with_jackson_bias(self, system):
        # Jackson broadening by sigma adds exactly sigma^2 to <E^2>.
        mu, rescaling, eigenvalues = system
        value = spectral_integral(mu, rescaling, lambda e: e**2)
        sigma = np.pi * rescaling.scale / mu.shape[0]
        assert value == pytest.approx(np.mean(eigenvalues**2) + sigma**2, abs=1e-3)

    def test_quadratic_moment_undamped_exact(self, system):
        # Without damping the quadrature is exact for polynomials.
        mu, rescaling, eigenvalues = system
        value = spectral_integral(mu, rescaling, lambda e: e**2, kernel="dirichlet")
        assert value == pytest.approx(np.mean(eigenvalues**2), abs=1e-9)

    def test_gaussian_weight(self, system):
        mu, rescaling, eigenvalues = system
        value = spectral_integral(mu, rescaling, lambda e: np.exp(-(e**2)))
        reference = np.mean(np.exp(-(eigenvalues**2)))
        # Jackson broadening smears each level slightly under the Gaussian.
        assert value == pytest.approx(reference, abs=5e-3)

    def test_too_few_points_rejected(self, system):
        mu, rescaling, _ = system
        with pytest.raises(ValidationError):
            spectral_integral(mu, rescaling, lambda e: e, num_points=8)

    def test_non_vectorized_func_rejected(self, system):
        mu, rescaling, _ = system
        with pytest.raises(ValidationError):
            spectral_integral(mu, rescaling, lambda e: 1.0)


class TestElectronCount:
    def test_empty_and_full_band(self, system):
        mu, rescaling, _ = system
        below = electron_count(mu, rescaling, rescaling.to_original(-0.99))
        above = electron_count(mu, rescaling, rescaling.to_original(0.99))
        # Jackson tails leak a little weight past the band edges.
        assert below == pytest.approx(0.0, abs=0.01)
        assert above == pytest.approx(1.0, abs=0.01)

    def test_half_filling_at_band_center(self, system):
        # Zero-diagonal cubic lattice: particle-hole symmetric spectrum.
        mu, rescaling, _ = system
        assert electron_count(mu, rescaling, 0.0) == pytest.approx(0.5, abs=2e-3)

    def test_matches_eigenvalue_count(self, system):
        mu, rescaling, eigenvalues = system
        for fermi in (-1.0, 0.7):
            exact = np.mean(eigenvalues < fermi)
            kpm = electron_count(mu, rescaling, fermi)
            assert kpm == pytest.approx(exact, abs=0.01)

    def test_temperature_smears_not_shifts(self, system):
        mu, rescaling, _ = system
        cold = electron_count(mu, rescaling, 0.0, temperature=0.0)
        warm = electron_count(mu, rescaling, 0.0, temperature=1.0)
        assert warm == pytest.approx(cold, abs=5e-3)  # symmetric spectrum

    def test_monotone_in_mu(self, system):
        mu, rescaling, _ = system
        counts = [electron_count(mu, rescaling, f) for f in (-3.0, 0.0, 3.0)]
        assert counts[0] < counts[1] < counts[2]


class TestChemicalPotential:
    def test_inverts_electron_count(self, system):
        mu, rescaling, _ = system
        target = 0.3
        mu_value = chemical_potential(mu, rescaling, target)
        # n(mu) is a softly-broadened staircase (finite 256-site spectrum),
        # so the reachable fillings are quantized at the ~1e-4 level.
        assert electron_count(mu, rescaling, mu_value) == pytest.approx(
            target, abs=1e-3
        )

    def test_half_filling_at_zero(self, system):
        mu, rescaling, _ = system
        assert chemical_potential(mu, rescaling, 0.5) == pytest.approx(0.0, abs=0.05)

    def test_finite_temperature(self, system):
        mu, rescaling, _ = system
        mu_value = chemical_potential(mu, rescaling, 0.25, temperature=0.5)
        assert electron_count(
            mu, rescaling, mu_value, temperature=0.5
        ) == pytest.approx(0.25, abs=1e-6)

    def test_invalid_filling(self, system):
        mu, rescaling, _ = system
        with pytest.raises(ValidationError):
            chemical_potential(mu, rescaling, 1.5)


class TestInternalEnergy:
    def test_full_band_is_trace(self, system):
        mu, rescaling, eigenvalues = system
        # The cutoff must clear the band edge (x=0.99 maps exactly onto
        # the chain's van Hove edge at E=2 and would halve its weight).
        energy = internal_energy(mu, rescaling, rescaling.to_original(0.999))
        assert energy == pytest.approx(eigenvalues.mean(), abs=1e-4)

    def test_half_filling_negative(self, system):
        # Filling the lower half of a symmetric band costs negative energy.
        mu, rescaling, eigenvalues = system
        energy = internal_energy(mu, rescaling, 0.0)
        exact = eigenvalues[eigenvalues < 0].sum() / eigenvalues.size
        assert energy == pytest.approx(exact, abs=0.02)

    def test_chain_ground_state_energy(self):
        # Half-filled chain: E/site -> -2/pi in the thermodynamic limit.
        h = tight_binding_hamiltonian(chain(512), format="csr")
        scaled, rescaling = rescale_operator(h)
        mu = exact_moments(scaled, 512)
        energy = internal_energy(mu, rescaling, 0.0)
        assert energy == pytest.approx(-2.0 / np.pi, abs=0.01)
