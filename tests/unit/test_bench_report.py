"""Unit tests for repro.bench.report."""

import pytest

from repro.bench import FigureResult, ascii_plot, ascii_table, csv_format
from repro.errors import ValidationError


@pytest.fixture
def result():
    return FigureResult(
        experiment_id="test",
        title="A test figure",
        x_label="N",
        columns=("N", "cpu", "gpu"),
        rows=[(128, 10.0, 2.5), (256, 20.0, 5.0)],
        paper_expectation="gpu 4x faster",
        notes="synthetic",
    )


class TestAsciiTable:
    def test_header_and_rows(self):
        text = ascii_table(("a", "b"), [(1, 2.5)])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "2.50" in lines[2] or "2.5" in lines[2]

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError):
            ascii_table(("a",), [(1, 2)])

    def test_scientific_for_tiny_values(self):
        text = ascii_table(("x",), [(1e-9,)])
        assert "e-09" in text

    def test_empty_rows(self):
        text = ascii_table(("a", "b"), [])
        assert "a" in text


class TestCsvFormat:
    def test_repr_precision_roundtrip(self):
        text = csv_format(("x",), [(0.1 + 0.2,)])
        assert float(text.splitlines()[1]) == 0.1 + 0.2

    def test_header(self):
        assert csv_format(("a", "b"), []).splitlines()[0] == "a,b"


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot([1, 2, 3], {"cpu": [1.0, 2.0, 3.0], "gpu": [3.0, 2.0, 1.0]})
        assert "* cpu" in text
        assert "o gpu" in text

    def test_needs_two_points(self):
        with pytest.raises(ValidationError):
            ascii_plot([1], {"y": [1.0]})

    def test_series_length_mismatch(self):
        with pytest.raises(ValidationError):
            ascii_plot([1, 2], {"y": [1.0]})

    def test_constant_series_ok(self):
        text = ascii_plot([0, 1], {"y": [5.0, 5.0]})
        assert "*" in text


class TestFigureResult:
    def test_column_access(self, result):
        assert result.column("cpu") == [10.0, 20.0]

    def test_unknown_column(self, result):
        with pytest.raises(ValidationError, match="no column"):
            result.column("tpu")

    def test_to_table(self, result):
        assert "cpu" in result.to_table()

    def test_to_csv(self, result):
        assert result.to_csv().splitlines()[0] == "N,cpu,gpu"

    def test_to_plot_defaults_all_series(self, result):
        text = result.to_plot()
        assert "cpu" in text and "gpu" in text

    def test_render_includes_everything(self, result):
        text = result.render()
        assert "test: A test figure" in text
        assert "paper:" in text
        assert "notes: synthetic" in text
