"""Unit tests for repro.lattice.Lattice (geometry and indexing)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lattice import Lattice


class TestConstruction:
    def test_num_sites(self):
        assert Lattice((10, 10, 10)).num_sites == 1000

    def test_single_bool_periodic_broadcast(self):
        lattice = Lattice((4, 5), periodic=False)
        assert lattice.periodic == (False, False)

    def test_per_axis_periodic(self):
        lattice = Lattice((4, 5), periodic=(True, False))
        assert lattice.periodic == (True, False)

    def test_periodic_flag_count_mismatch(self):
        with pytest.raises(ValidationError):
            Lattice((4, 5), periodic=(True,))

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValidationError):
            Lattice((0, 3))

    def test_rejects_empty_dims(self):
        with pytest.raises(ValidationError):
            Lattice(())

    def test_periodic_axis_too_short(self):
        with pytest.raises(ValidationError, match="length >= 3"):
            Lattice((2,), periodic=True)

    def test_open_short_axis_allowed(self):
        assert Lattice((2,), periodic=False).num_sites == 2

    def test_equality_and_hash(self):
        assert Lattice((3, 3)) == Lattice((3, 3))
        assert Lattice((3, 3)) != Lattice((3, 3), periodic=False)
        assert hash(Lattice((3, 3))) == hash(Lattice((3, 3)))


class TestIndexing:
    def test_row_major_order(self):
        lattice = Lattice((10, 10, 10))
        assert lattice.site_index((1, 2, 3)) == 123

    def test_roundtrip_all_sites(self):
        lattice = Lattice((3, 4, 5))
        indices = np.arange(lattice.num_sites)
        coords = lattice.site_coords(indices)
        np.testing.assert_array_equal(lattice.site_index(coords), indices)

    def test_scalar_coords_roundtrip(self):
        lattice = Lattice((4, 4))
        assert lattice.site_index(lattice.site_coords(7)) == 7

    def test_out_of_range_coord(self):
        with pytest.raises(ValidationError):
            Lattice((3, 3)).site_index((3, 0))

    def test_out_of_range_index(self):
        with pytest.raises(ValidationError):
            Lattice((3, 3)).site_coords(9)

    def test_wrong_coord_width(self):
        with pytest.raises(ValidationError):
            Lattice((3, 3)).site_index((1, 2, 3))

    def test_wrap_periodic(self):
        lattice = Lattice((5,))
        np.testing.assert_array_equal(lattice.wrap([[-1]]), [[4]])
        np.testing.assert_array_equal(lattice.wrap([[5]]), [[0]])

    def test_wrap_open_rejects(self):
        with pytest.raises(ValidationError):
            Lattice((5,), periodic=False).wrap([[-1]])


class TestNeighbors:
    def test_periodic_chain_bond_count(self):
        # N sites, N bonds on a ring.
        lattice = Lattice((8,))
        i, j = lattice.neighbor_pairs()
        assert len(i) == 8

    def test_open_chain_bond_count(self):
        lattice = Lattice((8,), periodic=False)
        i, j = lattice.neighbor_pairs()
        assert len(i) == 7

    def test_cubic_periodic_bond_count(self):
        # 3 bonds per site on a periodic cubic lattice.
        lattice = Lattice((4, 4, 4))
        i, j = lattice.neighbor_pairs()
        assert len(i) == 3 * 64

    def test_no_self_bonds(self):
        lattice = Lattice((4, 4))
        i, j = lattice.neighbor_pairs()
        assert not np.any(i == j)

    def test_no_duplicate_bonds(self):
        lattice = Lattice((4, 5), periodic=(True, False))
        i, j = lattice.neighbor_pairs()
        keys = set(map(tuple, np.sort(np.stack([i, j], axis=1), axis=1)))
        assert len(keys) == len(i)

    def test_coordination_periodic_cube(self):
        counts = Lattice((4, 4, 4)).coordination_numbers()
        np.testing.assert_array_equal(counts, np.full(64, 6))

    def test_coordination_open_chain(self):
        counts = Lattice((5,), periodic=False).coordination_numbers()
        np.testing.assert_array_equal(counts, [1, 2, 2, 2, 1])

    def test_coordination_open_square_corners(self):
        counts = Lattice((3, 3), periodic=False).coordination_numbers()
        assert counts.min() == 2  # corners
        assert counts.max() == 4  # center

    def test_length_one_axis_contributes_no_bonds(self):
        lattice = Lattice((1, 5), periodic=(False, True))
        i, _ = lattice.neighbor_pairs()
        assert len(i) == 5

    def test_bonds_are_nearest_neighbors(self):
        lattice = Lattice((4, 4), periodic=False)
        i, j = lattice.neighbor_pairs()
        ci, cj = lattice.site_coords(i), lattice.site_coords(j)
        manhattan = np.abs(ci - cj).sum(axis=1)
        np.testing.assert_array_equal(manhattan, np.ones(len(i)))
