"""Unit tests for the shared-memory CPU parallelization model."""

import pytest

from repro.cpu import (
    AGGREGATE_BANDWIDTH_FACTOR,
    CORE_I7_930,
    estimate_cpu_kpm_seconds,
    estimate_parallel_cpu_kpm_seconds,
    parallel_speedup_factor,
)
from repro.errors import ValidationError
from repro.kpm import KPMConfig


class TestSpeedupFactor:
    def test_compute_bound_scales_linearly(self):
        assert parallel_speedup_factor(8, memory_bound=False) == 8.0

    def test_memory_bound_saturates(self):
        assert parallel_speedup_factor(8, memory_bound=True) == AGGREGATE_BANDWIDTH_FACTOR

    def test_single_thread_is_identity(self):
        assert parallel_speedup_factor(1, memory_bound=True) == 1.0
        assert parallel_speedup_factor(1, memory_bound=False) == 1.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            parallel_speedup_factor(0, memory_bound=False)


class TestParallelEstimate:
    @pytest.fixture
    def config(self):
        return KPMConfig(num_moments=256, num_random_vectors=64, num_realizations=1)

    def test_one_thread_equals_serial(self, config):
        serial = estimate_cpu_kpm_seconds(CORE_I7_930, 1000, config)
        parallel = estimate_parallel_cpu_kpm_seconds(
            CORE_I7_930, 1000, config, threads=1
        )
        assert parallel == pytest.approx(serial)

    def test_more_threads_never_slower(self, config):
        times = [
            estimate_parallel_cpu_kpm_seconds(CORE_I7_930, 1000, config, threads=t)
            for t in (1, 2, 4, 8)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(times, times[1:]))

    def test_dram_bound_saturates_early(self, config):
        # D=1000 dense streams the matrix: 2 and 8 threads nearly tie.
        two = estimate_parallel_cpu_kpm_seconds(CORE_I7_930, 1000, config, threads=2)
        eight = estimate_parallel_cpu_kpm_seconds(CORE_I7_930, 1000, config, threads=8)
        assert eight > 0.9 * two

    def test_cache_resident_scales(self, config):
        # D=128 fits L2 and is compute-bound: near-linear scaling.
        one = estimate_parallel_cpu_kpm_seconds(CORE_I7_930, 128, config, threads=1)
        four = estimate_parallel_cpu_kpm_seconds(CORE_I7_930, 128, config, threads=4)
        assert four == pytest.approx(one / 4, rel=0.05)

    def test_csr_path(self, config):
        serial = estimate_cpu_kpm_seconds(CORE_I7_930, 1000, config, nnz=7000)
        parallel = estimate_parallel_cpu_kpm_seconds(
            CORE_I7_930, 1000, config, threads=4, nnz=7000
        )
        assert parallel < serial

    def test_validation(self, config):
        with pytest.raises(ValidationError):
            estimate_parallel_cpu_kpm_seconds(CORE_I7_930, 100, config, threads=0)
        with pytest.raises(ValidationError):
            estimate_parallel_cpu_kpm_seconds(CORE_I7_930, 100, {"N": 5}, threads=2)


class TestAblation:
    def test_gpu_advantage_shrinks_with_threads(self):
        from repro.bench import cpu_threads_ablation

        result = cpu_threads_ablation(thread_counts=(1, 4), num_moments=128)
        advantage = result.column("gpu_advantage_D1000")
        assert advantage[1] < advantage[0]

    def test_cache_resident_cpu_catches_up(self):
        from repro.bench import cpu_threads_ablation

        result = cpu_threads_ablation(thread_counts=(1, 8), num_moments=128)
        assert result.column("gpu_advantage_D128")[-1] < 1.0
