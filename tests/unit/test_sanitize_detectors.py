"""Seeded-violation tests: every sanitizer detector must fire its code.

Each test builds the smallest workload exhibiting one defect class and
asserts the exact ``SANxxx`` finding (and nothing unexpected); the
final class checks the contextvar plumbing and that instrumentation is
inert when no sanitizer is active.
"""

import warnings

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu import Device, kernel, tiny_test_device
from repro.sanitize import (
    NULL_SANITIZER,
    DeviceSanitizer,
    NullSanitizer,
    current_sanitizer,
)


@kernel("san_uninit")
def uninit_read_kernel(ctx, src, dst):
    dst.data[0] = float(src.data[0])


@kernel("san_oob")
def oob_slice_kernel(ctx, arr):
    arr.data[0:100] = 1.0


@kernel("san_ww")
def ww_overlap_kernel(ctx, arr):
    arr.data[0] = float(ctx.linear_block_id)


@kernel("san_rw")
def rw_overlap_kernel(ctx, arr, out):
    arr.data[ctx.linear_block_id] = 1.0
    out.data[ctx.linear_block_id] = float(arr.data.sum())


@kernel("san_tiled")
def tiled_ok_kernel(ctx, arr):
    idx = ctx.thread_range(arr.shape[0])
    arr.data[idx] = 1.0


def codes(sanitizer):
    return [f.code for f in sanitizer.findings]


@pytest.fixture
def device():
    return Device(tiny_test_device())


class TestMemoryDetectors:
    def test_uninitialized_read_reports_san001(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            src = device.alloc(8, name="never-written")
            dst = device.alloc(8, name="dst")
            device.launch(uninit_read_kernel, grid=1, block=32, args=(src, dst))
        assert codes(sanitizer) == ["SAN001"]
        (finding,) = sanitizer.findings
        assert finding.array == "never-written"
        assert finding.kernel == "san_uninit"
        assert finding.block == 0

    def test_htod_initializes_and_stays_clean(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            src = device.alloc(8, name="src")
            dst = device.alloc(8, name="dst")
            device.memcpy_htod(src, np.ones(8))
            device.launch(uninit_read_kernel, grid=1, block=32, args=(src, dst))
        assert codes(sanitizer) == []

    def test_dtoh_of_uninitialized_buffer_reports_san001(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(8, name="cold")
            device.memcpy_dtoh(np.empty(8), arr)
        assert codes(sanitizer) == ["SAN001"]

    def test_oob_slice_reports_san002(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(8, name="small")
            device.launch(oob_slice_kernel, grid=1, block=32, args=(arr,))
        assert codes(sanitizer) == ["SAN002"]
        (finding,) = sanitizer.findings
        assert finding.kernel == "san_oob"

    def test_use_after_free_reports_san003(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(8, name="dangling")
            device.memcpy_htod(arr, np.ones(8))
            arr.free()
            arr.data  # dangling device pointer: recorded, not raised
        assert codes(sanitizer) == ["SAN003"]

    def test_double_free_reports_san004_and_still_raises(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(8, name="twice")
            arr.free()
            with pytest.raises(DeviceError, match="already freed"):
                arr.free()
        assert codes(sanitizer) == ["SAN004"]

    def test_leak_at_reset_reports_san005(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            device.alloc(4, name="leaky")
            with pytest.warns(ResourceWarning, match="'leaky'"):
                device.reset()
        assert codes(sanitizer) == ["SAN005"]
        assert "still live at device reset" in sanitizer.findings[0].message

    def test_leak_warning_fires_without_sanitizer_too(self, device):
        device.alloc(4, name="leaky")
        with pytest.warns(ResourceWarning, match="leaked allocation"):
            device.reset()

    def test_freed_arrays_do_not_leak(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(4, name="tidy")
            arr.free()
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                device.reset()
        assert codes(sanitizer) == []


class TestHazardDetectors:
    def test_write_write_overlap_reports_san006(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(8, name="shared")
            device.launch(ww_overlap_kernel, grid=3, block=32, args=(arr,))
        assert set(codes(sanitizer)) == {"SAN006"}
        blocks = {f.block for f in sanitizer.findings}
        assert blocks == {0, 1}  # deduped per left-block of each pair

    def test_read_write_overlap_reports_san007(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(2, name="peeked")
            out = device.alloc(2, name="out")
            device.memcpy_htod(arr, np.zeros(2))
            device.launch(rw_overlap_kernel, grid=2, block=32, args=(arr, out))
        assert set(codes(sanitizer)) == {"SAN007"}
        assert {f.block for f in sanitizer.findings} == {0, 1}

    def test_thread_range_tiling_is_hazard_free(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(64, name="tiled")
            device.launch(tiled_ok_kernel, grid=4, block=8, args=(arr,))
        assert codes(sanitizer) == []

    def test_suppressed_codes_route_to_suppressed_list(self, device):
        sanitizer = DeviceSanitizer(suppress=("SAN006",))
        with sanitizer.activate():
            arr = device.alloc(8, name="shared")
            device.launch(ww_overlap_kernel, grid=2, block=32, args=(arr,))
        assert sanitizer.findings == []
        assert [f.code for f in sanitizer.suppressed] == ["SAN006"]

    def test_report_carries_stats_and_workload(self, device):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            arr = device.alloc(8, name="a")
            device.launch(tiled_ok_kernel, grid=2, block=8, args=(arr,))
        report = sanitizer.report(label="unit", workload={"grid": 2})
        assert report.clean
        assert report.stats["launches_checked"] == 1
        assert report.stats["blocks_checked"] == 2
        assert report.stats["arrays_tracked"] >= 1
        assert report.workload == {"grid": 2}


class TestAmbientPlumbing:
    def test_default_is_the_shared_null_sanitizer(self):
        assert current_sanitizer() is NULL_SANITIZER
        assert not NULL_SANITIZER.enabled

    def test_activate_restores_previous_sanitizer(self):
        sanitizer = DeviceSanitizer()
        with sanitizer.activate():
            assert current_sanitizer() is sanitizer
            inner = DeviceSanitizer()
            with inner.activate():
                assert current_sanitizer() is inner
            assert current_sanitizer() is sanitizer
        assert current_sanitizer() is NULL_SANITIZER

    def test_activate_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with DeviceSanitizer().activate():
                raise RuntimeError("boom")
        assert current_sanitizer() is NULL_SANITIZER

    def test_data_is_raw_ndarray_when_off(self, device):
        arr = device.alloc(8)
        assert arr.data is arr.raw
        assert isinstance(arr.data, np.ndarray)

    def test_unknown_suppress_code_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError, match="SAN042"):
            DeviceSanitizer(suppress=("SAN042",))

    def test_null_sanitizer_view_is_raw(self, device):
        arr = device.alloc(8)
        assert NullSanitizer().view(arr) is arr.raw
