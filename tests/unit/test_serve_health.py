"""Unit tests for repro.serve.health (engine pool + fault-taxonomy health)."""

import pytest

from repro.errors import FaultError, LaunchError, ValidationError
from repro.kpm.engines import NumpyEngine
from repro.serve import ElasticEnginePool, EnginePool


class TestPoolConstruction:
    def test_names_from_registry(self):
        pool = EnginePool(("numpy", "gpu-sim"))
        assert [slot.name for slot in pool.slots] == ["numpy", "gpu-sim"]

    def test_instance_backends(self):
        pool = EnginePool((NumpyEngine(),))
        assert pool.slots[0].name == "numpy"

    def test_duplicate_names_get_suffix(self):
        pool = EnginePool(("numpy", "numpy"))
        assert [slot.name for slot in pool.slots] == ["numpy", "numpy#1"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            EnginePool(())
        with pytest.raises(ValidationError):
            EnginePool(("numpy",), eject_after=0)
        with pytest.raises(ValidationError):
            EnginePool(("no-such-backend",))


class TestSelection:
    def test_affinity_round_robin(self):
        pool = EnginePool(("numpy", "cpu-model"))
        assert pool.select(0).name == "numpy"
        assert pool.select(1).name == "cpu-model"
        assert pool.select(2).name == "numpy"

    def test_excluding(self):
        pool = EnginePool(("numpy", "cpu-model"))
        first = pool.select(0)
        assert pool.select(0, excluding=(first,)).name == "cpu-model"

    def test_empty_pool_raises_fault(self):
        pool = EnginePool(("numpy",))
        with pytest.raises(FaultError, match="no healthy engine"):
            pool.select(0, excluding=(pool.slots[0],))


class TestHealthTrajectory:
    def test_eject_then_readmit(self):
        pool = EnginePool(("numpy", "cpu-model"), eject_after=2, readmit_after=3)
        sick = pool.slots[0]
        pool.report_failure(sick)
        assert sick.healthy  # one strike, eject_after=2
        pool.report_failure(sick)
        assert not sick.healthy
        assert pool.stats.ejections == 1
        assert [s.name for s in pool.healthy_slots()] == ["cpu-model"]
        # Three dispatches later the slot is readmitted on probation.
        for _ in range(3):
            pool.report_success(pool.slots[1], None)
        assert [s.name for s in pool.healthy_slots()] == ["numpy", "cpu-model"]
        assert sick.strikes == 0
        assert pool.stats.readmissions == 1

    def test_success_clears_strikes(self):
        pool = EnginePool(("numpy",), eject_after=2)
        slot = pool.slots[0]
        pool.report_failure(slot)
        pool.report_success(slot, 0.5)
        pool.report_failure(slot)
        assert slot.healthy  # never reached two consecutive strikes
        assert pool.stats.modeled_seconds_by_engine == {"numpy": 0.5}

    def test_describe(self):
        pool = EnginePool(("numpy",), eject_after=1)
        assert pool.slots[0].describe() == "numpy[healthy]"
        pool.report_failure(pool.slots[0])
        assert pool.slots[0].describe() == "numpy[ejected]"

    def test_trajectory_is_replayable(self):
        # Same failure trace, same eject/readmit history — no clocks.
        def run():
            pool = EnginePool(("numpy", "cpu-model"), eject_after=1, readmit_after=2)
            events = []
            pool.report_failure(pool.slots[0])
            events.append([s.name for s in pool.healthy_slots()])
            pool.report_success(pool.slots[1], None)
            pool.report_success(pool.slots[1], None)
            events.append([s.name for s in pool.healthy_slots()])
            return events, pool.stats.ejections, pool.stats.readmissions

        assert run() == run()


class TestElasticEnginePool:
    def test_ladder_cycles_template(self):
        pool = ElasticEnginePool(("gpu-sim", "cpu-model"), max_active=4)
        assert [s.name for s in pool.slots] == [
            "gpu-sim",
            "cpu-model",
            "gpu-sim#1",
            "cpu-model#1",
        ]

    def test_starts_at_min_active(self):
        pool = ElasticEnginePool(("gpu-sim",), min_active=2, max_active=4)
        assert pool.active == 2
        assert len(pool.healthy_slots()) == 2

    def test_scale_up_one_step_per_rebalance(self):
        pool = ElasticEnginePool(("gpu-sim",), min_active=1, max_active=3)
        assert pool.rebalance(10.0) == 2
        assert pool.rebalance(10.0) == 3
        # Bounded at max_active even under unbounded demand.
        assert pool.rebalance(100.0) == 3
        assert pool.scale_ups == 2
        assert pool.peak_active == 3

    def test_scale_down_when_demand_ebbs(self):
        pool = ElasticEnginePool(("gpu-sim",), min_active=1, max_active=3)
        pool.rebalance(10.0)
        pool.rebalance(10.0)
        assert pool.rebalance(0.0) == 2
        assert pool.rebalance(0.0) == 1
        # Floor at min_active.
        assert pool.rebalance(0.0) == 1
        assert pool.scale_downs == 2

    def test_hysteresis_band_holds_steady(self):
        pool = ElasticEnginePool(
            ("gpu-sim",), min_active=1, max_active=4,
            scale_up_at=0.8, scale_down_at=0.3,
        )
        # Utilization 0.5 sits inside the band: no flapping.
        for _ in range(5):
            assert pool.rebalance(0.5) == 1
        assert pool.scale_ups == 0 and pool.scale_downs == 0

    def test_health_counters_survive_scaling(self):
        pool = ElasticEnginePool(("gpu-sim",), min_active=1, max_active=2,
                                 eject_after=1)
        pool.rebalance(10.0)
        sick = pool.slots[1]
        pool.report_failure(sick)
        assert [s.name for s in pool.healthy_slots()] == ["gpu-sim"]
        pool.rebalance(0.0)  # retire the (ejected) newest slot
        pool.rebalance(10.0)  # bring it back: still ejected
        assert sick.failures_total == 1
        assert [s.name for s in pool.healthy_slots()] == ["gpu-sim"]

    def test_replayable(self):
        def run():
            pool = ElasticEnginePool(("gpu-sim", "cpu-model"), max_active=4)
            return [pool.rebalance(r) for r in (2.0, 5.0, 1.0, 0.0, 0.0, 3.0)]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValidationError):
            ElasticEnginePool(())
        with pytest.raises(ValidationError):
            ElasticEnginePool(("gpu-sim",), min_active=3, max_active=2)
        with pytest.raises(ValidationError):
            ElasticEnginePool(("gpu-sim",), scale_up_at=0.3, scale_down_at=0.5)
        pool = ElasticEnginePool(("gpu-sim",))
        with pytest.raises(ValidationError):
            pool.rebalance(-1.0)


class TestTaxonomyIntegration:
    def test_launch_error_is_device_error(self):
        # The pool's callers catch DeviceError; LaunchError must qualify.
        from repro.errors import DeviceError

        assert issubclass(LaunchError, DeviceError)
