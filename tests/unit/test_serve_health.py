"""Unit tests for repro.serve.health (engine pool + fault-taxonomy health)."""

import pytest

from repro.errors import FaultError, LaunchError, ValidationError
from repro.kpm.engines import NumpyEngine
from repro.serve import EnginePool


class TestPoolConstruction:
    def test_names_from_registry(self):
        pool = EnginePool(("numpy", "gpu-sim"))
        assert [slot.name for slot in pool.slots] == ["numpy", "gpu-sim"]

    def test_instance_backends(self):
        pool = EnginePool((NumpyEngine(),))
        assert pool.slots[0].name == "numpy"

    def test_duplicate_names_get_suffix(self):
        pool = EnginePool(("numpy", "numpy"))
        assert [slot.name for slot in pool.slots] == ["numpy", "numpy#1"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            EnginePool(())
        with pytest.raises(ValidationError):
            EnginePool(("numpy",), eject_after=0)
        with pytest.raises(ValidationError):
            EnginePool(("no-such-backend",))


class TestSelection:
    def test_affinity_round_robin(self):
        pool = EnginePool(("numpy", "cpu-model"))
        assert pool.select(0).name == "numpy"
        assert pool.select(1).name == "cpu-model"
        assert pool.select(2).name == "numpy"

    def test_excluding(self):
        pool = EnginePool(("numpy", "cpu-model"))
        first = pool.select(0)
        assert pool.select(0, excluding=(first,)).name == "cpu-model"

    def test_empty_pool_raises_fault(self):
        pool = EnginePool(("numpy",))
        with pytest.raises(FaultError, match="no healthy engine"):
            pool.select(0, excluding=(pool.slots[0],))


class TestHealthTrajectory:
    def test_eject_then_readmit(self):
        pool = EnginePool(("numpy", "cpu-model"), eject_after=2, readmit_after=3)
        sick = pool.slots[0]
        pool.report_failure(sick)
        assert sick.healthy  # one strike, eject_after=2
        pool.report_failure(sick)
        assert not sick.healthy
        assert pool.stats.ejections == 1
        assert [s.name for s in pool.healthy_slots()] == ["cpu-model"]
        # Three dispatches later the slot is readmitted on probation.
        for _ in range(3):
            pool.report_success(pool.slots[1], None)
        assert [s.name for s in pool.healthy_slots()] == ["numpy", "cpu-model"]
        assert sick.strikes == 0
        assert pool.stats.readmissions == 1

    def test_success_clears_strikes(self):
        pool = EnginePool(("numpy",), eject_after=2)
        slot = pool.slots[0]
        pool.report_failure(slot)
        pool.report_success(slot, 0.5)
        pool.report_failure(slot)
        assert slot.healthy  # never reached two consecutive strikes
        assert pool.stats.modeled_seconds_by_engine == {"numpy": 0.5}

    def test_describe(self):
        pool = EnginePool(("numpy",), eject_after=1)
        assert pool.slots[0].describe() == "numpy[healthy]"
        pool.report_failure(pool.slots[0])
        assert pool.slots[0].describe() == "numpy[ejected]"

    def test_trajectory_is_replayable(self):
        # Same failure trace, same eject/readmit history — no clocks.
        def run():
            pool = EnginePool(("numpy", "cpu-model"), eject_after=1, readmit_after=2)
            events = []
            pool.report_failure(pool.slots[0])
            events.append([s.name for s in pool.healthy_slots()])
            pool.report_success(pool.slots[1], None)
            pool.report_success(pool.slots[1], None)
            events.append([s.name for s in pool.healthy_slots()])
            return events, pool.stats.ejections, pool.stats.readmissions

        assert run() == run()


class TestTaxonomyIntegration:
    def test_launch_error_is_device_error(self):
        # The pool's callers catch DeviceError; LaunchError must qualify.
        from repro.errors import DeviceError

        assert issubclass(LaunchError, DeviceError)
