"""Unit tests for repro.kpm.KPMConfig."""

import pytest

from repro.errors import ValidationError
from repro.kpm import KPMConfig


class TestDefaults:
    def test_default_construction(self):
        config = KPMConfig()
        assert config.num_moments == 256
        assert config.kernel == "jackson"

    def test_total_vectors(self):
        config = KPMConfig(num_random_vectors=14, num_realizations=128)
        assert config.total_vectors == 1792

    def test_frozen(self):
        with pytest.raises(AttributeError):
            KPMConfig().num_moments = 5


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        ["num_moments", "num_random_vectors", "num_realizations", "num_energy_points", "block_size"],
    )
    def test_positive_ints(self, field):
        with pytest.raises(ValidationError):
            KPMConfig(**{field: 0})

    def test_epsilon_range(self):
        with pytest.raises(ValidationError):
            KPMConfig(epsilon=1.5)
        assert KPMConfig(epsilon=0.0).epsilon == 0.0

    def test_bounds_method_choice(self):
        with pytest.raises(ValidationError):
            KPMConfig(bounds_method="magic")

    def test_kernel_type(self):
        with pytest.raises(ValidationError):
            KPMConfig(kernel=3)

    def test_vector_kind_type(self):
        with pytest.raises(ValidationError):
            KPMConfig(vector_kind=None)


class TestWithUpdates:
    def test_changes_field(self):
        config = KPMConfig().with_updates(num_moments=64)
        assert config.num_moments == 64

    def test_original_untouched(self):
        original = KPMConfig()
        original.with_updates(num_moments=64)
        assert original.num_moments == 256

    def test_revalidates(self):
        with pytest.raises(ValidationError):
            KPMConfig().with_updates(num_moments=-1)
