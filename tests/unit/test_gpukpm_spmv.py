"""Unit tests for the per-format SpMV cost models (repro.gpukpm.spmv)."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gpu import TESLA_C2050
from repro.gpu.costmodel import (
    ell_padding_fraction,
    gather_miss_fraction,
    row_imbalance_efficiency,
)
from repro.gpukpm import (
    SPMV_FORMATS,
    VECTOR_WIDTHS,
    default_spmv_format,
    estimate_gpu_kpm_seconds,
    spmv_model_for,
)
from repro.kpm import KPMConfig
from repro.lattice import chain, cubic, tight_binding_hamiltonian
from repro.sparse import CSRMatrix, DenseOperator, structure_profile

_INDEX = 8


@pytest.fixture(scope="module")
def lattice_csr():
    return tight_binding_hamiltonian(cubic(3), format="csr")


class TestDenseModel:
    def test_formulas(self):
        model = spmv_model_for(np.eye(10), "dense")
        assert model.format == "dense"
        assert model.vector_width == 1
        assert model.flops_per_matvec == 200.0
        assert model.matrix_bytes == 100 * 8
        assert model.read_bytes_per_matvec == 100 * 8 + 10 * 8
        assert model.upload_bytes == (100 * 8,)

    def test_single_precision_halves_value_bytes(self):
        double = spmv_model_for(np.eye(10), "dense")
        single = spmv_model_for(np.eye(10), "dense", precision="single")
        assert single.matrix_bytes == double.matrix_bytes / 2

    def test_accepts_profile_without_structure_scan(self, lattice_csr):
        profile = structure_profile(lattice_csr)
        model = spmv_model_for(profile, "dense")
        assert model.matrix_bytes == 27 * 27 * 8


class TestCsrModels:
    def test_scalar_csr_bytes_and_flops(self, lattice_csr):
        nnz, dim = lattice_csr.nnz_stored, 27
        model = spmv_model_for(lattice_csr, "csr")
        assert model.format == "csr"
        assert model.nnz == nnz
        assert model.flops_per_matvec == 2.0 * nnz
        assert model.matrix_bytes == nnz * (8 + _INDEX) + (dim + 1) * _INDEX
        assert model.upload_bytes == (nnz * 8, nnz * _INDEX, (dim + 1) * _INDEX)

    def test_uniform_rows_have_full_thread_efficiency(self, lattice_csr):
        assert spmv_model_for(lattice_csr, "csr").thread_efficiency == 1.0

    def test_skewed_rows_pay_imbalance(self):
        dense = np.zeros((8, 8))
        dense[0, :] = 1.0  # one long row
        dense[1:, 0] = 1.0
        model = spmv_model_for(CSRMatrix.from_dense(dense), "csr")
        assert model.thread_efficiency < 1.0

    def test_vector_width_validation(self, lattice_csr):
        with pytest.raises(ValidationError, match="vector_width"):
            spmv_model_for(lattice_csr, "csr-vector", vector_width=3)

    def test_vector_model_adds_reduction_flops(self, lattice_csr):
        scalar = spmv_model_for(lattice_csr, "csr")
        vector = spmv_model_for(lattice_csr, "csr-vector", vector_width=4)
        assert vector.format == "csr-vector"
        assert vector.vector_width == 4
        assert vector.flops_per_matvec == (
            scalar.flops_per_matvec + 27 * math.ceil(math.log2(4))
        )
        # Same storage, so identical uploads and footprint.
        assert vector.upload_bytes == scalar.upload_bytes
        assert vector.matrix_bytes == scalar.matrix_bytes

    def test_wide_teams_on_short_rows_waste_lanes(self, lattice_csr):
        # cubic rows hold 7 entries: a 32-lane team mostly idles.
        narrow = spmv_model_for(lattice_csr, "csr-vector", vector_width=2)
        wide = spmv_model_for(lattice_csr, "csr-vector", vector_width=32)
        assert wide.thread_efficiency < narrow.thread_efficiency
        assert wide.thread_efficiency >= 1.0 / 32.0


class TestEllModel:
    def test_padded_slots_are_charged(self):
        dense = np.zeros((6, 6))
        dense[0, :] = 1.0  # one full row pads every other row to width 6
        dense[1:, 0] = 1.0
        csr = CSRMatrix.from_dense(dense)
        model = spmv_model_for(csr, "ell")
        slots = 6 * 6  # rows x max_row_nnz, padding included
        assert model.format == "ell"
        assert model.flops_per_matvec == 2.0 * slots
        assert model.matrix_bytes == slots * (8 + _INDEX)
        assert model.upload_bytes == (slots * 8, slots * _INDEX)
        assert model.nnz == csr.nnz_stored == 11  # informational, unpadded

    def test_uniform_rows_beat_csr_on_reads(self, lattice_csr):
        # No padding and no indptr array: strictly fewer bytes.
        ell = spmv_model_for(lattice_csr, "ell")
        csr = spmv_model_for(lattice_csr, "csr")
        assert ell.matrix_bytes < csr.matrix_bytes
        assert ell.coalescing > csr.coalescing


class TestValidationAndDefaults:
    def test_unknown_format_rejected(self, lattice_csr):
        with pytest.raises(ValidationError, match="format"):
            spmv_model_for(lattice_csr, "coo")

    def test_unknown_precision_rejected(self, lattice_csr):
        with pytest.raises(ValidationError, match="precision"):
            spmv_model_for(lattice_csr, "csr", precision="half")

    def test_default_format_preserves_storage(self, lattice_csr):
        assert default_spmv_format(lattice_csr) == "csr"
        assert default_spmv_format(lattice_csr.to_ell()) == "ell"
        assert default_spmv_format(np.eye(4)) == "dense"
        assert default_spmv_format(DenseOperator(np.eye(4))) == "dense"

    def test_default_format_needs_shape(self):
        with pytest.raises(ValidationError, match="shape"):
            default_spmv_format(42)

    def test_format_tables(self):
        assert SPMV_FORMATS == ("dense", "csr", "csr-vector", "ell")
        assert all(w & (w - 1) == 0 for w in VECTOR_WIDTHS)


class TestEstimatorParity:
    """The format-aware models slot into the legacy estimator contract."""

    def test_csr_model_matches_legacy_nnz_path_on_uniform_lattice(
        self, lattice_csr
    ):
        config = KPMConfig(num_moments=16, num_random_vectors=4)
        legacy = estimate_gpu_kpm_seconds(
            TESLA_C2050, 27, config, nnz=lattice_csr.nnz_stored
        )
        model = estimate_gpu_kpm_seconds(
            TESLA_C2050, 27, config, spmv=spmv_model_for(lattice_csr, "csr")
        )
        assert model == legacy

    def test_dense_model_matches_legacy_dense_path(self):
        config = KPMConfig(num_moments=16, num_random_vectors=4)
        legacy = estimate_gpu_kpm_seconds(TESLA_C2050, 64, config)
        model = estimate_gpu_kpm_seconds(
            TESLA_C2050, 64, config, spmv=spmv_model_for(np.zeros((64, 64)), "dense")
        )
        assert model == legacy

    def test_nnz_and_spmv_are_mutually_exclusive(self, lattice_csr):
        with pytest.raises(ValidationError, match="either nnz or spmv"):
            estimate_gpu_kpm_seconds(
                TESLA_C2050,
                27,
                KPMConfig(),
                nnz=lattice_csr.nnz_stored,
                spmv=spmv_model_for(lattice_csr, "csr"),
            )


class TestCostModelHelpers:
    def test_gather_miss_fraction_banded_is_free(self):
        assert gather_miss_fraction(1000, 1.0) == 0.0

    def test_gather_miss_fraction_ramps_and_saturates(self):
        near = gather_miss_fraction(1000, 100.0)
        far = gather_miss_fraction(1000, 250.0)
        assert 0.0 < near < far <= 1.0
        assert gather_miss_fraction(1000, 10_000.0) == 1.0

    def test_gather_miss_fraction_validation(self):
        with pytest.raises(ValidationError):
            gather_miss_fraction(0, 1.0)
        with pytest.raises(ValidationError):
            gather_miss_fraction(10, -1.0)

    def test_row_imbalance_efficiency_bounds(self):
        assert row_imbalance_efficiency(6, 6) == 1.0
        assert row_imbalance_efficiency(0, 0) == 1.0
        skewed = row_imbalance_efficiency(100, 2)
        assert 0.0 < skewed < 0.05

    def test_row_imbalance_granularity_rounds_to_teams(self):
        # 6-entry rows on 8-lane teams take one pass either way.
        assert row_imbalance_efficiency(6, 3, granularity=8) == 1.0
        with pytest.raises(ValidationError):
            row_imbalance_efficiency(6, 3, granularity=0)
        with pytest.raises(ValidationError):
            row_imbalance_efficiency(2, 3)

    def test_ell_padding_fraction(self):
        assert ell_padding_fraction(6, 6) == 0.0
        assert ell_padding_fraction(0, 0) == 0.0
        assert ell_padding_fraction(4, 3) == pytest.approx(0.25)
        with pytest.raises(ValidationError):
            ell_padding_fraction(2, 3)
