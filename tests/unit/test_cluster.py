"""Unit tests for repro.cluster (multi-GPU extension)."""

import numpy as np
import pytest

from repro.cluster import (
    GIGABIT_ETHERNET,
    INFINIBAND_QDR,
    InterconnectSpec,
    MultiGpuKPM,
    estimate_multigpu_seconds,
    multigpu_breakdown,
)
from repro.cluster.multigpu import _partition
from repro.errors import ValidationError
from repro.gpu import TESLA_C2050
from repro.gpukpm import GpuKPM
from repro.kpm import KPMConfig, rescale_operator
from repro.lattice import cubic, tight_binding_hamiltonian


@pytest.fixture
def scaled_cube():
    h = tight_binding_hamiltonian(cubic(4), format="csr")
    scaled, _ = rescale_operator(h)
    return scaled


class TestInterconnect:
    def test_message_seconds(self):
        link = InterconnectSpec("test", 1e9, 1e-6)
        assert link.message_seconds(1e9) == pytest.approx(1.0 + 1e-6)

    def test_presets_ordering(self):
        big = 100 * 1024 * 1024
        assert INFINIBAND_QDR.message_seconds(big) < GIGABIT_ETHERNET.message_seconds(big)

    def test_validation(self):
        with pytest.raises(ValidationError):
            InterconnectSpec("bad", 0.0, 0.0)


class TestPartition:
    def test_covers_range(self):
        slices = _partition(10, 3)
        assert slices == [(0, 4), (4, 3), (7, 3)]

    def test_even_split(self):
        assert _partition(8, 4) == [(0, 2), (2, 2), (4, 2), (6, 2)]


class TestFunctional:
    def test_moments_match_single_device(self, scaled_cube, small_config):
        single, _ = GpuKPM().compute_moments(scaled_cube, small_config)
        multi, _ = MultiGpuKPM(4).compute_moments(scaled_cube, small_config)
        np.testing.assert_allclose(multi.mu, single.mu, atol=1e-14)
        np.testing.assert_allclose(
            multi.per_realization, single.per_realization, atol=1e-14
        )

    def test_uneven_partition_still_matches(self, scaled_cube, small_config):
        # 16 vectors over 3 devices -> 6/5/5.
        single, _ = GpuKPM().compute_moments(scaled_cube, small_config)
        multi, _ = MultiGpuKPM(3).compute_moments(scaled_cube, small_config)
        np.testing.assert_allclose(multi.mu, single.mu, atol=1e-14)

    def test_report_breakdown(self, scaled_cube, small_config):
        _, report = MultiGpuKPM(2).compute_moments(scaled_cube, small_config)
        assert set(report.breakdown) == {"broadcast", "compute", "allreduce"}
        assert report.modeled_seconds == pytest.approx(sum(report.breakdown.values()))

    def test_single_device_no_communication(self, scaled_cube, small_config):
        _, report = MultiGpuKPM(1).compute_moments(scaled_cube, small_config)
        assert report.breakdown["broadcast"] == 0.0
        assert report.breakdown["allreduce"] == 0.0

    def test_too_many_devices_rejected(self, scaled_cube, small_config):
        with pytest.raises(ValidationError, match="exceeds"):
            MultiGpuKPM(1000).compute_moments(scaled_cube, small_config)

    def test_modeled_matches_estimate(self, scaled_cube, small_config):
        _, report = MultiGpuKPM(3).compute_moments(scaled_cube, small_config)
        estimate = estimate_multigpu_seconds(
            TESLA_C2050,
            scaled_cube.shape[0],
            small_config,
            3,
            nnz=scaled_cube.nnz_stored,
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)


class TestEstimator:
    def test_breakdown_keys(self):
        config = KPMConfig(num_random_vectors=64, num_realizations=1)
        breakdown = multigpu_breakdown(TESLA_C2050, 256, config, 4)
        assert set(breakdown) == {"broadcast", "compute", "allreduce"}

    def test_communication_grows_with_devices(self):
        config = KPMConfig(num_random_vectors=64, num_realizations=1)
        b2 = multigpu_breakdown(TESLA_C2050, 256, config, 2)
        b8 = multigpu_breakdown(TESLA_C2050, 256, config, 8)
        assert b8["broadcast"] > b2["broadcast"]

    def test_slow_interconnect_costs_more(self):
        config = KPMConfig(num_random_vectors=64, num_realizations=1)
        fast = estimate_multigpu_seconds(
            TESLA_C2050, 1024, config, 4, interconnect=INFINIBAND_QDR
        )
        slow = estimate_multigpu_seconds(
            TESLA_C2050, 1024, config, 4, interconnect=GIGABIT_ETHERNET
        )
        assert slow > fast

    def test_compute_shrinks_with_devices(self):
        config = KPMConfig(
            num_random_vectors=1792, num_realizations=1, num_moments=256, block_size=32
        )
        b1 = multigpu_breakdown(TESLA_C2050, 1000, config, 1)
        b8 = multigpu_breakdown(TESLA_C2050, 1000, config, 8)
        assert b8["compute"] < b1["compute"]

    def test_device_count_validation(self):
        config = KPMConfig(num_random_vectors=4, num_realizations=1)
        with pytest.raises(ValidationError):
            multigpu_breakdown(TESLA_C2050, 64, config, 5)
