"""Unit tests for ELL storage (repro.sparse.ell)."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.lattice import chain, cubic, tight_binding_hamiltonian
from repro.sparse import CSRMatrix, ELLMatrix


def sample_dense():
    return np.array(
        [
            [2.0, -1.0, 0.0, 0.0],
            [-1.0, 2.0, -1.0, 0.0],
            [0.0, -1.0, 2.0, -1.0],
            [0.0, 0.0, -1.0, 2.0],
        ]
    )


class TestConstruction:
    def test_from_csr_roundtrip(self):
        dense = sample_dense()
        ell = ELLMatrix.from_csr(CSRMatrix.from_dense(dense))
        np.testing.assert_array_equal(ell.to_dense(), dense)
        assert ell.width == 3
        assert ell.nnz_stored == 10
        assert ell.shape == (4, 4)

    def test_from_dense_matches_from_csr(self):
        dense = sample_dense()
        via_csr = ELLMatrix.from_csr(CSRMatrix.from_dense(dense))
        direct = ELLMatrix.from_dense(dense)
        assert direct.fingerprint() == via_csr.fingerprint()

    def test_to_ell_method_on_csr(self):
        csr = CSRMatrix.from_dense(sample_dense())
        ell = csr.to_ell()
        assert isinstance(ell, ELLMatrix)
        np.testing.assert_array_equal(ell.to_dense(), csr.to_dense())

    def test_to_csr_drops_padding(self):
        csr = CSRMatrix.from_dense(sample_dense())
        back = csr.to_ell().to_csr()
        np.testing.assert_array_equal(back.indptr, csr.indptr)
        np.testing.assert_array_equal(back.indices, csr.indices)
        np.testing.assert_array_equal(back.data, csr.data)

    def test_empty_rows_pack_as_padding(self):
        dense = np.zeros((3, 3))
        dense[1, 2] = 5.0
        ell = ELLMatrix.from_dense(dense)
        assert ell.width == 1
        assert ell.nnz_stored == 1
        np.testing.assert_array_equal(ell.row_nnz, [0, 1, 0])
        np.testing.assert_array_equal(ell.to_dense(), dense)

    def test_all_zero_matrix_has_zero_width(self):
        ell = ELLMatrix.from_dense(np.zeros((3, 3)))
        assert ell.width == 0
        assert ell.nnz_stored == 0
        np.testing.assert_array_equal(ell.to_dense(), np.zeros((3, 3)))


class TestValidation:
    def test_rejects_non_csr_in_from_csr(self):
        with pytest.raises(ValidationError, match="CSRMatrix"):
            ELLMatrix.from_csr(sample_dense())

    def test_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            ELLMatrix(np.zeros((2, 1)), np.zeros((2, 1)), [1, 1], (2, 2, 2))

    def test_rejects_row_nnz_above_width(self):
        with pytest.raises(ValidationError, match="row_nnz"):
            ELLMatrix(np.ones((2, 1)), np.zeros((2, 1)), [2, 1], (2, 2))

    def test_rejects_column_out_of_range(self):
        with pytest.raises(ValidationError, match="column index"):
            ELLMatrix(np.ones((2, 1)), [[0], [5]], [1, 1], (2, 2))

    def test_rejects_unsorted_stored_indices(self):
        data = np.ones((1, 2))
        indices = np.array([[1, 0]])
        with pytest.raises(ValidationError, match="strictly increasing"):
            ELLMatrix(data, indices, [2], (1, 2))

    def test_rejects_dirty_padding(self):
        data = np.array([[1.0, 7.0]])
        indices = np.array([[0, 0]])
        with pytest.raises(ValidationError, match="padded slots"):
            ELLMatrix(data, indices, [1], (1, 2))

    def test_rejects_nonfinite_data(self):
        with pytest.raises(ValidationError, match="finite"):
            ELLMatrix([[np.inf]], [[0]], [1], (1, 1))

    def test_matvec_shape_check(self):
        ell = ELLMatrix.from_dense(sample_dense())
        with pytest.raises(ShapeError):
            ell.matvec(np.ones(3))
        with pytest.raises(ShapeError):
            ell.matmat(np.ones((3, 2)))


class TestStats:
    def test_padding_fraction_uniform_rows_is_zero(self):
        # Periodic cubic lattice: every row stores onsite + 6 neighbours.
        csr = tight_binding_hamiltonian(cubic(3), format="csr")
        assert csr.to_ell().padding_fraction == 0.0

    def test_padding_fraction_counts_empty_slots(self):
        ell = ELLMatrix.from_dense(sample_dense())
        # 4 rows x width 3 = 12 slots, 10 stored.
        assert ell.padding_fraction == pytest.approx(2.0 / 12.0)

    def test_max_row_nnz(self):
        ell = ELLMatrix.from_dense(sample_dense())
        assert ell.max_row_nnz == 3

    def test_nbytes_includes_padding(self):
        ell = ELLMatrix.from_dense(sample_dense())
        assert ell.nbytes == 4 * 3 * (8 + 8)

    def test_fingerprint_distinguishes_values(self):
        a = ELLMatrix.from_dense(sample_dense())
        perturbed = sample_dense()
        perturbed[0, 0] = 3.0
        b = ELLMatrix.from_dense(perturbed)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == ELLMatrix.from_dense(sample_dense()).fingerprint()


class TestLinearAlgebra:
    def test_matvec_bit_identical_to_csr(self):
        csr = tight_binding_hamiltonian(chain(17), format="csr")
        ell = csr.to_ell()
        rng = np.random.default_rng(3)
        x = rng.standard_normal(17)
        np.testing.assert_array_equal(ell.matvec(x), csr.matvec(x))

    def test_matmat_bit_identical_to_csr(self):
        csr = tight_binding_hamiltonian(cubic(3), format="csr")
        ell = csr.to_ell()
        rng = np.random.default_rng(4)
        block = rng.standard_normal((27, 3))
        np.testing.assert_array_equal(ell.matmat(block), csr.matmat(block))

    def test_dot_and_matmul_dispatch(self):
        ell = ELLMatrix.from_dense(sample_dense())
        x = np.arange(4.0)
        np.testing.assert_array_equal(ell.dot(x), ell.matvec(x))
        np.testing.assert_array_equal(ell @ x, ell.matvec(x))
        with pytest.raises(ShapeError):
            ell.dot(np.ones((2, 2, 2)))


class TestTransformations:
    def test_transpose_involution(self):
        dense = np.triu(sample_dense())
        ell = ELLMatrix.from_dense(dense)
        np.testing.assert_array_equal(ell.transpose().to_dense(), dense.T)
        np.testing.assert_array_equal(
            ell.transpose().transpose().to_dense(), dense
        )

    def test_scale_shift_matches_dense(self):
        dense = sample_dense()
        out = ELLMatrix.from_dense(dense).scale_shift(0.5, -1.0)
        assert isinstance(out, ELLMatrix)
        np.testing.assert_allclose(
            out.to_dense(), 0.5 * dense - 1.0 * np.eye(4)
        )

    def test_diagonal_and_symmetry(self):
        ell = ELLMatrix.from_dense(sample_dense())
        np.testing.assert_array_equal(ell.diagonal(), np.full(4, 2.0))
        assert ell.is_symmetric()
        assert not ELLMatrix.from_dense(np.triu(sample_dense())).is_symmetric()

    def test_offdiag_abs_row_sums(self):
        ell = ELLMatrix.from_dense(sample_dense())
        np.testing.assert_array_equal(
            ell.offdiag_abs_row_sums(), np.array([1.0, 2.0, 2.0, 1.0])
        )
