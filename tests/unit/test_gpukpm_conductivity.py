"""Unit tests for the GPU conductivity pipeline."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gpu import TESLA_C2050, tiny_test_device
from repro.gpukpm import (
    GpuConductivity,
    estimate_gpu_conductivity_seconds,
    per_vector_conductivity_stats,
    plan_conductivity_memory,
)
from repro.kpm import (
    KPMConfig,
    lattice_current_operator,
    rescale_operator,
    stochastic_conductivity_moments,
)
from repro.lattice import chain, tight_binding_hamiltonian


@pytest.fixture(scope="module")
def system():
    lattice = chain(48)
    hamiltonian = tight_binding_hamiltonian(lattice, format="csr")
    current = lattice_current_operator(lattice, 0)
    scaled, _ = rescale_operator(hamiltonian)
    return hamiltonian, current, scaled


@pytest.fixture
def config():
    return KPMConfig(
        num_moments=12, num_random_vectors=6, num_realizations=2, seed=4,
        block_size=32,
    )


class TestFunctionalParity:
    def test_matches_host_reference(self, system, config):
        _, current, scaled = system
        host = stochastic_conductivity_moments(scaled, current, config)
        gpu, _ = GpuConductivity().run(scaled, current, config)
        np.testing.assert_allclose(gpu, host, atol=1e-12)

    def test_dense_storage_matches(self, system, config):
        hamiltonian, current, _ = system
        from repro.sparse import DenseOperator

        scaled_dense, _ = rescale_operator(
            DenseOperator(hamiltonian.to_dense())
        )
        host = stochastic_conductivity_moments(scaled_dense, current, config)
        gpu, _ = GpuConductivity().run(scaled_dense, current, config)
        np.testing.assert_allclose(gpu, host, atol=1e-12)

    def test_single_precision_close(self, system, config):
        _, current, scaled = system
        dp, _ = GpuConductivity().run(scaled, current, config)
        sp, _ = GpuConductivity().run(
            scaled, current, config.with_updates(precision="single")
        )
        assert 0 < np.max(np.abs(dp - sp)) < 1e-3


class TestTiming:
    def test_estimator_matches_run(self, system, config):
        hamiltonian, current, scaled = system
        runner = GpuConductivity()
        _, report = runner.run(scaled, current, config)
        estimate = estimate_gpu_conductivity_seconds(
            TESLA_C2050,
            hamiltonian.shape[0],
            config,
            nnz=scaled.nnz_stored,
            current_nnz=current.nnz_stored,
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)

    def test_memory_plan_matches_pool(self, system, config):
        _, current, scaled = system
        runner = GpuConductivity()
        runner.run(scaled, current, config)
        plan = plan_conductivity_memory(
            TESLA_C2050,
            scaled.shape[0],
            config,
            nnz=scaled.nnz_stored,
            current_nnz=current.nnz_stored,
        )
        assert runner.last_device.memory.peak_bytes == sum(plan.values())

    def test_gram_contraction_shifts_roofline_toward_compute(self, system):
        # The N^2 D Gram term makes the arithmetic intensity grow with N
        # (unlike the DoS recursion, whose intensity is constant):
        # compute time must gain on memory time as N rises.
        _, current, scaled = system

        def ratio(num_moments):
            config = KPMConfig(
                num_moments=num_moments, num_random_vectors=2,
                num_realizations=1, block_size=32,
            )
            runner = GpuConductivity()
            runner.run(scaled, current, config)
            event = next(
                e
                for e in runner.last_device.profiler.events
                if getattr(e, "name", "") == "kpm_conductivity"
            )
            return event.cost.compute_seconds / event.cost.memory_seconds

        assert ratio(96) > 2.0 * ratio(24)

    def test_dimension_mismatch_rejected(self, system, config):
        _, current, scaled = system
        other = tight_binding_hamiltonian(chain(16), format="csr")
        with pytest.raises(ValidationError):
            GpuConductivity().run(scaled, other, config)

    def test_requires_config(self, system):
        _, current, scaled = system
        with pytest.raises(ValidationError):
            GpuConductivity().run(scaled, current, None)


class TestStats:
    def test_gram_term_scales_quadratically(self):
        small = per_vector_conductivity_stats(100, 16, nnz=700, current_nnz=200)
        large = per_vector_conductivity_stats(100, 32, nnz=700, current_nnz=200)
        gram_small = 2 * 16**2 * 100
        gram_large = 2 * 32**2 * 100
        # The quadratic term must account for the difference growth.
        assert large.flops - small.flops > (gram_large - gram_small) * 0.9

    def test_memory_plan_stacks_dominate(self):
        config = KPMConfig(
            num_moments=256, num_random_vectors=128, num_realizations=14
        )
        plan = plan_conductivity_memory(
            TESLA_C2050, 1000, config, nnz=7000, current_nnz=2000
        )
        assert plan["stacks"] > plan["hamiltonian"]
        assert plan["stacks"] == 7 * 2 * 256 * 1000 * 8


class TestAblation:
    def test_transport_speedup_grows_with_n(self):
        from repro.bench import transport_ablation

        result = transport_ablation(n_values=(32, 128))
        speedups = result.column("speedup")
        assert speedups[1] > 1.5 * speedups[0]
