"""Unit tests for repro.serve.traffic (timed multi-tenant traces)."""

import math

import pytest

from repro.errors import ValidationError
from repro.serve import DoSRequest, TimedArrival, timed_trace


class TestTimedArrival:
    def test_validation(self):
        with pytest.raises(ValidationError):
            TimedArrival(at=-1.0, request=None)
        with pytest.raises(ValidationError):
            TimedArrival(at=math.inf, request=None)
        with pytest.raises(ValidationError):
            TimedArrival(at=1.0, request="not-a-request")


class TestTimedTrace:
    def test_deterministic_replay(self):
        def snapshot():
            return [
                (
                    a.at,
                    a.request.kind,
                    a.request.tag,
                    a.request.tenant,
                    a.request.deadline,
                    a.request.priority,
                )
                for a in timed_trace(40, seed=7)
            ]

        assert snapshot() == snapshot()

    def test_different_seeds_differ(self):
        first = [a.at for a in timed_trace(40, seed=0)]
        second = [a.at for a in timed_trace(40, seed=1)]
        assert first != second

    def test_arrivals_ascending_within_duration(self):
        arrivals = timed_trace(60, seed=3, duration=20.0)
        times = [a.at for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t <= 20.0 for t in times)
        assert len(arrivals) == 60

    def test_tenant_population_and_skew(self):
        arrivals = timed_trace(200, seed=1, tenants=4, tenant_skew=2.0)
        counts = {}
        for arrival in arrivals:
            counts[arrival.request.tenant] = counts.get(arrival.request.tenant, 0) + 1
        assert set(counts) <= {f"tenant-{i}" for i in range(4)}
        # Zipf skew: the head tenant dominates the tail.
        assert counts["tenant-0"] == max(counts.values())
        assert counts["tenant-0"] > counts.get("tenant-3", 0)

    def test_deadlines_follow_slack_envelope(self):
        arrivals = timed_trace(
            100, seed=2, deadline_slack=4.0, no_deadline_fraction=0.3
        )
        dated = [a for a in arrivals if a.request.deadline is not None]
        undated = [a for a in arrivals if a.request.deadline is None]
        assert dated and undated  # both populations present at 0.3
        for arrival in dated:
            slack = arrival.request.deadline - arrival.at
            assert 0.5 * 4.0 <= slack <= 1.5 * 4.0

    def test_no_deadline_fraction_extremes(self):
        none_at_all = timed_trace(30, seed=0, no_deadline_fraction=1.0)
        assert all(a.request.deadline is None for a in none_at_all)
        always = timed_trace(30, seed=0, no_deadline_fraction=0.0)
        assert all(a.request.deadline is not None for a in always)

    def test_priorities_within_levels(self):
        arrivals = timed_trace(80, seed=4, priority_levels=3)
        priorities = {a.request.priority for a in arrivals}
        assert priorities <= {0, 1, 2}
        assert len(priorities) > 1

    def test_workload_mix_fractions(self):
        pure_dos = timed_trace(30, seed=5, green_fraction=0.0, ldos_fraction=0.0)
        assert all(isinstance(a.request, DoSRequest) for a in pure_dos)
        mixed = timed_trace(120, seed=5, green_fraction=0.3, ldos_fraction=0.2)
        kinds = {a.request.kind for a in mixed}
        assert kinds == {"dos", "green", "ldos"}

    def test_repeat_bias_reuses_workloads(self):
        arrivals = timed_trace(
            60, seed=6, repeat_bias=0.9, green_fraction=0.0, ldos_fraction=0.0
        )
        names = [a.request.tag.split("/")[0] for a in arrivals]
        assert len(set(names)) < len(names)

    def test_validation(self):
        with pytest.raises(ValidationError):
            timed_trace(0)
        with pytest.raises(ValidationError):
            timed_trace(10, tenants=0)
        with pytest.raises(ValidationError):
            timed_trace(10, duration=0.0)
        with pytest.raises(ValidationError):
            timed_trace(10, diurnal_amplitude=1.5)
        with pytest.raises(ValidationError):
            timed_trace(10, flash_crowds=-1)
        with pytest.raises(ValidationError):
            timed_trace(10, tenant_skew=-0.5)
        with pytest.raises(ValidationError):
            timed_trace(10, green_fraction=0.7, ldos_fraction=0.7)
        with pytest.raises(ValidationError):
            timed_trace(10, deadline_slack=0.0)
        with pytest.raises(ValidationError):
            timed_trace(10, no_deadline_fraction=2.0)
        with pytest.raises(ValidationError):
            timed_trace(10, priority_levels=0)
