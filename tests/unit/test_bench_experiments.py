"""Unit tests for repro.bench.experiments and runner plumbing."""

import pytest

from repro.bench import EXPERIMENTS, get_experiment, run_experiment
from repro.bench.runner import run_all, write_csv_outputs
from repro.errors import ValidationError


class TestRegistry:
    def test_all_paper_figures_registered(self):
        assert {"fig5", "fig6", "fig7", "fig8"} <= set(EXPERIMENTS)

    def test_ablations_registered(self):
        assert {
            "ablation-blocksize",
            "ablation-crs",
            "ablation-multigpu",
            "ablation-kernel",
        } <= set(EXPERIMENTS)

    def test_kinds(self):
        assert EXPERIMENTS["fig5"].kind == "figure"
        assert EXPERIMENTS["ablation-crs"].kind == "ablation"

    def test_get_experiment(self):
        assert get_experiment("fig5").experiment_id == "fig5"

    def test_unknown_experiment(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            get_experiment("fig99")

    def test_ids_consistent(self):
        for key, spec in EXPERIMENTS.items():
            assert spec.experiment_id == key


class TestRunner:
    def test_run_experiment_returns_result(self):
        result = run_experiment("fig5")
        assert result.experiment_id == "fig5"
        assert len(result.rows) == 4

    def test_run_all_filters_kind(self):
        results = run_all(kinds=("figure",))
        assert set(results) == {"fig5", "fig6", "fig7", "fig8"}

    def test_write_csv_outputs(self, tmp_path):
        results = {"fig5": run_experiment("fig5")}
        paths = write_csv_outputs(results, str(tmp_path))
        assert len(paths) == 1
        content = open(paths[0]).read()
        assert content.startswith("N,cpu_seconds")
