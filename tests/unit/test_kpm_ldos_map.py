"""Unit tests for repro.kpm.local_dos_map."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm import KPMConfig, local_dos, local_dos_map
from repro.lattice import (
    anderson_onsite_energies,
    chain,
    cubic,
    tight_binding_hamiltonian,
)


@pytest.fixture(scope="module")
def cube():
    return tight_binding_hamiltonian(cubic(4), format="csr")


class TestConsistency:
    def test_matches_single_site_local_dos(self, cube):
        config = KPMConfig(num_moments=48, num_energy_points=256)
        energies_grid, single = local_dos(cube, 7, config)
        probe = energies_grid[50:200:25]
        mapped = local_dos_map(cube, probe, sites=[7], config=config)
        reference = np.interp(probe, energies_grid, single)
        np.testing.assert_allclose(mapped[0], reference, atol=1e-6)

    def test_mean_over_sites_is_trace_dos(self, cube):
        from repro.kpm import dos_from_moments, exact_moments, rescale_operator

        config = KPMConfig(num_moments=32)
        probe = np.array([-2.0, 0.0, 1.5])
        full_map = local_dos_map(cube, probe, config=config)
        assert full_map.shape == (64, 3)
        scaled, rescaling = rescale_operator(cube)
        mu = exact_moments(scaled, 32)
        from repro.kpm.reconstruct import apply_kernel_damping, evaluate_series_at

        damped = apply_kernel_damping(mu, "jackson")
        x = rescaling.to_scaled(probe)
        reference = evaluate_series_at(damped, x) * rescaling.density_jacobian
        np.testing.assert_allclose(full_map.mean(axis=0), reference, atol=1e-10)

    def test_batch_size_invariant(self, cube):
        config = KPMConfig(num_moments=24)
        probe = np.array([0.5])
        small = local_dos_map(cube, probe, config=config, batch_size=3)
        large = local_dos_map(cube, probe, config=config, batch_size=64)
        np.testing.assert_allclose(small, large, atol=1e-12)

    def test_translation_invariance_clean_lattice(self, cube):
        config = KPMConfig(num_moments=32)
        full_map = local_dos_map(cube, np.array([0.0, 2.0]), config=config)
        # Periodic clean lattice: every site identical.
        np.testing.assert_allclose(
            full_map, np.broadcast_to(full_map[0], full_map.shape), atol=1e-10
        )


class TestPhysics:
    def test_disorder_breaks_uniformity(self):
        lattice = chain(64)
        eps = anderson_onsite_energies(lattice, 4.0, seed=8)
        hamiltonian = tight_binding_hamiltonian(lattice, onsite=eps, format="csr")
        config = KPMConfig(num_moments=48)
        full_map = local_dos_map(hamiltonian, np.array([0.0]), config=config)
        spread = full_map[:, 0].std() / full_map[:, 0].mean()
        assert spread > 0.3  # strongly inhomogeneous


class TestValidation:
    def test_site_out_of_range(self, cube):
        with pytest.raises(ValidationError):
            local_dos_map(cube, [0.0], sites=[1000])

    def test_empty_sites(self, cube):
        with pytest.raises(ValidationError):
            local_dos_map(cube, [0.0], sites=[])

    def test_energy_outside_band(self, cube):
        with pytest.raises(ValidationError):
            local_dos_map(cube, [100.0])
