"""Unit tests for repro.kpm.dos and repro.kpm.green."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kpm import KPMConfig, compute_dos, greens_function, local_dos
from repro.lattice import chain, cubic, tight_binding_hamiltonian


class TestComputeDos:
    def test_returns_result_fields(self, chain_csr, small_config):
        result = compute_dos(chain_csr, small_config)
        assert result.energies.shape == (small_config.num_energy_points,)
        assert result.density.shape == result.energies.shape
        assert result.config is small_config
        assert result.timing.backend == "numpy"

    def test_default_config(self, chain_csr):
        result = compute_dos(chain_csr)
        assert result.config.num_moments == 256

    def test_integral_near_one(self, chain_csr):
        config = KPMConfig(num_moments=64, num_random_vectors=16, seed=1)
        result = compute_dos(chain_csr, config)
        assert result.integrate() == pytest.approx(1.0, abs=0.02)

    def test_rejects_asymmetric(self, small_config):
        with pytest.raises(ValidationError, match="symmetric"):
            compute_dos(np.array([[0.0, 1.0], [0.0, 0.0]]), small_config)

    def test_rejects_bad_config(self, chain_csr):
        with pytest.raises(ValidationError):
            compute_dos(chain_csr, config={"num_moments": 8})

    def test_unknown_backend(self, chain_csr, small_config):
        with pytest.raises(ValidationError, match="unknown backend"):
            compute_dos(chain_csr, small_config, backend="fpga")

    def test_mean_energy_matches_trace(self, cube4_csr):
        # Tr[H]/D = 0 for the paper's zero-diagonal matrix.
        config = KPMConfig(num_moments=64, num_random_vectors=32, seed=2)
        result = compute_dos(cube4_csr, config)
        assert abs(result.mean_energy()) < 0.1

    def test_evaluate_matches_grid(self, chain_csr, small_config):
        result = compute_dos(chain_csr, small_config)
        inner = slice(100, -100)
        np.testing.assert_allclose(
            result.evaluate(result.energies[inner]),
            result.density[inner],
            atol=1e-10,
        )

    def test_energy_resolution_formula(self, chain_csr):
        config = KPMConfig(num_moments=100, num_random_vectors=2)
        result = compute_dos(chain_csr, config)
        expected = np.pi * result.rescaling.scale / 100
        assert result.energy_resolution() == pytest.approx(expected)

    def test_density_nonnegative_with_jackson(self, cube4_csr):
        config = KPMConfig(num_moments=48, num_random_vectors=16, kernel="jackson", seed=0)
        result = compute_dos(cube4_csr, config)
        assert result.density.min() >= -1e-10

    def test_bounds_method_lanczos(self, chain_csr):
        config = KPMConfig(
            num_moments=32, num_random_vectors=8, bounds_method="lanczos", seed=0
        )
        result = compute_dos(chain_csr, config)
        # For the clean chain Gerschgorin is already tight (spectrum is
        # exactly [-2, 2]); Lanczos with its pad must land close by.
        assert 2.0 <= result.rescaling.scale <= 2.12


class TestSymmetryTolerance:
    """Regression: the symmetry tolerance must scale with the matrix.

    It used to scale with the *diagonal* magnitude only; the paper's
    hopping Hamiltonians have a zero diagonal, so the tolerance
    collapsed to an absolute 1e-12 and roundoff-level asymmetry in
    large off-diagonal entries was spuriously rejected.
    """

    @staticmethod
    def _hopping_chain(n, t):
        h = np.zeros((n, n))
        for i in range(n - 1):
            h[i, i + 1] = h[i + 1, i] = -t
        return h

    def test_zero_diagonal_roundoff_accepted(self, small_config):
        h = self._hopping_chain(8, 1.0)
        h[2, 3] += 1e-15
        result = compute_dos(h, small_config)
        assert np.isfinite(result.density).all()

    def test_large_hopping_roundoff_accepted(self, small_config):
        # t = 1e4 with 1e-11 roundoff asymmetry: above the old absolute
        # 1e-12 cutoff, far below any genuine asymmetry at this scale.
        h = self._hopping_chain(8, 1e4)
        h[0, 1] += 1e-11
        result = compute_dos(h, small_config)
        assert np.isfinite(result.density).all()

    def test_genuine_asymmetry_still_rejected(self, small_config):
        h = self._hopping_chain(4, 1.0)
        h[0, 1] = -0.9
        with pytest.raises(ValidationError, match="symmetric"):
            compute_dos(h, small_config)

    def test_genuine_asymmetry_rejected_at_scale(self, small_config):
        h = self._hopping_chain(4, 1e4)
        h[0, 1] += 1.0
        with pytest.raises(ValidationError, match="symmetric"):
            compute_dos(h, small_config)


class TestGreensFunction:
    @pytest.fixture
    def chain_result(self):
        # 256 sites so the level spacing (~0.05 near the band center) sits
        # below the Jackson resolution at N=128 and the DoS is smooth.
        h = tight_binding_hamiltonian(chain(256), format="csr")
        config = KPMConfig(num_moments=128, num_random_vectors=32, seed=3)
        return compute_dos(h, config)

    def test_imaginary_part_is_minus_pi_rho(self, chain_result):
        energies = np.array([-1.0, 0.0, 0.5])
        g = greens_function(
            chain_result.moments, chain_result.rescaling, energies, kernel="jackson"
        )
        np.testing.assert_allclose(
            g.imag, -np.pi * chain_result.evaluate(energies), atol=1e-10
        )

    def test_chain_resolvent_analytic(self, chain_result):
        # The infinite chain's retarded Green's function inside the band
        # is G(E) = -i / sqrt(4 - E^2): purely imaginary.
        energy = 0.7
        g = greens_function(
            chain_result.moments, chain_result.rescaling, [energy], kernel="jackson"
        )
        assert abs(g.real[0]) < 0.06
        assert g.imag[0] == pytest.approx(-1.0 / np.sqrt(4 - energy**2), abs=0.05)

    def test_energy_outside_interval_rejected(self, chain_result):
        with pytest.raises(ValidationError):
            greens_function(chain_result.moments, chain_result.rescaling, [100.0])

    def test_requires_rescaling(self, chain_result):
        with pytest.raises(ValidationError):
            greens_function(chain_result.moments, None, [0.0])


class TestLocalDos:
    def test_translational_invariance(self, chain_csr):
        config = KPMConfig(num_moments=64)
        _, ldos_0 = local_dos(chain_csr, 0, config)
        _, ldos_5 = local_dos(chain_csr, 5, config)
        np.testing.assert_allclose(ldos_0, ldos_5, atol=1e-10)

    def test_integral_one(self, cube4_csr):
        config = KPMConfig(num_moments=64)
        energies, ldos = local_dos(cube4_csr, 3, config)
        assert np.trapezoid(ldos, energies) == pytest.approx(1.0, abs=0.02)

    def test_site_out_of_range(self, chain_csr):
        with pytest.raises(ValidationError):
            local_dos(chain_csr, 10_000)

    def test_average_ldos_is_dos(self):
        # Mean of all local DoS equals the exact-trace DoS.
        h = tight_binding_hamiltonian(chain(8), format="dense")
        config = KPMConfig(num_moments=32, num_energy_points=256)
        total = None
        for site in range(8):
            energies, ldos = local_dos(h, site, config)
            total = ldos if total is None else total + ldos
        from repro.kpm import dos_from_moments, exact_moments, rescale_operator

        scaled, rescaling = rescale_operator(h)
        mu = exact_moments(scaled, 32)
        _, dos = dos_from_moments(mu, rescaling, num_points=256)
        np.testing.assert_allclose(total / 8, dos, atol=1e-10)
