"""Unit tests for single-precision support across the stack."""

import numpy as np
import pytest

from repro.cpu import CORE_I7_930, estimate_cpu_kpm_seconds
from repro.errors import ValidationError
from repro.gpu import KernelStats, TESLA_C2050, compute_occupancy, kernel_cost
from repro.gpukpm import (
    GpuKPM,
    estimate_gpu_kpm_seconds,
    per_vector_recursion_stats,
    plan_memory,
)
from repro.kpm import KPMConfig, rescale_operator, stochastic_moments
from repro.lattice import cubic, tight_binding_hamiltonian


@pytest.fixture
def scaled_cube():
    h = tight_binding_hamiltonian(cubic(4), format="csr")
    scaled, _ = rescale_operator(h)
    return scaled


class TestConfig:
    def test_precision_validated(self):
        with pytest.raises(ValidationError):
            KPMConfig(precision="half")

    def test_default_double(self):
        assert KPMConfig().precision == "double"


class TestCostModelPrecision:
    def test_sp_flops_priced_at_sp_peak(self):
        occupancy = compute_occupancy(TESLA_C2050, 256)
        dp = kernel_cost(
            TESLA_C2050, KernelStats(flops=1e12), grid_blocks=64, occupancy=occupancy
        )
        sp = kernel_cost(
            TESLA_C2050,
            KernelStats(flops=1e12, precision="single"),
            grid_blocks=64,
            occupancy=occupancy,
        )
        ratio = TESLA_C2050.peak_sp_flops / TESLA_C2050.peak_dp_flops
        assert dp.compute_seconds == pytest.approx(sp.compute_seconds * ratio)

    def test_merge_promotes_to_double(self):
        stats = KernelStats(precision="single")
        stats.merge(KernelStats(flops=1.0, precision="double"))
        assert stats.precision == "double"

    def test_merge_keeps_single(self):
        stats = KernelStats(precision="single")
        stats.merge(KernelStats(flops=1.0, precision="single"))
        assert stats.precision == "single"


class TestStatsPrecision:
    def test_single_halves_float_traffic(self):
        dp = per_vector_recursion_stats(100, 16)
        sp = per_vector_recursion_stats(100, 16, precision="single")
        assert sp.gmem_read_bytes == pytest.approx(dp.gmem_read_bytes / 2)
        assert sp.flops == dp.flops

    def test_csr_indices_stay_wide(self):
        dp = per_vector_recursion_stats(100, 16, nnz=700)
        sp = per_vector_recursion_stats(100, 16, nnz=700, precision="single")
        # Index traffic is precision-independent, so the ratio is > 1/2.
        assert sp.gmem_read_bytes > dp.gmem_read_bytes / 2

    def test_invalid_precision(self):
        with pytest.raises(ValidationError):
            per_vector_recursion_stats(10, 4, precision="quad")

    def test_memory_plan_halves(self):
        config = KPMConfig(num_random_vectors=8, num_realizations=1)
        dp = plan_memory(TESLA_C2050, 64, config)
        sp = plan_memory(TESLA_C2050, 64, config.with_updates(precision="single"))
        assert sp.matrix_bytes == dp.matrix_bytes // 2
        assert sp.workspace_bytes == dp.workspace_bytes // 2


class TestPipelinePrecision:
    def test_float32_moments_close_to_float64(self, scaled_cube):
        config = KPMConfig(
            num_moments=48, num_random_vectors=8, num_realizations=1,
            seed=3, block_size=32,
        )
        dp_data, _ = GpuKPM().compute_moments(scaled_cube, config)
        sp_data, _ = GpuKPM().compute_moments(
            scaled_cube, config.with_updates(precision="single")
        )
        drift = np.max(np.abs(dp_data.mu - sp_data.mu))
        assert 0 < drift < 1e-4

    def test_single_precision_modeled_faster(self, scaled_cube):
        config = KPMConfig(
            num_moments=48, num_random_vectors=8, num_realizations=1,
            seed=3, block_size=32,
        )
        _, dp_report = GpuKPM().compute_moments(scaled_cube, config)
        _, sp_report = GpuKPM().compute_moments(
            scaled_cube, config.with_updates(precision="single")
        )
        assert sp_report.modeled_seconds < dp_report.modeled_seconds

    def test_estimator_matches_run_single(self, scaled_cube):
        config = KPMConfig(
            num_moments=32, num_random_vectors=8, num_realizations=1,
            seed=1, block_size=32, precision="single",
        )
        _, report = GpuKPM().compute_moments(scaled_cube, config)
        estimate = estimate_gpu_kpm_seconds(
            TESLA_C2050, scaled_cube.shape[0], config, nnz=scaled_cube.nnz_stored
        )
        assert report.modeled_seconds == pytest.approx(estimate, rel=1e-12)

    def test_device_buffers_are_float32(self, scaled_cube):
        config = KPMConfig(
            num_moments=16, num_random_vectors=4, num_realizations=1,
            block_size=32, precision="single",
        )
        runner = GpuKPM()
        runner.compute_moments(scaled_cube, config)
        # Peak memory halves relative to the plan of the double config.
        sp_plan = plan_memory(
            TESLA_C2050, scaled_cube.shape[0], config, nnz=scaled_cube.nnz_stored
        )
        assert runner.last_device.memory.peak_bytes == sp_plan.total_bytes


class TestCpuPrecision:
    def test_single_faster_when_memory_bound(self):
        config = KPMConfig(num_moments=64, num_random_vectors=4)
        dp = estimate_cpu_kpm_seconds(CORE_I7_930, 2048, config)
        sp = estimate_cpu_kpm_seconds(
            CORE_I7_930, 2048, config.with_updates(precision="single")
        )
        assert sp < dp


class TestAblation:
    def test_precision_ablation_bands(self):
        from repro.bench import precision_ablation

        result = precision_ablation(h_sizes=(512, 1024), num_moments=64)
        ratios = result.column("dp_over_sp")
        assert all(1.5 <= r <= 2.2 for r in ratios)
        assert "drift" in result.notes
