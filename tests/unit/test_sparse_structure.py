"""Unit tests for structural fingerprints (repro.sparse.fingerprint)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.lattice import chain, cubic, tight_binding_hamiltonian
from repro.sparse import (
    CSRMatrix,
    StructureProfile,
    structure_fingerprint,
    structure_profile,
)
from repro.sparse.csr import content_fingerprint


class TestStructureProfile:
    def test_chain_statistics(self):
        csr = tight_binding_hamiltonian(chain(5), format="csr")
        profile = structure_profile(csr)
        assert profile.dimension == 5
        assert profile.n_cols == 5
        assert profile.nnz == csr.nnz_stored == 15
        assert profile.density == pytest.approx(15.0 / 25.0)
        # Periodic chain: every site stores onsite + 2 neighbours.
        assert profile.row_nnz_min == profile.row_nnz_max == 3
        assert profile.row_nnz_mean == 3.0
        assert profile.row_nnz_var == 0.0
        # The wrap-around bond spans the whole chain.
        assert profile.bandwidth == 4
        # 5 diagonal zeros, 8 unit offsets, 2 wrap offsets of 4.
        assert profile.mean_abs_offset == pytest.approx(16.0 / 15.0)
        assert profile.dtype == "float64"

    def test_row_nnz_min_is_true_minimum(self):
        # Regression: np.min(initial=0) treats 0 as an extra element and
        # always reported 0 for matrices with no empty rows.
        dense = np.array([[1.0, 1.0, 1.0], [0.0, 1.0, 0.0], [1.0, 1.0, 0.0]])
        profile = structure_profile(CSRMatrix.from_dense(dense))
        assert profile.row_nnz_min == 1
        assert profile.row_nnz_max == 3

    def test_uniform_lattice_has_zero_variance(self):
        profile = structure_profile(
            tight_binding_hamiltonian(cubic(3), format="csr")
        )
        assert profile.row_nnz_min == profile.row_nnz_max == 7
        assert profile.row_nnz_var == 0.0

    def test_all_input_kinds_agree(self):
        csr = tight_binding_hamiltonian(cubic(3), format="csr")
        via_csr = structure_profile(csr)
        via_ell = structure_profile(csr.to_ell())
        via_coo = structure_profile(csr.to_coo())
        assert via_csr == via_ell == via_coo

    def test_raw_array_profiles_its_nonzero_pattern(self):
        # A raw array profiles what a sparse conversion would store, so
        # it matches CSRMatrix.from_dense (explicit zeros dropped).
        dense = tight_binding_hamiltonian(cubic(3), format="csr").to_dense()
        assert structure_profile(dense) == structure_profile(
            CSRMatrix.from_dense(dense)
        )

    def test_rejects_unprofilable_operator(self):
        with pytest.raises(ValidationError, match="cannot profile"):
            structure_profile(object())

    def test_as_dict_round_trips_fields(self):
        profile = structure_profile(
            tight_binding_hamiltonian(chain(4), format="csr")
        )
        data = profile.as_dict()
        assert StructureProfile(**data) == profile


class TestStructureFingerprint:
    def test_value_perturbation_keeps_structure(self):
        dense = tight_binding_hamiltonian(chain(6), format="csr").to_dense()
        perturbed = dense.copy()
        perturbed[0, 1] *= 2.0
        a, b = CSRMatrix.from_dense(dense), CSRMatrix.from_dense(perturbed)
        assert structure_fingerprint(a) == structure_fingerprint(b)
        assert content_fingerprint(
            "csr", a.shape, a.indptr, a.indices, a.data
        ) != content_fingerprint("csr", b.shape, b.indptr, b.indices, b.data)

    def test_pattern_change_changes_digest(self):
        a = tight_binding_hamiltonian(chain(6), format="csr")
        b = tight_binding_hamiltonian(chain(7), format="csr")
        assert structure_fingerprint(a) != structure_fingerprint(b)

    def test_accepts_precomputed_profile(self):
        csr = tight_binding_hamiltonian(chain(4), format="csr")
        assert structure_fingerprint(structure_profile(csr)) == (
            structure_fingerprint(csr)
        )

    def test_stable_across_calls(self):
        csr = tight_binding_hamiltonian(chain(4), format="csr")
        assert structure_fingerprint(csr) == structure_fingerprint(csr)

    def test_rejects_none(self):
        with pytest.raises(ValidationError):
            structure_fingerprint(None)
