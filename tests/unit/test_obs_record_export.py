"""Unit tests for repro.obs.record and repro.obs.export (deterministic output)."""

import json

import pytest

from repro.errors import ValidationError
from repro.obs import (
    MetricsRegistry,
    RunRecord,
    SCHEMA_VERSION,
    Tracer,
    load_run_record,
    render_tree,
    to_chrome_trace,
    to_jsonl,
    write_run_record,
)


def make_record(label="test-run"):
    tracer = Tracer()
    with tracer.span("pipeline", category="gpu", device="C2050") as pipeline:
        pipeline.add_event(
            {"kind": "kernel", "name": "spmv", "start": 0.0, "seconds": 0.25}
        )
        tracer.advance(0.25)
        with tracer.span("reduction"):
            tracer.advance(0.125)
    registry = MetricsRegistry()
    registry.inc("runs_total")
    registry.set_gauge("timing.gpu.modeled_seconds", 0.375)
    return RunRecord(
        label=label,
        workload={"dimension": 64, "seed": 0},
        spans=tracer.finish(),
        metrics=registry,
    )


class TestRunRecord:
    def test_span_costs_sum_repeated_labels(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("batch"):
                tracer.advance(1.0)
        record = RunRecord(label="x", spans=tracer.finish())
        assert record.span_costs() == {"batch": pytest.approx(3.0)}

    def test_dict_roundtrip_preserves_fingerprint(self):
        record = make_record()
        rebuilt = RunRecord.from_dict(record.to_dict())
        assert rebuilt.fingerprint() == record.fingerprint()

    def test_from_dict_rejects_wrong_schema(self):
        data = make_record().to_dict()
        data["schema"] = "repro.obs/999"
        with pytest.raises(ValidationError):
            RunRecord.from_dict(data)

    def test_annotations_do_not_change_fingerprint(self):
        clean = make_record()
        annotated = make_record()
        annotated.spans[0].annotate(wall_seconds=123.456)
        assert annotated.fingerprint() == clean.fingerprint()
        assert "annotations" not in annotated.to_json()

    def test_two_runs_byte_identical(self):
        assert make_record().to_json() == make_record().to_json()

    def test_file_roundtrip(self, tmp_path):
        record = make_record()
        path = tmp_path / "record.json"
        write_run_record(record, path)
        text = path.read_text(encoding="ascii")
        assert text.endswith("\n")
        loaded = load_run_record(path)
        assert loaded.fingerprint() == record.fingerprint()
        # A second write is byte-identical.
        write_run_record(loaded, path)
        assert path.read_text(encoding="ascii") == text

    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(ValidationError):
            load_run_record(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="ascii")
        with pytest.raises(ValidationError):
            load_run_record(bad)

    def test_write_rejects_non_record(self, tmp_path):
        with pytest.raises(ValidationError):
            write_run_record({"label": "x"}, tmp_path / "x.json")


class TestChromeTrace:
    def test_valid_and_nested(self):
        record = make_record()
        payload = json.loads(to_chrome_trace(record))
        events = payload["traceEvents"]
        assert payload["metadata"]["schema"] == SCHEMA_VERSION
        assert all(event["ph"] == "X" for event in events)
        # All events share one track so the viewer nests by containment.
        assert len({(event["pid"], event["tid"]) for event in events}) == 1
        by_name = {event["name"]: event for event in events}
        pipeline, kernel, reduction = (
            by_name["pipeline"],
            by_name["spmv"],
            by_name["reduction"],
        )
        for child in (kernel, reduction):
            assert child["ts"] >= pipeline["ts"]
            assert child["ts"] + child["dur"] <= pipeline["ts"] + pipeline["dur"] + 1e-6
        assert kernel["cat"] == "kernel"
        assert pipeline["args"]["device"] == "C2050"

    def test_deterministic(self):
        assert to_chrome_trace(make_record()) == to_chrome_trace(make_record())

    def test_rejects_non_record(self):
        with pytest.raises(ValidationError):
            to_chrome_trace({"spans": []})


class TestJsonl:
    def test_header_plus_flat_spans(self):
        lines = to_jsonl(make_record()).splitlines()
        header = json.loads(lines[0])
        assert header["label"] == "test-run"
        assert header["metrics"]["counters"]["runs_total"] == 1.0
        spans = [json.loads(line) for line in lines[1:]]
        assert [span["label"] for span in spans] == ["pipeline", "reduction"]
        assert spans[0]["parent"] is None
        assert spans[1]["parent"] == spans[0]["index"]
        assert all("children" not in span for span in spans)


class TestRenderTree:
    def test_tree_shows_labels_durations_events(self):
        text = render_tree(make_record())
        assert "run 'test-run'" in text
        assert "pipeline:" in text
        assert "[1 events]" in text
        assert "device='C2050'" in text
        # Child is indented one level deeper than its parent.
        parent_line = next(line for line in text.splitlines() if "pipeline:" in line)
        child_line = next(line for line in text.splitlines() if "reduction:" in line)
        indent = lambda line: len(line) - len(line.lstrip())  # noqa: E731
        assert indent(child_line) == indent(parent_line) + 2
