"""Unit tests for repro.serve.admission (token buckets + quotas)."""

import pytest

from repro.errors import ValidationError
from repro.serve import AdmissionController, TenantPolicy, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_consumes(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert bucket.level == 5.0
        assert bucket.try_consume(3.0, now=0.0)
        assert bucket.level == 2.0

    def test_denial_leaves_level_intact(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert not bucket.try_consume(3.0, now=0.0)
        assert bucket.level == 2.0

    def test_refill_is_capped_at_burst(self):
        bucket = TokenBucket(rate=2.0, burst=4.0)
        assert bucket.try_consume(4.0, now=0.0)
        bucket.refill(1.0)
        assert bucket.level == 2.0
        bucket.refill(100.0)
        assert bucket.level == 4.0

    def test_clock_must_be_monotone(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.refill(5.0)
        with pytest.raises(ValidationError):
            bucket.refill(4.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1.0, burst=-1.0)
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ValidationError):
            bucket.try_consume(-1.0, now=0.0)
        with pytest.raises(ValidationError):
            bucket.refill(float("nan"))


class TestTenantPolicy:
    def test_defaults_and_bucket(self):
        policy = TenantPolicy()
        assert policy.quota is None
        bucket = policy.bucket()
        assert bucket.rate == policy.rate
        assert bucket.level == policy.burst

    def test_validation(self):
        with pytest.raises(ValidationError):
            TenantPolicy(rate=0.0)
        with pytest.raises(ValidationError):
            TenantPolicy(burst=-1.0)
        with pytest.raises(ValidationError):
            TenantPolicy(quota=0.0)


class TestAdmissionController:
    def test_default_policy_applies_to_unknown_tenants(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(rate=1.0, burst=2.0)
        )
        assert controller.admit("alice", 2.0, now=0.0).admitted
        denied = controller.admit("alice", 0.5, now=0.0)
        assert not denied.admitted and denied.reason == "rate"
        # A different tenant gets its own full bucket.
        assert controller.admit("bob", 2.0, now=0.0).admitted

    def test_named_policy_overrides_default(self):
        controller = AdmissionController(
            {"vip": TenantPolicy(rate=10.0, burst=100.0)},
            default_policy=TenantPolicy(rate=0.1, burst=0.1),
        )
        assert controller.admit("vip", 50.0, now=0.0).admitted
        assert not controller.admit("anon", 50.0, now=0.0).admitted

    def test_bucket_refills_with_modeled_clock(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(rate=1.0, burst=1.0)
        )
        assert controller.admit("t", 1.0, now=0.0).admitted
        assert not controller.admit("t", 1.0, now=0.5).admitted
        assert controller.admit("t", 1.0, now=2.0).admitted

    def test_quota_checked_before_bucket(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(rate=100.0, burst=100.0, quota=3.0)
        )
        assert controller.admit("t", 3.0, now=0.0).admitted
        denied = controller.admit("t", 0.1, now=1000.0)
        assert not denied.admitted and denied.reason == "quota"
        # The doomed request drained neither budget.
        assert controller.consumed("t") == 3.0

    def test_refund_rolls_back_both_budgets(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(rate=1.0, burst=4.0, quota=10.0)
        )
        assert controller.admit("t", 4.0, now=0.0).admitted
        controller.refund("t", 4.0)
        assert controller.consumed("t") == 0.0
        # Bucket back at burst: the full charge fits again immediately.
        assert controller.admit("t", 4.0, now=0.0).admitted

    def test_refund_unknown_tenant_is_noop(self):
        AdmissionController().refund("ghost", 1.0)

    def test_counters_snapshot(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(rate=1.0, burst=1.0)
        )
        controller.admit("a", 1.0, now=0.0)
        controller.admit("a", 1.0, now=0.0)
        controller.admit("b", 0.5, now=0.0)
        assert controller.tenants == ("a", "b")
        counters = controller.counters()
        assert counters["a"] == {
            "admitted": 1.0,
            "rejected": 1.0,
            "consumed_seconds": 1.0,
        }
        assert counters["b"]["consumed_seconds"] == 0.5

    def test_zero_cost_requests_always_admit(self):
        controller = AdmissionController(
            default_policy=TenantPolicy(rate=0.001, burst=0.001)
        )
        for _ in range(10):
            assert controller.admit("t", 0.0, now=0.0).admitted

    def test_validation(self):
        with pytest.raises(ValidationError):
            AdmissionController({"": TenantPolicy()})
        with pytest.raises(ValidationError):
            AdmissionController({"t": "not-a-policy"})
        with pytest.raises(ValidationError):
            AdmissionController(default_policy="not-a-policy")
        controller = AdmissionController()
        with pytest.raises(ValidationError):
            controller.admit("", 1.0, now=0.0)
        with pytest.raises(ValidationError):
            controller.admit("t", -1.0, now=0.0)
        with pytest.raises(ValidationError):
            controller.admit("t", 1.0, now=-1.0)
